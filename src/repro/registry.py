"""Counter registry: every implementation as a declarative, named spec.

The paper's claims quantify over *every* counter algorithm, and the
reproduction hosts eight protocol wirings.  This module makes them
first-class artifacts instead of scattered factory lambdas:

* :class:`CounterSpec` — one registered implementation: canonical name,
  factory, typed :class:`Tunable` parameters with defaults and bounds,
  and the implementation's :class:`~repro.api.Capabilities` record;
* spec strings — ``"combining-tree?window=3.0"`` names a concrete
  configuration; :func:`parse_spec` resolves it to a :class:`CounterRef`
  whose :attr:`~CounterRef.canonical` form is stable (sorted keys,
  defaults elided), so sweep caches and report tables key on the exact
  configuration;
* :class:`RunSession` — the one place that assembles delivery policy,
  network, trace level, counter and driver, replacing the hand-rolled
  copies every caller used to carry.

Every consumer (CLI, experiments, sweeps, the lower-bound adversaries)
resolves counters through this registry, so adding a protocol is one
:func:`register` call::

    from repro.registry import RunSession, parse_spec, registered_names

    session = RunSession("combining-tree?window=3.0", n=64)
    result = session.run_sequence()
    print(session.canonical, result.bottleneck_load())
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.api import Capabilities, DistributedCounter
from repro.errors import CapabilityError, ConfigurationError
from repro.runtime import RUNTIME_NAMES, Runtime, make_runtime
from repro.sim.faults import FaultPlan, parse_fault_spec
from repro.sim.messages import ProcessorId
from repro.sim.network import Network
from repro.sim.recovery import Recoverable, RecoveryManager
from repro.sim.transport import ReliableTransport
from repro.sim.policies import (
    CongestedDelay,
    DeliveryPolicy,
    FifoRandomDelay,
    RandomDelay,
    SkewedDelay,
    UnitDelay,
)
from repro.sim.trace import TraceLevel

__all__ = [
    "POLICY_NAMES",
    "WORKLOAD_NAMES",
    "CounterRef",
    "CounterSpec",
    "RunSession",
    "Tunable",
    "canonical_spec",
    "get_spec",
    "make_policy",
    "parse_spec",
    "register",
    "registered_names",
    "registered_specs",
    "resolve_factory",
]

# ----------------------------------------------------------------------
# Delivery policies and workloads by name (shared by CLI and sweeps)
# ----------------------------------------------------------------------

POLICY_NAMES = ("unit", "random", "fifo-random", "skewed", "congested")
"""Delivery policies resolvable by :func:`make_policy`."""

WORKLOAD_NAMES = ("one-shot", "one-shot-concurrent", "shuffled")
"""Workloads :meth:`RunSession.run_workload` (and sweep points) accept."""


def make_policy(name: str, seed: int = 0) -> DeliveryPolicy:
    """Build the delivery policy registered under *name*.

    Seeded policies receive *seed*; deterministic ones ignore it.
    """
    if name == "unit":
        return UnitDelay()
    if name == "random":
        return RandomDelay(seed=seed)
    if name == "fifo-random":
        return FifoRandomDelay(seed=seed)
    if name == "skewed":
        return SkewedDelay()
    if name == "congested":
        return CongestedDelay()
    raise ConfigurationError(
        f"unknown delivery policy {name!r}; expected one of {POLICY_NAMES}"
    )


# ----------------------------------------------------------------------
# Tunables
# ----------------------------------------------------------------------

_BOOL_TRUE = frozenset({"true", "1", "yes", "on"})
_BOOL_FALSE = frozenset({"false", "0", "no", "off"})


@dataclass(frozen=True, slots=True)
class Tunable:
    """One typed constructor parameter of a registered counter.

    Attributes:
        name: parameter name as it appears in spec strings and in the
            factory's keyword arguments.
        kind: value type — ``int``, ``float``, ``bool`` or ``str``.
        default: value used when a spec string omits the parameter; the
            canonical spec form elides parameters at their default.
        minimum: smallest allowed value (inclusive), for numeric kinds.
        maximum: largest allowed value (inclusive), for numeric kinds.
        choices: allowed values, for string-valued enumerations.
        power_of_two: positive values must be powers of two.
        doc: one-line description shown by ``repro counters``.
    """

    name: str
    kind: type
    default: Any
    minimum: float | None = None
    maximum: float | None = None
    choices: tuple[str, ...] | None = None
    power_of_two: bool = False
    doc: str = ""

    def parse(self, text: str) -> Any:
        """Parse a spec-string value into this tunable's type."""
        try:
            if self.kind is bool:
                lowered = text.strip().lower()
                if lowered in _BOOL_TRUE:
                    return self.validate(True)
                if lowered in _BOOL_FALSE:
                    return self.validate(False)
                raise ValueError(text)
            return self.validate(self.kind(text))
        except ValueError:
            raise ConfigurationError(
                f"tunable {self.name!r} expects a {self.kind.__name__}, "
                f"got {text!r}"
            ) from None

    def validate(self, value: Any) -> Any:
        """Type- and bounds-check *value*; return it on success."""
        if self.kind is float and isinstance(value, int):
            value = float(value)
        if not isinstance(value, self.kind) or (
            self.kind is not bool and isinstance(value, bool)
        ):
            raise ConfigurationError(
                f"tunable {self.name!r} expects a {self.kind.__name__}, "
                f"got {value!r}"
            )
        if self.minimum is not None and value < self.minimum:
            raise ConfigurationError(
                f"tunable {self.name!r} must be >= {self.minimum}, got {value}"
            )
        if self.maximum is not None and value > self.maximum:
            raise ConfigurationError(
                f"tunable {self.name!r} must be <= {self.maximum}, got {value}"
            )
        if self.choices is not None and value not in self.choices:
            raise ConfigurationError(
                f"tunable {self.name!r} must be one of {self.choices}, "
                f"got {value!r}"
            )
        if self.power_of_two and value > 0 and value & (value - 1):
            raise ConfigurationError(
                f"tunable {self.name!r} must be a power of two, got {value}"
            )
        return value

    def format(self, value: Any) -> str:
        """Canonical spec-string form of *value* (inverse of :meth:`parse`)."""
        if self.kind is bool:
            return "true" if value else "false"
        if self.kind is float:
            return repr(float(value))
        return str(value)


# ----------------------------------------------------------------------
# Specs and references
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CounterSpec:
    """One registered counter implementation, described declaratively.

    Attributes:
        name: canonical registry key; equals the ``name`` attribute of
            the counters the factory builds, so reports, sweep cache
            keys and BENCH JSON agree.
        factory: ``factory(network, n, **tunables)`` building a fresh
            counter wiring.
        implementation: the :class:`~repro.api.DistributedCounter`
            subclass the factory instantiates (used by the registry
            completeness check and the CLI listing).
        capabilities: the implementation's declared
            :class:`~repro.api.Capabilities`; may tighten the class
            record (e.g. ``quorum[maekawa]`` adds the square-``n``
            requirement its grid construction implies).
        tunables: the typed parameters spec strings may set.
        summary: one-line description shown by ``repro counters``.
    """

    name: str
    factory: Callable[..., DistributedCounter]
    implementation: type[DistributedCounter]
    capabilities: Capabilities
    tunables: tuple[Tunable, ...] = ()
    summary: str = ""

    def tunable(self, name: str) -> Tunable:
        """The tunable called *name*; raises on unknown names."""
        for tunable in self.tunables:
            if tunable.name == name:
                return tunable
        known = tuple(t.name for t in self.tunables) or "(none)"
        raise ConfigurationError(
            f"counter {self.name!r} has no tunable {name!r}; known: {known}"
        )

    def supports_n(self, n: int) -> str | None:
        """``None`` if *n* satisfies the declared shape constraints,
        else the violated restriction as text."""
        if self.capabilities.needs_square_n and math.isqrt(n) ** 2 != n:
            return f"requires a perfect-square n, got {n}"
        if self.capabilities.needs_power_of_two_n and n & (n - 1):
            return f"requires a power-of-two n, got {n}"
        return None

    def check_n(self, n: int) -> None:
        """Raise :class:`~repro.errors.CapabilityError` if *n* is impossible."""
        violation = self.supports_n(n)
        if violation is not None:
            raise CapabilityError(f"counter {self.name!r} {violation}")

    def build(
        self, network: Network, n: int, **params: Any
    ) -> DistributedCounter:
        """Construct a counter on *network* after validating everything."""
        self.check_n(n)
        validated = {
            name: self.tunable(name).validate(value)
            for name, value in params.items()
        }
        return self.factory(network, n, **validated)

    def ref(self, **params: Any) -> "CounterRef":
        """A :class:`CounterRef` for this spec with keyword overrides."""
        items = []
        for name, value in params.items():
            tunable = self.tunable(name)
            value = tunable.validate(value)
            if value != tunable.default:
                items.append((name, value))
        return CounterRef(spec=self, params=tuple(sorted(items)))


@dataclass(frozen=True)
class CounterRef:
    """A parsed spec string: one concrete counter configuration.

    ``parse_spec(ref.canonical) == ref`` holds for every reference —
    the canonical form sorts parameters and elides defaults, so equal
    configurations always produce equal strings (and therefore equal
    sweep cache keys).
    """

    spec: CounterSpec
    params: tuple[tuple[str, Any], ...] = ()

    @property
    def name(self) -> str:
        """The underlying spec's canonical registry key."""
        return self.spec.name

    @property
    def capabilities(self) -> Capabilities:
        """The configuration's capability record."""
        return self.spec.capabilities

    @property
    def canonical(self) -> str:
        """The canonical spec string naming this configuration."""
        if not self.params:
            return self.spec.name
        rendered = "&".join(
            f"{name}={self.spec.tunable(name).format(value)}"
            for name, value in self.params
        )
        return f"{self.spec.name}?{rendered}"

    def build(self, network: Network, n: int) -> DistributedCounter:
        """Construct this configuration's counter on *network*."""
        return self.spec.build(network, n, **dict(self.params))


# ----------------------------------------------------------------------
# The registry proper
# ----------------------------------------------------------------------

_REGISTRY: dict[str, CounterSpec] = {}


def register(spec: CounterSpec) -> CounterSpec:
    """Add *spec* to the registry; duplicate names are a wiring bug."""
    if spec.name in _REGISTRY:
        raise ConfigurationError(
            f"counter spec {spec.name!r} is already registered"
        )
    _REGISTRY[spec.name] = spec
    return spec


def registered_names() -> tuple[str, ...]:
    """Every canonical registry key, sorted."""
    return tuple(sorted(_REGISTRY))


def registered_specs() -> tuple[CounterSpec, ...]:
    """Every registered spec, sorted by name."""
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def get_spec(name: str) -> CounterSpec:
    """The spec registered under *name*; raises on unknown names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown counter {name!r}; expected one of {registered_names()}"
        ) from None


def parse_spec(text: str | CounterRef) -> CounterRef:
    """Resolve a spec string (``name`` or ``name?key=value&...``).

    Idempotent on :class:`CounterRef` inputs.  Values are parsed and
    bounds-checked against the spec's tunables; parameters set to their
    default are elided so the result is canonical.

    Results are memoized per spec string: registrations are permanent
    (duplicate names are rejected), so a parsed reference never goes
    stale, and repeat constructions — sweeps and serving benches build
    thousands of :class:`RunSession` objects from the same string —
    skip the string handling entirely.
    """
    if isinstance(text, CounterRef):
        return text
    return _parse_spec_text(text)


@lru_cache(maxsize=512)
def _parse_spec_text(text: str) -> CounterRef:
    """The uncached spec-string grammar behind :func:`parse_spec`."""
    name, _, query = text.strip().partition("?")
    spec = get_spec(name)
    params: dict[str, Any] = {}
    if query:
        for pair in query.split("&"):
            key, separator, raw = pair.partition("=")
            if not separator or not key:
                raise ConfigurationError(
                    f"malformed spec parameter {pair!r} in {text!r}; "
                    "expected key=value"
                )
            if key in params:
                raise ConfigurationError(
                    f"duplicate spec parameter {key!r} in {text!r}"
                )
            params[key] = spec.tunable(key).parse(raw)
    return spec.ref(**params)


def canonical_spec(text: str | CounterRef) -> str:
    """The canonical form of a spec string (sweep cache key)."""
    return parse_spec(text).canonical


# ----------------------------------------------------------------------
# RunSession: the one place a simulation gets assembled
# ----------------------------------------------------------------------

class RunSession:
    """Owns the network/policy/trace-level/counter/driver assembly.

    Every caller used to hand-roll the same four lines (make a policy,
    make a network, call a factory, pick a driver); a session does it
    once, capability-checked, from a spec string::

        session = RunSession("ww-tree", n=81, policy="random", seed=3)
        result = session.run_sequence()

    Args:
        counter: spec string or :class:`CounterRef`.
        n: number of client processors.
        policy: delivery policy — a :data:`POLICY_NAMES` name, a
            :class:`~repro.sim.policies.DeliveryPolicy` instance, or
            ``None`` for unit delays.
        seed: seed for seeded policies, fault plans, and the
            ``"shuffled"`` workload.
        trace_level: tracing fidelity for the session's network.
        event_limit: event budget override (``None`` keeps the default).
        faults: fault-spec string (see
            :func:`~repro.sim.faults.parse_fault_spec`) or a prebuilt
            :class:`~repro.sim.faults.FaultPlan`; ``None`` keeps the
            paper's failure-free model.
        core: event-loop implementation forwarded to
            :class:`~repro.sim.network.Network` — ``"auto"`` (default),
            ``"fast"`` or ``"compat"``; all three produce byte-identical
            traces.
        runtime: scheduler name from
            :data:`~repro.runtime.RUNTIME_NAMES` — ``"sim"`` (default)
            drains the discrete-event queue directly, ``"sim-compat"``
            is the same scheduler forced onto the ``compat`` core, and
            ``"asyncio"`` executes the identical events cooperatively
            inside an event loop.  Message accounting is the same
            :class:`~repro.sim.trace.Trace` under every choice.
        time_scale: real seconds slept per unit of simulated time
            between events (asyncio runtime only; 0 = run flat out).
        reliable: wrap the counter behind a
            :class:`~repro.sim.transport.ReliableTransport` so it
            survives lossy fault plans.  A lossy ``faults`` spec without
            ``reliable=True`` fails fast with
            :class:`~repro.errors.CapabilityError` on counters that do
            not tolerate message loss on their own.

    Capability gates, checked in order:

    * a plan with Byzantine rules (``byz=f@strategy``) requires
      ``tolerates_byzantine`` — neither a reliable transport nor crash
      recovery helps against a processor that *lies*, so nothing waives
      this gate; the session also binds the plan's compromised set to
      the population here (seeded, before any traffic);
    * a plan that crashes a processor *permanently* (no window end and
      no ``recover=`` point) requires ``tolerates_crash`` — a reliable
      transport cannot resurrect state parked on a dead processor, so
      ``reliable=True`` does not waive this gate;
    * any plan whose *non-Byzantine* rules can lose messages (drops,
      partitions, and crash windows, which sever links) requires the
      effective ``tolerates_message_loss`` — declared by the counter or
      conferred by ``reliable=True``.  Finite crash windows on a
      loss-tolerant counter pass: they behave as bounded message loss.
      Byzantine ``silence`` is omission *by a liar* and is covered by
      the Byzantine gate, not this one.

    When the plan has crash rules and the counter implements
    :class:`~repro.sim.recovery.Recoverable`, the session assembles and
    starts a :class:`~repro.sim.recovery.RecoveryManager` on the raw
    network (heartbeats must face the fault plan, not ride the reliable
    transport); it is exposed as :attr:`recovery`.
    """

    def __init__(
        self,
        counter: str | CounterRef,
        n: int,
        *,
        policy: str | DeliveryPolicy | None = None,
        seed: int = 0,
        trace_level: TraceLevel | str = TraceLevel.FULL,
        event_limit: int | None = None,
        faults: str | FaultPlan | None = None,
        reliable: bool = False,
        core: str = "auto",
        runtime: str = "sim",
        time_scale: float = 0.0,
    ) -> None:
        if runtime not in RUNTIME_NAMES:
            raise ConfigurationError(
                f"unknown runtime {runtime!r}; expected one of {RUNTIME_NAMES}"
            )
        if runtime == "sim-compat":
            if core == "fast":
                raise ConfigurationError(
                    "runtime='sim-compat' forces the compat event core; "
                    "it cannot be combined with core='fast'"
                )
            core = "compat"
        self._ref = parse_spec(counter)
        self._seed = seed
        self._ref.spec.check_n(n)
        if isinstance(policy, str):
            policy = make_policy(policy, seed)
        fault_plan: FaultPlan | None
        if faults is None:
            fault_plan = None
        elif isinstance(faults, FaultPlan):
            fault_plan = faults
        else:
            text = faults.strip()
            fault_plan = parse_fault_spec(text, seed=seed) if text else None
        capabilities = self._ref.capabilities
        if reliable:
            capabilities = replace(capabilities, tolerates_message_loss=True)
        self._capabilities = capabilities
        if fault_plan is not None:
            if fault_plan.byzantine_rules:
                fault_plan.bind_clients(n)
                if not capabilities.tolerates_byzantine:
                    raise CapabilityError(
                        f"fault plan {fault_plan.spec!r} makes processors "
                        f"Byzantine, but counter {self._ref.canonical!r} "
                        "does not tolerate Byzantine faults; neither a "
                        "reliable transport nor crash recovery helps "
                        "against a processor that lies — use the "
                        "'byz-counter' family (n > 3f)"
                    )
            dead = fault_plan.permanent_crash_pids
            if dead and not capabilities.tolerates_crash:
                listed = ", ".join(str(pid) for pid in sorted(dead))
                raise CapabilityError(
                    f"fault plan {fault_plan.spec!r} crashes processor(s) "
                    f"{listed} permanently, but counter "
                    f"{self._ref.canonical!r} does not tolerate crashes; "
                    "a reliable transport cannot resurrect state parked "
                    "on a dead processor — use a crash-tolerant counter "
                    "(e.g. 'central[standby]' or 'combining-tree[bypass]') "
                    "or give the plan a recover= clause"
                )
            if (
                fault_plan.non_byzantine_lossy
                and not capabilities.tolerates_message_loss
            ):
                raise CapabilityError(
                    f"fault plan {fault_plan.spec!r} can lose messages, but "
                    f"counter {self._ref.canonical!r} does not tolerate "
                    "message loss; rerun with reliable=True (CLI: --reliable) "
                    "to put it behind the retransmitting transport"
                )
        network_kwargs: dict[str, Any] = {
            "policy": policy,
            "trace_level": trace_level,
            "core": core,
        }
        if event_limit is not None:
            network_kwargs["event_limit"] = event_limit
        if fault_plan is not None:
            network_kwargs["fault_plan"] = fault_plan
        self.network = Network(**network_kwargs)
        self.network.run_context = self._ref.canonical
        self.runtime: Runtime = make_runtime(
            runtime, self.network, time_scale=time_scale
        )
        self.transport: ReliableTransport | None = (
            ReliableTransport(self.network) if reliable else None
        )
        fabric = self.transport if self.transport is not None else self.network
        self.counter = self._ref.build(fabric, n)
        self.recovery: RecoveryManager | None = None
        if (
            fault_plan is not None
            and fault_plan.crash_rules
            and isinstance(self.counter, Recoverable)
        ):
            self.recovery = RecoveryManager(
                self.network, self.counter, fault_plan
            )
            self.recovery.start()

    @property
    def ref(self) -> CounterRef:
        """The resolved counter configuration."""
        return self._ref

    @property
    def canonical(self) -> str:
        """Canonical spec string of the session's counter."""
        return self._ref.canonical

    @property
    def capabilities(self) -> Capabilities:
        """The *effective* capability record of this session's counter:
        the spec's declaration, plus ``tolerates_message_loss`` when the
        counter runs behind the reliable transport."""
        return self._capabilities

    @property
    def fault_plan(self) -> FaultPlan | None:
        """The installed fault plan, or ``None`` for failure-free runs."""
        return self.network.fault_plan

    @property
    def failure_detector(self):
        """The recovery manager's failure detector, or ``None``."""
        return self.recovery.detector if self.recovery is not None else None

    def transport_stats(self) -> dict[str, int]:
        """Reliable-transport counters (empty dict on bare sessions)."""
        if self.transport is None:
            return {}
        return self.transport.stats()

    @property
    def n(self) -> int:
        """Number of client processors."""
        return self.counter.n

    def run_sequence(
        self,
        initiators: Sequence[ProcessorId] | None = None,
        check_values: bool = True,
    ):
        """Drive *initiators* (default: the one-shot order) sequentially
        under the session's runtime.

        Operations initiated by Byzantine processors count as optional:
        a liar's corrupted request may never form a quorum, so its
        missing result is omitted rather than an error (and value
        checking degrades to strict monotonicity — see
        :func:`~repro.workloads.driver.run_sequence`).
        """
        from repro.workloads.driver import run_sequence
        from repro.workloads.sequences import one_shot

        if initiators is None:
            initiators = one_shot(self.n)
        plan = self.fault_plan
        optional = (
            plan.byzantine_pids if plan is not None else frozenset()
        )
        return run_sequence(
            self.counter, initiators, check_values=check_values,
            runtime=self.runtime, optional=optional,
        )

    def run_concurrent(
        self,
        batches: Iterable[Sequence[ProcessorId]] | None = None,
        check_values: bool = True,
    ):
        """Drive *batches* (default: one full batch) concurrently under
        the session's runtime.

        Fails fast with :class:`~repro.errors.CapabilityError` on
        sequential-only counters.
        """
        from repro.workloads.driver import run_concurrent
        from repro.workloads.sequences import one_shot

        if batches is None:
            batches = [one_shot(self.n)]
        return run_concurrent(
            self.counter, batches, check_values=check_values,
            runtime=self.runtime,
        )

    def run_open_loop(
        self,
        ops: int | None = None,
        rate: float = 1.0,
        process: str = "poisson",
        check_values: bool = True,
        turnaround: float = 1.0,
    ):
        """Drive open-loop traffic: *ops* arrivals at offered *rate*.

        Arrival times come from the named *process* (see
        :data:`~repro.workloads.sequences.ARRIVAL_PROCESSES`), seeded
        with the session seed; *ops* defaults to ``2 * n``.  Returns an
        :class:`~repro.workloads.driver.OpenLoopResult` with per-op
        latency (queueing included — this is the driver that makes the
        saturation knee measurable).  Fails fast on sequential-only
        counters.
        """
        from repro.workloads.driver import run_open_loop
        from repro.workloads.sequences import arrival_times

        if ops is None:
            ops = 2 * self.n
        arrivals = arrival_times(process, ops, rate, seed=self._seed)
        return run_open_loop(
            self.counter, arrivals, check_values=check_values,
            runtime=self.runtime, turnaround=turnaround,
        )

    def run_staggered(self, gap: float = 3.0):
        """Drive the one-shot batch with staggered starts; return timed ops.

        The staggered driver is what crash-recovery runs use: requests
        overlap (so failovers happen under load) yet have real-time
        precedence pairs, making the returned
        :class:`~repro.analysis.linearizability.TimedOp` list meaningful
        input for
        :func:`~repro.analysis.linearizability.check_linearizable_counting`.

        Operations initiated by permanently crashed or Byzantine
        processors count as optional: a dead client cannot observe its
        response, and a liar's corrupted request may never form a
        quorum, so their unanswered ops are omitted rather than errors.
        """
        from repro.analysis.linearizability import run_staggered_timed
        from repro.workloads.sequences import one_shot

        plan = self.fault_plan
        optional = (
            plan.permanent_crash_pids | plan.byzantine_pids
            if plan is not None
            else frozenset()
        )
        return run_staggered_timed(
            self.counter, one_shot(self.n), gap, optional=optional
        )

    def run_workload(self, workload: str = "one-shot"):
        """Execute a named workload from :data:`WORKLOAD_NAMES`."""
        from repro.workloads.sequences import one_shot, shuffled

        if workload == "one-shot":
            return self.run_sequence(one_shot(self.n))
        if workload == "one-shot-concurrent":
            return self.run_concurrent([one_shot(self.n)])
        if workload == "shuffled":
            return self.run_sequence(shuffled(self.n, seed=self._seed))
        raise ConfigurationError(
            f"unknown workload {workload!r}; expected one of {WORKLOAD_NAMES}"
        )


def resolve_factory(
    counter: str | CounterRef | Callable[[Network, int], DistributedCounter],
) -> Callable[[Network, int], DistributedCounter]:
    """Coerce a spec string/ref into a ``(network, n)`` factory.

    Plain callables pass through unchanged, so harnesses that predate
    the registry (and tests that build ad-hoc counters) keep working.
    """
    if callable(counter) and not isinstance(counter, CounterRef):
        return counter
    ref = parse_spec(counter)
    return ref.build


# ----------------------------------------------------------------------
# Built-in registrations
# ----------------------------------------------------------------------

def _build_central(network: Network, n: int, server_id: int = 1):
    from repro.counters import CentralCounter

    return CentralCounter(network, n, server_id=server_id)


def _build_static_tree(network: Network, n: int):
    from repro.counters import StaticTreeCounter

    return StaticTreeCounter(network, n)


def _build_ww_tree(
    network: Network,
    n: int,
    retire_threshold: int = 0,
    interval_mode: str = "strict",
):
    from repro.core import IntervalMode, TreeCounter, TreeGeometry, TreePolicy

    if retire_threshold == 0 and interval_mode == "strict":
        return TreeCounter(network, n)
    geometry = TreeGeometry.for_processors(n)
    threshold = (
        retire_threshold if retire_threshold > 0 else 4 * geometry.arity
    )
    policy = TreePolicy(
        retire_threshold=threshold,
        interval_mode=IntervalMode(interval_mode),
    )
    return TreeCounter(network, n, geometry=geometry, policy=policy)


def _build_combining_tree(
    network: Network, n: int, arity: int = 2, window: float = 0.75
):
    from repro.counters import CombiningTreeCounter

    return CombiningTreeCounter(network, n, arity=arity, window=window)


def _build_counting_network(network: Network, n: int, width: int = 0):
    from repro.counters import BitonicCountingNetwork

    return BitonicCountingNetwork(
        network, n, width=width if width > 0 else None
    )


def _build_diffracting_tree(
    network: Network,
    n: int,
    depth: int = 0,
    prism_size: int = 4,
    seed: int = 0,
    prism_wait: float = 0.75,
):
    from repro.counters import DiffractingTreeCounter

    return DiffractingTreeCounter(
        network,
        n,
        depth=depth if depth > 0 else None,
        prism_size=prism_size,
        seed=seed,
        prism_wait=prism_wait,
    )


def _build_standby_central(
    network: Network,
    n: int,
    primary_id: int = 1,
    standby_id: int = 2,
    retry: float = 20.0,
):
    from repro.counters.recoverable import StandbyCentralCounter

    return StandbyCentralCounter(
        network, n, primary_id=primary_id, standby_id=standby_id, retry=retry
    )


def _build_bypass_combining_tree(
    network: Network,
    n: int,
    arity: int = 2,
    window: float = 0.75,
    retry: float = 90.0,
):
    from repro.counters.recoverable import BypassCombiningTreeCounter

    return BypassCombiningTreeCounter(
        network, n, arity=arity, window=window, retry=retry
    )


def _build_arrow(network: Network, n: int, initial_owner: int = 1):
    from repro.counters import ArrowCounter

    return ArrowCounter(network, n, initial_owner=initial_owner)


def _build_byz_counter(network: Network, n: int, f: int = 0):
    from repro.counters import ByzantineCounter

    return ByzantineCounter(network, n, f=f)


def _quorum_builder(system_factory):
    def build(network: Network, n: int):
        from repro.quorum import QuorumCounter

        return QuorumCounter(network, n, system_factory(n))

    return build


def _populate() -> None:
    """Register the repo's ten wirings (idempotent per process)."""
    from repro.core import TreeCounter
    from repro.counters import (
        ArrowCounter,
        BitonicCountingNetwork,
        ByzantineCounter,
        CentralCounter,
        CombiningTreeCounter,
        DiffractingTreeCounter,
        StaticTreeCounter,
    )
    from repro.counters.recoverable import (
        BypassCombiningTreeCounter,
        StandbyCentralCounter,
    )
    from repro.quorum import (
        CrumblingWall,
        MaekawaGrid,
        QuorumCounter,
        RotatingMajorityQuorum,
        SingletonQuorum,
        TreePathQuorum,
        WheelQuorum,
    )

    register(CounterSpec(
        name="central",
        factory=_build_central,
        implementation=CentralCounter,
        capabilities=CentralCounter.capabilities,
        tunables=(
            Tunable("server_id", int, 1, minimum=1,
                    doc="processor that holds the value"),
        ),
        summary="the §1 strawman: value at one server, Θ(n) bottleneck",
    ))
    register(CounterSpec(
        name="static-tree",
        factory=_build_static_tree,
        implementation=StaticTreeCounter,
        capabilities=StaticTreeCounter.capabilities,
        summary="fixed k-ary relay tree without retirement",
    ))
    register(CounterSpec(
        name="ww-tree",
        factory=_build_ww_tree,
        implementation=TreeCounter,
        capabilities=TreeCounter.capabilities,
        tunables=(
            Tunable("retire_threshold", int, 0, minimum=0,
                    doc="node age that triggers retirement (0 = paper "
                        "default 4·arity)"),
            Tunable("interval_mode", str, "strict",
                    choices=("strict", "wrap"),
                    doc="what to do on id-interval exhaustion"),
        ),
        summary="the paper's communication-tree counter with retirement",
    ))
    register(CounterSpec(
        name="combining-tree",
        factory=_build_combining_tree,
        implementation=CombiningTreeCounter,
        capabilities=CombiningTreeCounter.capabilities,
        tunables=(
            Tunable("arity", int, 2, minimum=2, doc="tree fan-in"),
            Tunable("window", float, 0.75,
                    doc="combining-window length in simulated time"),
        ),
        summary="software combining tree (Yew et al. 87)",
    ))
    register(CounterSpec(
        name="central[standby]",
        factory=_build_standby_central,
        implementation=StandbyCentralCounter,
        capabilities=StandbyCentralCounter.capabilities,
        tunables=(
            Tunable("primary_id", int, 1, minimum=1,
                    doc="processor seated as the initial primary"),
            Tunable("standby_id", int, 2, minimum=1,
                    doc="processor seated as the initial hot standby"),
            Tunable("retry", float, 20.0,
                    doc="client end-to-end retry timeout in simulated "
                        "time"),
        ),
        summary="central counter + hot standby: checkpointed failover "
                "under crashes",
    ))
    register(CounterSpec(
        name="combining-tree[bypass]",
        factory=_build_bypass_combining_tree,
        implementation=BypassCombiningTreeCounter,
        capabilities=BypassCombiningTreeCounter.capabilities,
        tunables=(
            Tunable("arity", int, 2, minimum=2, doc="tree fan-in"),
            Tunable("window", float, 0.75,
                    doc="combining-window length in simulated time"),
            Tunable("retry", float, 90.0,
                    doc="client end-to-end retry timeout in simulated "
                        "time (a full tree traversal is ~40)"),
        ),
        summary="combining tree that re-links around crashed hosts "
                "(at-most-once)",
    ))
    register(CounterSpec(
        name="counting-network",
        factory=_build_counting_network,
        implementation=BitonicCountingNetwork,
        capabilities=BitonicCountingNetwork.capabilities,
        tunables=(
            Tunable("width", int, 0, minimum=0, power_of_two=True,
                    doc="network width (0 = auto: largest power of two "
                        "<= sqrt(n))"),
        ),
        summary="bitonic counting network (Aspnes/Herlihy/Shavit 91)",
    ))
    register(CounterSpec(
        name="diffracting-tree",
        factory=_build_diffracting_tree,
        implementation=DiffractingTreeCounter,
        capabilities=DiffractingTreeCounter.capabilities,
        tunables=(
            Tunable("depth", int, 0, minimum=0,
                    doc="tree depth (0 = auto from n)"),
            Tunable("prism_size", int, 4, minimum=1,
                    doc="rendezvous slots per node"),
            Tunable("seed", int, 0, doc="seed for random slot choices"),
            Tunable("prism_wait", float, 0.75,
                    doc="prism rendezvous window in simulated time"),
        ),
        summary="diffracting tree (Shavit/Zemach 94)",
    ))
    register(CounterSpec(
        name="arrow",
        factory=_build_arrow,
        implementation=ArrowCounter,
        capabilities=ArrowCounter.capabilities,
        tunables=(
            Tunable("initial_owner", int, 1, minimum=1,
                    doc="leaf that starts with the token"),
        ),
        summary="arrow/path-reversal token counter (order sensitive)",
    ))
    register(CounterSpec(
        name="byz-counter",
        factory=_build_byz_counter,
        implementation=ByzantineCounter,
        capabilities=ByzantineCounter.capabilities,
        tunables=(
            Tunable("f", int, 0, minimum=0,
                    doc="Byzantine processors tolerated (0 = auto "
                        "⌊(n−1)/3⌋; explicit f needs n > 3f)"),
        ),
        summary="replicated phase-king counter: survives f < n/3 liars",
    ))
    quorum_systems = (
        ("singleton", SingletonQuorum, False,
         "degenerates to the central counter"),
        ("majority", RotatingMajorityQuorum, False,
         "rotating ⌈(n+1)/2⌉ majorities"),
        ("maekawa", MaekawaGrid, True, "√n×√n grid rows+columns"),
        ("tree-paths", TreePathQuorum, False, "root-to-leaf tree paths"),
        ("wheel", WheelQuorum, False, "hub-and-spoke pairs"),
        ("crumbling-wall", CrumblingWall, False, "row-based wall quorums"),
    )
    for slug, system_cls, needs_square, blurb in quorum_systems:
        capabilities = QuorumCounter.capabilities
        if needs_square:
            capabilities = replace(capabilities, needs_square_n=True)
        register(CounterSpec(
            name=f"quorum[{slug}]",
            factory=_quorum_builder(system_cls),
            implementation=QuorumCounter,
            capabilities=capabilities,
            summary=f"versioned quorum counter: {blurb}",
        ))


_populate()
