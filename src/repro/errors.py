"""Exception hierarchy for the distributed-counting reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch library failures without catching unrelated bugs.  The
hierarchy distinguishes configuration mistakes (caller passed impossible
parameters), protocol violations (a processor program misbehaved), and
simulation-resource overruns (an execution did not quiesce in budget).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """Raised when a component is constructed with impossible parameters.

    Examples: a counter for ``n <= 0`` processors, a tree arity below two,
    a quorum system over an empty universe.
    """


class CapabilityError(ConfigurationError):
    """Raised when a counter is asked for something it cannot do.

    Every counter implementation declares a
    :class:`~repro.api.Capabilities` record (sequential-only protocols,
    power-of-two or square processor counts, ...).  Drivers and the
    registry check those declarations *before* running anything, so an
    impossible pairing — say, the concurrent driver on the sequential-only
    arrow counter — fails fast with a message naming the restriction
    instead of surfacing as a confusing mid-run
    :class:`ProtocolError`.
    """


class SimulationError(ReproError):
    """Base class for errors occurring while a simulation is running."""


class SimulationLimitError(SimulationError):
    """Raised when an execution exceeds its event budget.

    A correct counter protocol quiesces after every operation; hitting the
    event limit almost always means a protocol bug (a message loop) rather
    than a genuinely long execution, so this is an error and not a warning.
    Fault-injected runs hit it more often (retransmission storms, a peer
    crashed with no recovery), so the error carries enough state to act
    on: how many events ran, how many messages were still in flight, and
    which counter configuration was running.

    Attributes:
        events_executed: events executed when the budget ran out, or
            ``None`` when the raiser did not supply it.
        in_flight: messages in flight at that moment, or ``None``.
        context: the network's ``run_context`` label (typically the
            canonical counter spec), or ``""``.
    """

    def __init__(
        self,
        message: str,
        *,
        events_executed: int | None = None,
        in_flight: int | None = None,
        context: str = "",
    ) -> None:
        super().__init__(message)
        self.events_executed = events_executed
        self.in_flight = in_flight
        self.context = context


class DeliveryAbandonedError(SimulationError):
    """Raised when the reliable transport gives up on a dead destination.

    :class:`~repro.sim.transport.ReliableTransport` retransmits
    unacknowledged envelopes on a capped backoff.  Against a permanently
    crashed peer (``crash=PID@tS`` with no window end) retrying forever
    would only burn the event budget and surface later as an opaque
    :class:`SimulationLimitError`; instead, once the attempt cap is
    exhausted the transport raises this error naming the unreachable
    processor and how many attempts were made.  Callers that *want*
    best-effort semantics pass an explicit ``max_retries``, which keeps
    the silent ``gave_up`` accounting instead of raising.

    Attributes:
        receiver: the processor id the envelope could not reach.
        attempts: transmissions attempted (first send + retransmissions).
    """

    def __init__(self, message: str, *, receiver: int, attempts: int) -> None:
        super().__init__(message)
        self.receiver = receiver
        self.attempts = attempts


class ProtocolError(SimulationError):
    """Raised when a processor program violates its own protocol.

    Examples: a message of an unknown kind, a reply for an operation that
    was never initiated, a retirement hand-off to a processor outside the
    node's preallocated identifier interval.
    """


class ServiceError(ReproError):
    """Base class for errors raised by the live serving layer.

    These are the *expected* failure modes of a saturated or shutting-
    down :class:`~repro.serve.CounterService` — each maps to a
    machine-readable ``ERR <CODE>`` line on the wire, and the load
    generator's retry loop treats most of them as retryable.
    """

    #: machine-readable wire code (the first token after ``ERR``).
    code = "SERVICE"


class OverloadedError(ServiceError):
    """Raised when admission control sheds a request.

    The service bounds how many operations may wait for a free client
    processor (``max_backlog``); beyond the bound it answers
    ``ERR OVERLOADED`` immediately instead of queueing without limit.
    Shedding early keeps latency bounded for the requests it *does*
    admit — the paper's Θ(k) bottleneck means overload is a matter of
    when, not if, so the service degrades by refusing, not collapsing.
    """

    code = "OVERLOADED"


class DeadlineExceededError(ServiceError):
    """Raised when a request's deadline expires before its value arrives.

    The client's response is ``ERR DEADLINE_EXCEEDED``; an operation
    already injected into the protocol still runs to completion in the
    background (its processor id returns to the pool only then, and its
    request id is recorded as committed), so a retry with the same
    request id receives the committed value instead of double-counting.
    """

    code = "DEADLINE_EXCEEDED"


class ServiceStoppedError(ServiceError):
    """Raised when an operation meets a stopping or stopped service.

    New operations during a graceful drain answer
    ``ERR SHUTTING_DOWN``; operations stranded in flight when the pump
    stops without draining fail with this error instead of hanging
    forever.
    """

    code = "SHUTTING_DOWN"


class CircuitOpenError(ServiceError):
    """Raised by the client's circuit breaker while it is open.

    After a run of consecutive transport failures the breaker fails
    fast locally instead of hammering a dead or resetting service;
    after ``reset_timeout`` it half-opens and lets a single probe
    through.
    """

    code = "CIRCUIT_OPEN"


class ReplayMismatchError(ReproError):
    """Raised when a fixture bundle fails offline re-verification.

    :func:`repro.shard.fixture.replay_bundle` re-executes a recorded
    keyed run on the simulated runtime and compares every per-request
    value, every topology event, the final keyspace snapshot and the
    per-shard trace fingerprints against the bundle.  Any divergence —
    a corrupted record, a tampered snapshot, a non-deterministic
    protocol — raises this error with a diagnostic pointing at the
    offending file and line.
    """


class InvariantViolationError(ReproError):
    """Raised by invariant checkers when a paper lemma fails on a trace.

    The checkers in :mod:`repro.core.invariants` and
    :mod:`repro.lowerbound.hotspot` raise this when an executed trace
    contradicts a lemma of the paper (e.g. two successive increment
    footprints that do not intersect).  In a correct build this is
    unreachable; tests assert both that it does not fire on the shipped
    counters and that it does fire on deliberately broken ones.
    """


class UnknownProcessorError(SimulationError):
    """Raised when a message is addressed to an unregistered processor."""


class DuplicateProcessorError(SimulationError):
    """Raised when two processors are registered under the same id.

    Ids are the paper's unique identities; a second registration is
    always a wiring bug in the caller, never a recoverable condition.
    """


class TraceCapabilityError(SimulationError):
    """Raised when an analysis needs trace data that was not captured.

    The simulator supports tiered tracing
    (:class:`~repro.sim.trace.TraceLevel`): ``FULL`` keeps every
    delivered-message record, ``LOADS`` keeps only columnar counters, and
    ``OFF`` keeps nothing.  Querying a view the chosen level did not
    capture (e.g. ``records_for_op`` on a ``LOADS`` trace) raises this
    error naming the level required — rerun the simulation at that level.
    """
