"""§3 of the paper, executable: the lower-bound machinery.

* :mod:`~repro.lowerbound.hotspot` — the Hot Spot Lemma as a trace check.
* :mod:`~repro.lowerbound.weights` — the proof's weight function and the
  AM–GM step, recomputed on real runs.
* :mod:`~repro.lowerbound.adversary` — the greedy longest-list adversary
  playing against arbitrary counter implementations.
* :mod:`~repro.lowerbound.bound` — the ``k·kᵏ = n`` curve, its integer
  floor, and asymptotics.
"""

from repro.lowerbound.adversary import AdversarialRun, GreedyAdversary
from repro.lowerbound.exact import ExactAdversary, ExactAdversaryResult
from repro.lowerbound.bound import (
    asymptotic_k,
    bound_series,
    lower_bound_k,
    message_load_bound,
    paper_n,
)
from repro.lowerbound.hotspot import (
    HotSpotReport,
    HotSpotViolation,
    check_hot_spot,
    effective_footprint,
)
from repro.lowerbound.weights import (
    LedgerStep,
    WeightReport,
    am_gm_holds,
    evaluate_ledger,
    weight_of,
)

__all__ = [
    "AdversarialRun",
    "ExactAdversary",
    "ExactAdversaryResult",
    "GreedyAdversary",
    "HotSpotReport",
    "HotSpotViolation",
    "LedgerStep",
    "WeightReport",
    "am_gm_holds",
    "asymptotic_k",
    "bound_series",
    "check_hot_spot",
    "effective_footprint",
    "evaluate_ledger",
    "lower_bound_k",
    "message_load_bound",
    "paper_n",
    "weight_of",
]
