"""Exhaustive order search: the true worst case over operation orders.

The greedy adversary of :mod:`repro.lowerbound.adversary` realizes the
proof's *construction*; this module computes the quantity the theorem
actually bounds — ``max over orders`` of the bottleneck load — by
enumerating (or branch-and-bound pruning) every permutation of the
one-shot workload.  Feasible for small ``n`` only (the search runs
``O(n!)`` full simulations before pruning), it serves two purposes:

* calibrate the greedy adversary: how close does longest-list greed get
  to the exhaustive worst case (benchmark E16)?
* validate the theorem at its own quantifier: ``exact ≥ ⌊k(n)⌋`` on
  every implementation.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.api import CounterFactory
from repro.errors import ConfigurationError
from repro.sim.messages import ProcessorId
from repro.sim.network import Network
from repro.sim.policies import DeliveryPolicy


@dataclass(frozen=True, slots=True)
class ExactAdversaryResult:
    """Outcome of the exhaustive order search."""

    n: int
    worst_order: tuple[ProcessorId, ...]
    worst_bottleneck: int
    orders_explored: int
    orders_pruned_by_symmetry: int


class ExactAdversary:
    """Search every one-shot order for the maximum bottleneck load.

    Args:
        factory: counter under attack — a registry spec string, a
            :class:`~repro.registry.CounterRef`, or a plain factory.
        n: workload size.  Guarded at ≤ 9 — beyond that the factorial
            search is not a tool, it is a space heater.
        policy: delivery policy (trials inherit copies).
        symmetry_prefix: if True, prune first-choice symmetry by trying
            only the distinct *behaviours* of the first pick, detected
            via the trial trace signature.  Sound for implementations
            whose clients are interchangeable up to renaming; disable
            for full exhaustiveness.
    """

    def __init__(
        self,
        factory: CounterFactory | str,
        n: int,
        policy: DeliveryPolicy | None = None,
        max_n: int = 9,
    ) -> None:
        from repro.registry import resolve_factory

        if n > max_n:
            raise ConfigurationError(
                f"exact search over {n}! orders is infeasible (limit {max_n})"
            )
        self._factory = resolve_factory(factory)
        self._n = n
        self._policy = policy

    def run(self) -> ExactAdversaryResult:
        """Explore the order tree; return the worst order found."""
        # FULL tracing on purpose: branch evaluation reads record history,
        # which the fast trace levels do not keep.
        network = Network(policy=self._policy)
        counter = self._factory(network, self._n)
        best = {
            "order": (),
            "bottleneck": -1,
            "explored": 0,
            "pruned": 0,
        }
        self._search(network, counter, chosen=[], remaining=list(range(1, self._n + 1)), best=best)
        return ExactAdversaryResult(
            n=self._n,
            worst_order=tuple(best["order"]),
            worst_bottleneck=best["bottleneck"],
            orders_explored=best["explored"],
            orders_pruned_by_symmetry=best["pruned"],
        )

    def _search(self, network, counter, chosen, remaining, best) -> None:
        if not remaining:
            bottleneck = network.trace.bottleneck()[1]
            best["explored"] += 1
            if bottleneck > best["bottleneck"]:
                best["bottleneck"] = bottleneck
                best["order"] = list(chosen)
            return
        op_index = len(chosen)
        seen_signatures: set = set()
        for pid in remaining:
            network_copy, counter_copy = copy.deepcopy((network, counter))
            counter_copy.begin_inc(pid, op_index)
            network_copy.run_until_quiescent()
            # Symmetry pruning: two candidates whose incs touch the
            # same multiset of (relabelled-self) endpoints from the
            # same state lead to isomorphic futures; keep one.
            signature = self._signature(network_copy, op_index, pid)
            if signature in seen_signatures:
                best["pruned"] += 1
                continue
            seen_signatures.add(signature)
            chosen.append(pid)
            self._search(
                network_copy,
                counter_copy,
                chosen,
                [p for p in remaining if p != pid],
                best,
            )
            chosen.pop()

    @staticmethod
    def _signature(network, op_index, pid):
        """Trace signature of one trial inc, with the initiator masked.

        Two first-moves with equal signatures produce states identical
        up to swapping the initiators' ids, so exploring both only
        renames the remainder of the search tree.
        """
        records = network.trace.records_for_op(op_index)
        mask = lambda p: -1 if p == pid else p  # noqa: E731
        footprint = tuple(
            sorted((mask(r.sender), mask(r.receiver), r.kind) for r in records)
        )
        loads = tuple(
            sorted(
                (mask(p), load)
                for p, load in network.trace.loads().items()
            )
        )
        return (footprint, loads)
