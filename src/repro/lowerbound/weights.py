"""The weight function of the Lower Bound Theorem, executable (§3).

The proof tracks, for the processor ``q`` chosen last, the weight of its
(hypothetical) communication list before each operation ``i``:

    w_i = Σ_{j=1..l_i} (m(p_{i,j}) + 1) / β^j

where ``p_{i,j}`` is the j-th label of q's list, ``m(p)`` is p's message
load *before* operation i, and ``β`` is a base tied to the final
bottleneck load (the paper uses ``β = m_b + 1``; the OCR of the original
obscures the exact constant, so the base is a parameter here).

The proof's engine is that each operation must touch q's list (Hot Spot
Lemma), bumping some prefix position's load, so the weight *grows* by at
least a term geometric in the list length; summing the growth over all n
operations and applying AM–GM yields ``β·β^β ≳ n`` and hence the Ω(k)
bound with ``k·kᵏ = n``.

This module recomputes every ``w_i`` from an adversarial run's recorded
trial lists and load snapshots, reports the growth profile and evaluates
the final AM–GM inequality — turning the proof's internal quantities into
measurable diagnostics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConfigurationError
from repro.sim.messages import OpIndex, ProcessorId


@dataclass(frozen=True, slots=True)
class LedgerStep:
    """The proof's per-operation snapshot for processor ``q``.

    Attributes:
        op_index: which operation this snapshot precedes.
        q_list: the labels of q's (trial) communication list at this
            point — the paper's ``p_{i,1} … p_{i,l_i}`` with
            ``p_{i,1} = q``.
        chosen_list_length: the list length of the processor the
            adversary actually chose — the paper's ``L_i ≥ l_i``.
        loads_before: message loads of all processors before the
            operation — the paper's ``m(·)`` at step i.
    """

    op_index: OpIndex
    q_list: tuple[ProcessorId, ...]
    chosen_list_length: int
    loads_before: dict[ProcessorId, int]

    @property
    def q(self) -> ProcessorId:
        """The last-chosen processor the ledger tracks."""
        return self.q_list[0]

    @property
    def list_length(self) -> int:
        """The paper's ``l_i`` — arcs in q's list."""
        return max(0, len(self.q_list) - 1)


@dataclass(frozen=True, slots=True)
class WeightReport:
    """Everything the weight argument yields on one adversarial run."""

    base: float
    weights: tuple[float, ...]
    list_lengths: tuple[int, ...]
    growth_steps: int
    shrink_steps: int
    final_weight: float
    geometric_sum: float
    am_gm_floor: float

    @property
    def monotone(self) -> bool:
        """True if the weight never shrank (the proof's driving fact)."""
        return self.shrink_steps == 0


def weight_of(
    labels: Sequence[ProcessorId],
    loads: dict[ProcessorId, int],
    base: float,
) -> float:
    """One weight value: ``Σ_{j≥1} (m(p_j)+1)/base^j`` over list *labels*.

    The initiator occupies position j=1, as in the paper (its list node
    ``p_{i,1} = q``).
    """
    if base <= 1.0:
        raise ConfigurationError(f"weight base must exceed 1, got {base}")
    total = 0.0
    for position, pid in enumerate(labels, start=1):
        total += (loads.get(pid, 0) + 1) / base**position
    return total


def evaluate_ledger(steps: Sequence[LedgerStep], base: float) -> WeightReport:
    """Recompute all ``w_i`` and the final AM–GM inequality of the proof.

    ``geometric_sum`` is ``Σ_i base^{-l_i}`` — the proof's total growth
    budget; ``am_gm_floor`` is its AM–GM lower bound
    ``n · base^{-mean(l_i)}``.  The theorem's engine is
    ``geometric_sum ≥ am_gm_floor``, which this function verifies exactly
    (it is pure arithmetic), while the growth profile
    (``growth_steps`` / ``shrink_steps``) is an empirical property of the
    run under test.
    """
    if not steps:
        raise ConfigurationError("cannot evaluate an empty ledger")
    weights = [
        weight_of(step.q_list, step.loads_before, base) for step in steps
    ]
    growth = sum(
        1 for a, b in zip(weights, weights[1:]) if b >= a - 1e-12
    )
    shrink = len(weights) - 1 - growth
    lengths = [step.list_length for step in steps]
    geometric_sum = sum(base**-length for length in lengths)
    mean_length = sum(lengths) / len(lengths)
    am_gm_floor = len(lengths) * base**-mean_length
    return WeightReport(
        base=base,
        weights=tuple(weights),
        list_lengths=tuple(lengths),
        growth_steps=growth,
        shrink_steps=shrink,
        final_weight=weights[-1],
        geometric_sum=geometric_sum,
        am_gm_floor=am_gm_floor,
    )


def am_gm_holds(report: WeightReport) -> bool:
    """The AM–GM step ``Σ β^{-l_i} ≥ n·β^{-mean(l)}`` — always true.

    Kept as a named check so the property tests can hammer it with
    arbitrary ledgers (it is the only purely arithmetic link in the
    proof's chain, and the one the final bound rests on).
    """
    return report.geometric_sum >= report.am_gm_floor - 1e-9
