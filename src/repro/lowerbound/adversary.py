"""The greedy adversary of the Lower Bound Theorem (§3), executable.

The proof constructs a worst-case operation sequence: "For each operation
in the sequence we choose a processor (among those that have not been
chosen yet) and a process such that the processor's communication list is
longest."  This module plays that adversary against *any real counter
implementation*:

* at each step it trial-runs the next ``inc`` of every remaining
  candidate on a deep copy of the whole system, measures the resulting
  communication-list length, and commits the longest;
* along the way it records, for the processor that ends up being chosen
  last (the proof's ``q``), the trial list and the pre-operation load
  snapshot of every step — producing exactly the ledger the weight
  function of :mod:`repro.lowerbound.weights` consumes.

The trial runs exploit the simulator's determinism: a deep copy of
(network, counter) behaves identically to the original, which
operationalizes the proof's "possible prefixes of processes" without
special counter support.

Cost is ``O(n²)`` simulations; ``sample_size`` caps the candidate set per
step for larger sweeps (the committed choice is then the max over the
sample — still an adversary, just a weaker one, and the measured
bottleneck only shrinks, so bound checks stay sound).
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass

from repro.analysis.dag import build_list
from repro.api import CounterFactory
from repro.errors import ProtocolError
from repro.lowerbound.weights import LedgerStep
from repro.sim.messages import ProcessorId
from repro.sim.network import Network
from repro.sim.policies import DeliveryPolicy
from repro.workloads.driver import OpOutcome, RunResult


@dataclass(slots=True)
class AdversarialRun:
    """Result of driving a counter with the greedy adversary."""

    result: RunResult
    order: list[ProcessorId]
    chosen_lengths: list[int]
    """The paper's ``L_i``: list length of the processor chosen at step i."""
    ledger: list[LedgerStep]
    """Per-step snapshots for the last-chosen processor ``q``."""

    @property
    def q(self) -> ProcessorId:
        """The processor chosen last — the proof's ``q``."""
        return self.order[-1]

    @property
    def bottleneck_load(self) -> int:
        """The measured ``m_b`` the theorem lower-bounds."""
        return self.result.bottleneck_load()


class GreedyAdversary:
    """Longest-communication-list adversary over a counter factory.

    Args:
        factory: the counter under attack — a registry spec string
            (``"central"``, ``"combining-tree?window=3.0"``), a
            :class:`~repro.registry.CounterRef`, or a plain
            ``(network, n)`` factory.
        n: number of client processors (each incs exactly once).
        policy: delivery policy for the committed run (trials inherit
            copies of its state, so trial and commit see identical
            nondeterminism).
        sample_size: evaluate at most this many candidates per step
            (None = all remaining, the paper's full adversary).
        seed: seed for candidate sampling.
    """

    def __init__(
        self,
        factory: CounterFactory | str,
        n: int,
        policy: DeliveryPolicy | None = None,
        sample_size: int | None = None,
        seed: int = 0,
    ) -> None:
        from repro.registry import resolve_factory

        self._factory = resolve_factory(factory)
        self._n = n
        self._policy = policy
        self._sample_size = sample_size
        self._rng = random.Random(seed)

    def run(self) -> AdversarialRun:
        """Play the full n-step adversarial game; return the run + ledger."""
        # Always a FULL-tracing network: the adversary's list
        # reconstruction and weight function need the record history that
        # the fast trace levels do not keep.
        network = Network(policy=self._policy)
        counter = self._factory(network, self._n)
        remaining = list(range(1, self._n + 1))
        order: list[ProcessorId] = []
        chosen_lengths: list[int] = []
        trials_by_step: list[dict[ProcessorId, tuple[ProcessorId, ...]]] = []
        loads_by_step: list[dict[ProcessorId, int]] = []
        result = RunResult(counter_name=counter.name, n=self._n, trace=network.trace)

        for op_index in range(self._n):
            candidates = self._candidates(remaining)
            trials: dict[ProcessorId, tuple[ProcessorId, ...]] = {}
            best_pid = candidates[0]
            best_length = -1
            for pid in candidates:
                labels = self._trial_list(network, counter, pid, op_index)
                trials[pid] = labels
                length = len(labels) - 1
                if length > best_length or (
                    length == best_length and pid < best_pid
                ):
                    best_length = length
                    best_pid = pid
            loads_by_step.append(network.trace.load_snapshot(op_index))
            trials_by_step.append(trials)
            # Commit the chosen processor's inc on the real system.
            before = counter.results_for(best_pid)
            counter.begin_inc(best_pid, op_index)
            network.run_until_quiescent()
            after = counter.results_for(best_pid)
            if len(after) != len(before) + 1:
                raise ProtocolError(
                    f"adversary step {op_index}: processor {best_pid} got "
                    f"{len(after) - len(before)} results instead of 1"
                )
            order.append(best_pid)
            chosen_lengths.append(best_length)
            remaining.remove(best_pid)
            result.outcomes.append(
                OpOutcome(
                    op_index=op_index,
                    initiator=best_pid,
                    value=after[-1],
                    messages=network.trace.messages_for_op(op_index),
                )
            )

        q = order[-1]
        ledger = [
            LedgerStep(
                op_index=op_index,
                q_list=trials_by_step[op_index].get(q, (q,)),
                chosen_list_length=chosen_lengths[op_index],
                loads_before=loads_by_step[op_index],
            )
            for op_index in range(self._n)
        ]
        return AdversarialRun(
            result=result,
            order=order,
            chosen_lengths=chosen_lengths,
            ledger=ledger,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _candidates(self, remaining: list[ProcessorId]) -> list[ProcessorId]:
        """All remaining processors, or a sample — q always included.

        Keeping the eventual-last processor in every sample is impossible
        to know in advance, so the sample is made *inclusive of the
        current tail candidate*: the lowest remaining id is always kept,
        giving the ledger a consistently observed processor when sampling
        is on.
        """
        if self._sample_size is None or len(remaining) <= self._sample_size:
            return list(remaining)
        sample = self._rng.sample(remaining, self._sample_size)
        anchor = min(remaining)
        if anchor not in sample:
            sample[0] = anchor
        return sample

    def _trial_list(
        self,
        network: Network,
        counter,
        pid: ProcessorId,
        op_index: int,
    ) -> tuple[ProcessorId, ...]:
        """Run *pid*'s next inc on a deep copy; return its list labels."""
        network_copy, counter_copy = copy.deepcopy((network, counter))
        counter_copy.begin_inc(pid, op_index)
        network_copy.run_until_quiescent()
        return build_list(network_copy.trace, op_index, pid).labels
