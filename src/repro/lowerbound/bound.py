"""Closed-form pieces of the Lower Bound Theorem (§3).

The theorem: in any distributed counter over ``n`` processors, under the
one-shot workload, some processor sends and receives at least ``k``
messages, where ``k`` solves ``k·kᵏ = n`` — i.e. ``k = Θ(log n / log log
n)``.  This module provides the bound curve, its inverse, and its
asymptotic comparison series; the executable proof steps live in
:mod:`repro.lowerbound.weights` and :mod:`repro.lowerbound.adversary`.
"""

from __future__ import annotations

import math

from repro.core.tree.geometry import lower_bound_k
from repro.errors import ConfigurationError

__all__ = [
    "asymptotic_k",
    "bound_series",
    "lower_bound_k",
    "message_load_bound",
    "paper_n",
]


def paper_n(k: int) -> int:
    """The workload size the bound is stated for: ``n = k·kᵏ = k^(k+1)``."""
    if k < 1:
        raise ConfigurationError(f"k must be positive, got {k}")
    return k ** (k + 1)


def message_load_bound(n: int) -> int:
    """The integer lower bound on the bottleneck load for *n* processors.

    ``⌊k(n)⌋`` with ``k(n)`` the real solution of ``k·kᵏ = n`` — the
    strongest integer statement the theorem supports.
    """
    if n < 1:
        raise ConfigurationError(f"n must be positive, got {n}")
    # The bisection can land a hair under an exact integer solution
    # (k(1024) = 4 - 1e-12); nudge before flooring.
    return max(1, math.floor(lower_bound_k(n) + 1e-9))


def asymptotic_k(n: int) -> float:
    """First-order asymptotics of the bound: ``ln n / ln ln n``.

    Useful in benches to show ``k(n)`` hugging its asymptote — the reason
    the paper calls the bottleneck "inherent but mild".
    """
    if n <= math.e:
        return 1.0
    log_n = math.log(n)
    return log_n / math.log(log_n)


def bound_series(ns: list[int]) -> list[tuple[int, float, int, float]]:
    """Rows ``(n, k(n), ⌊k(n)⌋, ln n/ln ln n)`` for a sweep of *ns*."""
    return [
        (n, lower_bound_k(n), message_load_bound(n), asymptotic_k(n))
        for n in ns
    ]
