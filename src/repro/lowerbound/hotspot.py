"""The Hot Spot Lemma (§2), as an executable check on traces.

    Let p and q be two processors that increment the counter in direct
    succession.  Then ``I_p ∩ I_q ≠ ∅`` must hold.

``I_p`` is the set of processors that send or receive a message during
``p``'s inc process.  If the footprints of two successive operations were
disjoint, nobody involved in the second operation could know about the
first increment, so the second would return a stale value.

The check runs over any recorded run.  The *effective* footprint also
contains the initiator itself: an operation answered without any message
(a server incrementing its own counter) has an empty message footprint
but the initiator trivially carries the knowledge — the paper's DAG
always contains the source node, messages or not.

The lemma holds for every *correct* counter, which is exactly what makes
it useful in tests twice over: it must pass on all shipped counters, and
it must fail on the deliberately broken counter in the test suite (one
that returns values from stale local caches).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvariantViolationError
from repro.sim.messages import OpIndex, ProcessorId
from repro.workloads.driver import RunResult


@dataclass(frozen=True, slots=True)
class HotSpotViolation:
    """A pair of successive operations with disjoint footprints."""

    first_op: OpIndex
    second_op: OpIndex
    first_footprint: frozenset[ProcessorId]
    second_footprint: frozenset[ProcessorId]

    def __str__(self) -> str:
        return (
            f"ops {self.first_op} and {self.second_op} have disjoint "
            f"footprints {sorted(self.first_footprint)} / "
            f"{sorted(self.second_footprint)}"
        )


@dataclass(frozen=True, slots=True)
class HotSpotReport:
    """Outcome of a Hot Spot Lemma check over one run."""

    pairs_checked: int
    violations: tuple[HotSpotViolation, ...]
    min_intersection: int
    """Smallest ``|I_p ∩ I_q|`` over all checked pairs (0 iff violated)."""

    @property
    def holds(self) -> bool:
        """True iff every successive pair of footprints intersects."""
        return not self.violations


def effective_footprint(result: RunResult, op_index: OpIndex) -> frozenset[ProcessorId]:
    """``I_p`` of an operation, including the initiator itself."""
    outcome = result.outcomes[op_index]
    return result.trace.footprint(op_index) | {outcome.initiator}


def check_hot_spot(result: RunResult, strict: bool = False) -> HotSpotReport:
    """Check the Hot Spot Lemma over every successive pair in *result*.

    With ``strict=True`` the first violation raises
    :class:`~repro.errors.InvariantViolationError` instead of being
    collected.
    """
    violations: list[HotSpotViolation] = []
    min_intersection: int | None = None
    pairs = 0
    for index in range(len(result.outcomes) - 1):
        first = effective_footprint(result, index)
        second = effective_footprint(result, index + 1)
        overlap = len(first & second)
        pairs += 1
        if min_intersection is None or overlap < min_intersection:
            min_intersection = overlap
        if overlap == 0:
            violation = HotSpotViolation(
                first_op=index,
                second_op=index + 1,
                first_footprint=first,
                second_footprint=second,
            )
            if strict:
                raise InvariantViolationError(f"Hot Spot Lemma violated: {violation}")
            violations.append(violation)
    return HotSpotReport(
        pairs_checked=pairs,
        violations=tuple(violations),
        min_intersection=min_intersection if min_intersection is not None else 0,
    )
