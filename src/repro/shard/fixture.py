"""Replayable fixture bundles: every service run verifiable offline.

A keyed service run is a stream of facts — which keys were incremented,
in which combined batches, on which shards, across which topology
changes — and because the simulated and asyncio runtimes produce
fingerprint-identical traces (the PR 7 seam guarantee), those facts are
enough to re-execute the entire run deterministically after the fact.
The bundle is the unit of that verifiability (modeled on Counter_Risk's
fixture-replay pipeline):

========================= ============================================
File                      Contents
========================= ============================================
``manifest.json``         map configuration (spec, n, shards, seed,
                          batch_max, policy) + record counts
``requests.jsonl``        one line per keyed increment: seq, key, rid,
                          value, shard, batch, pid — in inject order
``events.jsonl``          topology events (split/merge/failover) with
                          the global sequence position they occurred at
``snapshot.json``         final keyspace values, shard ranges, op
                          total, per-shard trace fingerprints
========================= ============================================

All files are byte-stable: sorted keys, fixed separators, no
timestamps — writing the same run twice produces identical bytes, and
:func:`replay_bundle` re-records the run it replays, so a replayed
bundle can itself be re-written and compared byte-for-byte.

:func:`replay_bundle` (the ``repro replay`` CLI) rebuilds the map on
the simulated runtime, re-applies every batch at the recorded
boundaries and every topology event at its recorded position, and
verifies: each op's value, each event's outcome, the final snapshot,
the shard ranges, and the per-shard fingerprints.  Any divergence
raises :class:`~repro.errors.ReplayMismatchError` naming the offending
file (and line, for records).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.errors import ReplayMismatchError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.shard.map import CounterShardMap

__all__ = [
    "FixtureRecorder",
    "ReplayReport",
    "replay_bundle",
    "write_bundle",
]

BUNDLE_FORMAT = 1
"""Bundle schema version written to (and required of) manifests."""

_MANIFEST_KEYS = ("spec", "n", "shards", "seed", "batch_max", "policy")
_OP_KEYS = ("seq", "key", "rid", "value", "shard", "batch", "pid")


@dataclass(slots=True)
class FixtureRecorder:
    """Accumulates one run's facts as the map executes.

    Attach one to :class:`~repro.shard.map.CounterShardMap`; the map
    calls :meth:`record_config` at construction, :meth:`record_op` per
    settled increment and :meth:`record_event` per topology change.
    """

    config: dict[str, Any] | None = None
    ops: list[dict[str, Any]] = field(default_factory=list)
    events: list[dict[str, Any]] = field(default_factory=list)

    def record_config(self, config: dict[str, Any]) -> None:
        self.config = dict(config)

    def record_op(self, op: dict[str, Any]) -> None:
        self.ops.append(op)

    def record_event(self, event: dict[str, Any]) -> None:
        self.events.append(event)


def _dump_line(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n"


def _dump_doc(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, indent=2) + "\n"


def write_bundle(path: str | Path, shard_map: "CounterShardMap") -> Path:
    """Write *shard_map*'s recorded run as a fixture bundle at *path*.

    The map must have been constructed with a
    :class:`FixtureRecorder`.  Returns the bundle directory.  Writing
    is byte-stable: the same run always produces identical files.
    """
    recorder = shard_map.recorder
    if recorder is None or recorder.config is None:
        raise ReplayMismatchError(
            "the shard map was built without a FixtureRecorder; "
            "pass recorder=FixtureRecorder() to record a bundle"
        )
    bundle = Path(path)
    bundle.mkdir(parents=True, exist_ok=True)
    manifest = dict(recorder.config)
    manifest["format"] = BUNDLE_FORMAT
    manifest["ops"] = len(recorder.ops)
    manifest["events"] = len(recorder.events)
    (bundle / "manifest.json").write_text(_dump_doc(manifest))
    # Ops are recorded at settle time, and concurrent shards settle out
    # of order; seqs are assigned atomically per batch, so sorting by
    # seq restores the global inject order the replayer expects.
    with (bundle / "requests.jsonl").open("w") as handle:
        for op in sorted(recorder.ops, key=lambda op: op["seq"]):
            handle.write(_dump_line(op))
    with (bundle / "events.jsonl").open("w") as handle:
        for event in sorted(recorder.events, key=lambda ev: ev["at_seq"]):
            handle.write(_dump_line(event))
    stats = shard_map.stats()
    snapshot = {
        "ops": shard_map.total_ops,
        "values": shard_map.snapshot(),
        "ranges": [
            [r.shard_id, r.start, r.stop] for r in shard_map.router.ranges()
        ],
        "fingerprints": {
            str(shard_id): fingerprint
            for shard_id, fingerprint in shard_map.fingerprints().items()
        },
        "splits": stats["splits"],
        "merges": stats["merges"],
        "failovers": stats["failovers"],
    }
    (bundle / "snapshot.json").write_text(_dump_doc(snapshot))
    return bundle


@dataclass(frozen=True, slots=True)
class ReplayReport:
    """What a successful replay verified."""

    bundle: Path
    spec: str
    ops: int
    batches: int
    events: int
    shards: int
    keys: int
    fingerprints_checked: int
    shard_map: "CounterShardMap"

    def summary(self) -> str:
        """One human-readable verdict line (the CLI's output)."""
        return (
            f"REPLAY OK {self.bundle}: {self.ops} ops in "
            f"{self.batches} batches over {self.shards} shards "
            f"({self.keys} keys, {self.events} topology events, "
            f"{self.fingerprints_checked} trace fingerprints verified)"
        )


def _load_doc(path: Path) -> Any:
    if not path.is_file():
        raise ReplayMismatchError(f"{path}: bundle file missing")
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ReplayMismatchError(f"{path}: not valid JSON: {exc}") from None


def _load_records(
    path: Path, required: tuple[str, ...]
) -> list[tuple[int, dict[str, Any]]]:
    if not path.is_file():
        raise ReplayMismatchError(f"{path}: bundle file missing")
    records: list[tuple[int, dict[str, Any]]] = []
    with path.open() as handle:
        for lineno, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ReplayMismatchError(
                    f"{path}:{lineno}: not valid JSON: {exc}"
                ) from None
            missing = [key for key in required if key not in record]
            if missing:
                raise ReplayMismatchError(
                    f"{path}:{lineno}: record is missing "
                    f"field(s) {missing}"
                )
            records.append((lineno, record))
    return records


def replay_bundle(path: str | Path) -> ReplayReport:
    """Re-execute and verify the fixture bundle at *path*.

    Rebuilds the :class:`~repro.shard.map.CounterShardMap` from the
    manifest on the simulated runtime, replays every recorded batch at
    its recorded boundary and every topology event at its recorded
    sequence position, and checks each fact in the bundle against the
    re-execution.  Returns a :class:`ReplayReport`; the replayed map
    carries its own recorder, so the verified run can be re-written
    with :func:`write_bundle` and compared byte-for-byte.

    Raises:
        ReplayMismatchError: any missing/corrupt file or any divergence
            between the bundle and the re-execution, with a diagnostic
            naming the offending file and line.
    """
    from repro.shard.map import CounterShardMap

    bundle = Path(path)
    manifest_path = bundle / "manifest.json"
    manifest = _load_doc(manifest_path)
    if manifest.get("format") != BUNDLE_FORMAT:
        raise ReplayMismatchError(
            f"{manifest_path}: unsupported bundle format "
            f"{manifest.get('format')!r} (expected {BUNDLE_FORMAT})"
        )
    for key in _MANIFEST_KEYS:
        if key not in manifest:
            raise ReplayMismatchError(
                f"{manifest_path}: manifest is missing {key!r}"
            )

    requests_path = bundle / "requests.jsonl"
    records = _load_records(requests_path, _OP_KEYS)
    if len(records) != manifest["ops"]:
        raise ReplayMismatchError(
            f"{requests_path}: {len(records)} records but the manifest "
            f"declares {manifest['ops']}"
        )
    for index, (lineno, record) in enumerate(records):
        if record["seq"] != index:
            raise ReplayMismatchError(
                f"{requests_path}:{lineno}: sequence gap — record has "
                f"seq={record['seq']}, expected {index}"
            )

    events_path = bundle / "events.jsonl"
    events = _load_records(events_path, ("kind", "at_seq"))
    if len(events) != manifest["events"]:
        raise ReplayMismatchError(
            f"{events_path}: {len(events)} records but the manifest "
            f"declares {manifest['events']}"
        )

    recorder = FixtureRecorder()
    shard_map = CounterShardMap(
        manifest["spec"],
        manifest["n"],
        shards=manifest["shards"],
        seed=manifest["seed"],
        batch_max=manifest["batch_max"],
        policy=manifest["policy"],
        runtime="sim",
        recorder=recorder,
    )

    event_index = 0

    def apply_events(up_to_seq: int | None) -> int:
        nonlocal event_index
        applied = 0
        while event_index < len(events):
            lineno, event = events[event_index]
            if up_to_seq is not None and event["at_seq"] > up_to_seq:
                break
            _apply_event(shard_map, events_path, lineno, event)
            event_index += 1
            applied += 1
        return applied

    batches = 0
    cursor = 0
    while cursor < len(records):
        lineno, first = records[cursor]
        end = cursor
        while (
            end < len(records)
            and records[end][1]["shard"] == first["shard"]
            and records[end][1]["batch"] == first["batch"]
        ):
            end += 1
        chunk = records[cursor:end]
        apply_events(first["seq"])
        _replay_batch(shard_map, requests_path, chunk)
        batches += 1
        cursor = end
    apply_events(None)

    _verify_snapshot(bundle, shard_map)
    snapshot = _load_doc(bundle / "snapshot.json")
    checked = sum(
        1
        for shard_id, recorded in snapshot.get("fingerprints", {}).items()
        if recorded is not None
        and shard_map.fingerprints().get(int(shard_id)) is not None
    )
    return ReplayReport(
        bundle=bundle,
        spec=shard_map.spec,
        ops=shard_map.total_ops,
        batches=batches,
        events=len(events),
        shards=shard_map.shard_count,
        keys=len(shard_map.snapshot()),
        fingerprints_checked=checked,
        shard_map=shard_map,
    )


def _apply_event(
    shard_map: "CounterShardMap",
    path: Path,
    lineno: int,
    event: dict[str, Any],
) -> None:
    kind = event["kind"]
    try:
        if kind == "split":
            new_id = shard_map.split(event["shard"])
            if new_id != event["new_shard"]:
                raise ReplayMismatchError(
                    f"{path}:{lineno}: split of shard {event['shard']} "
                    f"produced shard {new_id}, bundle says "
                    f"{event['new_shard']}"
                )
        elif kind == "merge":
            recorded = event.get("absorbed_fingerprint")
            if recorded is not None:
                actual = shard_map.shard(event["absorbed"]).fingerprint()
                if actual is not None and actual != recorded:
                    raise ReplayMismatchError(
                        f"{path}:{lineno}: absorbed shard "
                        f"{event['absorbed']}'s trace fingerprint "
                        f"diverged from the bundle"
                    )
            shard_map.merge(event["survivor"], event["absorbed"])
        elif kind == "failover":
            pid = shard_map.failover(event["shard"])
            if pid != event["pid"]:
                raise ReplayMismatchError(
                    f"{path}:{lineno}: failover on shard "
                    f"{event['shard']} drilled pid {pid}, bundle says "
                    f"{event['pid']}"
                )
        else:
            raise ReplayMismatchError(
                f"{path}:{lineno}: unknown event kind {kind!r}"
            )
    except ReplayMismatchError:
        raise
    except Exception as exc:
        raise ReplayMismatchError(
            f"{path}:{lineno}: {kind} event failed to re-apply: {exc}"
        ) from exc


def _replay_batch(
    shard_map: "CounterShardMap",
    path: Path,
    chunk: list[tuple[int, dict[str, Any]]],
) -> None:
    lineno, first = chunk[0]
    shard_id = first["shard"]
    try:
        batch = shard_map.begin_batch(
            shard_id,
            [(record["key"], record["rid"]) for _, record in chunk],
        )
    except Exception as exc:
        raise ReplayMismatchError(
            f"{path}:{lineno}: batch {first['batch']} on shard "
            f"{shard_id} failed to re-inject: {exc}"
        ) from exc
    if batch.index != first["batch"]:
        raise ReplayMismatchError(
            f"{path}:{lineno}: replay reached batch {batch.index} on "
            f"shard {shard_id}, bundle says {first['batch']}"
        )
    if batch.pid != first["pid"]:
        raise ReplayMismatchError(
            f"{path}:{lineno}: batch {batch.index} on shard {shard_id} "
            f"injected from pid {batch.pid}, bundle says {first['pid']}"
        )
    shard_map.shard(shard_id).session.runtime.until_quiescent()
    shard_map.settle_batch(batch)
    for (record_lineno, record), op in zip(chunk, batch.ops):
        if op.value != record["value"]:
            raise ReplayMismatchError(
                f"{path}:{record_lineno}: key {record['key']!r} "
                f"replayed to value {op.value}, bundle says "
                f"{record['value']}"
            )


def _verify_snapshot(bundle: Path, shard_map: "CounterShardMap") -> None:
    snapshot_path = bundle / "snapshot.json"
    snapshot = _load_doc(snapshot_path)
    for key in ("ops", "values", "ranges", "fingerprints"):
        if key not in snapshot:
            raise ReplayMismatchError(
                f"{snapshot_path}: snapshot is missing {key!r}"
            )
    if snapshot["ops"] != shard_map.total_ops:
        raise ReplayMismatchError(
            f"{snapshot_path}: bundle snapshot has {snapshot['ops']} "
            f"ops, replay settled {shard_map.total_ops}"
        )
    replayed = shard_map.snapshot()
    recorded = snapshot["values"]
    if replayed != recorded:
        for key in sorted(set(replayed) | set(recorded)):
            if replayed.get(key) != recorded.get(key):
                raise ReplayMismatchError(
                    f"{snapshot_path}: key {key!r} replayed to "
                    f"{replayed.get(key, 0)}, bundle says "
                    f"{recorded.get(key, 0)}"
                )
    ranges = [
        [r.shard_id, r.start, r.stop] for r in shard_map.router.ranges()
    ]
    if ranges != snapshot["ranges"]:
        raise ReplayMismatchError(
            f"{snapshot_path}: final shard ranges diverged — replay "
            f"ended with {len(ranges)} shard(s) "
            f"{[r[0] for r in ranges]}, bundle says "
            f"{[r[0] for r in snapshot['ranges']]}"
        )
    live = shard_map.fingerprints()
    for shard_id_text, recorded_fp in snapshot["fingerprints"].items():
        if recorded_fp is None:
            continue
        actual = live.get(int(shard_id_text))
        if actual is not None and actual != recorded_fp:
            raise ReplayMismatchError(
                f"{snapshot_path}: shard {shard_id_text}'s trace "
                "fingerprint diverged from the bundle — the recorded "
                "run and the replay executed different message "
                "sequences"
            )
    shard_map.verify()
