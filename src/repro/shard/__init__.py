"""Sharded multi-counter keyspaces: the millions-of-users layer.

The paper proves a Θ(k) per-operation bottleneck for *one* counter;
this package amortizes it two ways at once — **across keys** by
consistent-hash placement onto independent protocol pools
(:mod:`repro.shard.placement`), and **across requests** by combining a
window of keyed increments into a single traversal per shard
(:mod:`repro.shard.map`).  Every run can record a byte-stable fixture
bundle that :func:`~repro.shard.fixture.replay_bundle` (the
``repro replay`` CLI) re-executes and verifies offline
(:mod:`repro.shard.fixture`).

Quick synchronous use::

    from repro.shard import CounterShardMap

    keyspace = CounterShardMap("central", n=4, shards=4)
    keyspace.inc("user:alice")           # -> 0
    keyspace.inc("user:alice")           # -> 1
    keyspace.apply(["a", "b", "a"])      # batched: one traversal/shard
    keyspace.snapshot()                  # {'user:alice': 2, 'a': 2, 'b': 1}

The live TCP front-end is :class:`repro.serve.KeyedCounterService`.
"""

from repro.shard.fixture import (
    FixtureRecorder,
    ReplayReport,
    replay_bundle,
    write_bundle,
)
from repro.shard.map import (
    KEY_PATTERN,
    CounterShardMap,
    RebalancePolicy,
    Shard,
    ShardBatch,
    validate_key,
)
from repro.shard.placement import (
    HASH_SPACE,
    ShardRange,
    ShardRouter,
    hash_key,
)

__all__ = [
    "HASH_SPACE",
    "KEY_PATTERN",
    "CounterShardMap",
    "FixtureRecorder",
    "RebalancePolicy",
    "ReplayReport",
    "Shard",
    "ShardBatch",
    "ShardRange",
    "ShardRouter",
    "hash_key",
    "replay_bundle",
    "validate_key",
    "write_bundle",
]
