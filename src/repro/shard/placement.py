"""Consistent-hash key placement over a partitioned 64-bit hash space.

A keyspace of millions of counters cannot live on one protocol
instance; placement decides which shard owns which key.  The scheme
here is the Dynamo-family one, reduced to its deterministic core: every
key hashes to a point in ``[0, 2^64)`` (SHA-256, so placement is stable
across processes and Python hash randomization), and each shard owns
one *contiguous* range of that space.  Splitting a shard halves its
range — the left half keeps the shard id, the right half goes to a
fresh shard — and merging two adjacent shards unions their ranges.

The two properties the rest of the stack builds on (both are pinned by
property tests in ``tests/test_shard_placement.py``):

* **determinism** — placement is a pure function of the topology
  operations applied, never of insertion order, process, or run;
* **bounded movement** — a split moves only keys of the split shard
  (those in its upper half), and a merge moves only keys of the
  absorbed shard.  No other key's placement ever changes, which is what
  makes elastic resharding affordable under live traffic.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable

from repro.errors import ConfigurationError

__all__ = ["HASH_SPACE", "ShardRange", "ShardRouter", "hash_key"]

HASH_SPACE = 1 << 64
"""Size of the placement hash space: keys hash to ``[0, HASH_SPACE)``."""


def hash_key(key: str) -> int:
    """Map *key* to its placement point in ``[0, HASH_SPACE)``.

    SHA-256 based, so the point is identical in every process and
    every run — ``hash()`` would reshuffle the keyspace per interpreter.
    """
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True, slots=True)
class ShardRange:
    """One shard's contiguous slice ``[start, stop)`` of the hash space."""

    shard_id: int
    start: int
    stop: int

    @property
    def width(self) -> int:
        """Number of hash points the range covers."""
        return self.stop - self.start

    def __contains__(self, point: int) -> bool:
        return self.start <= point < self.stop


class ShardRouter:
    """Deterministic key → shard placement with split/merge resharding.

    The router holds a partition of ``[0, HASH_SPACE)`` into contiguous
    per-shard ranges.  It knows nothing about counters — it is the pure
    placement function :class:`~repro.shard.map.CounterShardMap` builds
    on, and what the placement property tests drive directly.

    Args:
        shards: number of initial shards; the space is divided into
            equal contiguous ranges owned by shard ids ``0..shards-1``.
    """

    def __init__(self, shards: int = 1) -> None:
        if shards < 1:
            raise ConfigurationError(f"need at least one shard, got {shards}")
        if HASH_SPACE % shards and shards & (shards - 1):
            # non-power-of-two initial counts still work: ranges differ
            # by at most one hash point, which no property depends on
            pass
        self._ranges: list[ShardRange] = []
        step, remainder = divmod(HASH_SPACE, shards)
        start = 0
        for shard_id in range(shards):
            stop = start + step + (1 if shard_id < remainder else 0)
            self._ranges.append(ShardRange(shard_id, start, stop))
            start = stop
        self._next_id = shards

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shard_count(self) -> int:
        """Number of shards currently owning ranges."""
        return len(self._ranges)

    def shard_ids(self) -> tuple[int, ...]:
        """Shard ids in hash-space order (range starts ascending)."""
        return tuple(r.shard_id for r in self._ranges)

    def ranges(self) -> tuple[ShardRange, ...]:
        """The full partition, in hash-space order."""
        return tuple(self._ranges)

    def range_of(self, shard_id: int) -> ShardRange:
        """The range owned by *shard_id*; raises on unknown ids."""
        for shard_range in self._ranges:
            if shard_range.shard_id == shard_id:
                return shard_range
        raise ConfigurationError(
            f"unknown shard {shard_id}; live shards: {self.shard_ids()}"
        )

    def locate(self, key: str) -> int:
        """The shard id owning *key* (pure, deterministic)."""
        return self.locate_point(hash_key(key))

    def locate_point(self, point: int) -> int:
        """The shard id owning hash *point*."""
        if not 0 <= point < HASH_SPACE:
            raise ConfigurationError(
                f"hash point {point} outside [0, 2^64)"
            )
        starts = [r.start for r in self._ranges]
        return self._ranges[bisect_right(starts, point) - 1].shard_id

    def spread(self, keys: Iterable[str]) -> dict[int, int]:
        """Key count per shard id (includes empty shards at 0)."""
        counts = {r.shard_id: 0 for r in self._ranges}
        for key in keys:
            counts[self.locate(key)] += 1
        return counts

    # ------------------------------------------------------------------
    # Resharding
    # ------------------------------------------------------------------
    def neighbors(self, shard_id: int) -> tuple[int | None, int | None]:
        """The shard ids adjacent to *shard_id* in hash-space order."""
        for index, shard_range in enumerate(self._ranges):
            if shard_range.shard_id == shard_id:
                left = self._ranges[index - 1].shard_id if index else None
                right = (
                    self._ranges[index + 1].shard_id
                    if index + 1 < len(self._ranges)
                    else None
                )
                return left, right
        raise ConfigurationError(
            f"unknown shard {shard_id}; live shards: {self.shard_ids()}"
        )

    def split(self, shard_id: int) -> ShardRange:
        """Halve *shard_id*'s range; return the new upper-half range.

        The lower half keeps *shard_id*; the upper half is owned by a
        freshly allocated shard id.  Only keys hashing into the upper
        half move — everything else is untouched.
        """
        for index, shard_range in enumerate(self._ranges):
            if shard_range.shard_id != shard_id:
                continue
            if shard_range.width < 2:
                raise ConfigurationError(
                    f"shard {shard_id} owns a single hash point; "
                    "it cannot be split further"
                )
            mid = shard_range.start + shard_range.width // 2
            new_range = ShardRange(self._next_id, mid, shard_range.stop)
            self._next_id += 1
            self._ranges[index] = ShardRange(
                shard_id, shard_range.start, mid
            )
            self._ranges.insert(index + 1, new_range)
            return new_range
        raise ConfigurationError(
            f"unknown shard {shard_id}; live shards: {self.shard_ids()}"
        )

    def merge(self, survivor: int, absorbed: int) -> ShardRange:
        """Union two *adjacent* shards' ranges under *survivor*.

        Only keys of the absorbed shard move (to the survivor).  Raises
        if the ranges are not adjacent in hash space — merging
        non-neighbors would fragment ranges and break the contiguity
        invariant every other method relies on.
        """
        if survivor == absorbed:
            raise ConfigurationError(
                f"cannot merge shard {survivor} with itself"
            )
        indices = {
            shard_range.shard_id: index
            for index, shard_range in enumerate(self._ranges)
        }
        for shard_id in (survivor, absorbed):
            if shard_id not in indices:
                raise ConfigurationError(
                    f"unknown shard {shard_id}; live shards: "
                    f"{self.shard_ids()}"
                )
        index_a, index_b = indices[survivor], indices[absorbed]
        if abs(index_a - index_b) != 1:
            raise ConfigurationError(
                f"shards {survivor} and {absorbed} are not adjacent in "
                "hash space; only neighboring ranges can merge"
            )
        first, second = sorted((index_a, index_b))
        merged = ShardRange(
            survivor, self._ranges[first].start, self._ranges[second].stop
        )
        del self._ranges[second]
        self._ranges[first] = merged
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{r.shard_id}:[{r.start:#x},{r.stop:#x})" for r in self._ranges
        )
        return f"ShardRouter({parts})"
