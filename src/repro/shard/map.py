"""``CounterShardMap``: a keyspace of counters over sharded protocol pools.

One counter is the paper; a product is *millions* of counters — one per
user, per URL, per rate-limit bucket.  The map layers a keyed API over
the registry:

* **placement** — every key lives on exactly one shard, decided by the
  consistent-hash :class:`~repro.shard.placement.ShardRouter`;
* **one protocol pool per shard** — each shard owns an independent
  :class:`~repro.registry.RunSession` running any registered spec, so
  shards never share a bottleneck processor and drain concurrently;
* **batch combining** — a window of keyed increments against one shard
  is coalesced into a *single* traversal of the underlying protocol
  (one ``begin_inc``), and the per-request values are decomposed from
  the shard's per-key ledger.  The paper's Θ(k) cost is paid once per
  *batch*, not once per increment — combining in software what the
  combining tree does in the network;
* **elastic resharding** — :meth:`split` / :meth:`merge` move only the
  affected keys (see :mod:`repro.shard.placement`), and an optional
  :class:`RebalancePolicy` drives them automatically from the same
  hot-spot load-share statistics the paper's ``m_b`` analysis uses;
* **crash drills** — :meth:`failover` suspects and restores a shard's
  hot seat through the PR 4 failure-detector hooks, for crash-tolerant
  specs (``central[standby]``, ``combining-tree[bypass]``).

The batching contract (pinned by ``tests/test_shard_map.py`` and the
stateful machine in ``tests/test_property_shard.py``): batches on one
shard are strictly sequential — at most one in flight — so *any*
registered spec can back a shard, even sequential-only protocols like
``arrow``; concurrency lives *across* shards.  Each batch's underlying
counter value must be strictly larger than the previous one (exactly
consecutive on failure-free runs; crash drills on the bypass tree may
burn values, which is why the invariant is monotonicity, not equality),
and a key's value is its per-key ledger count at inject time, so the
keyspace snapshot always equals the multiset of issued increments.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.analysis.load import LoadProfile
from repro.errors import CapabilityError, ConfigurationError
from repro.registry import RunSession, parse_spec
from repro.shard.placement import ShardRouter, hash_key
from repro.sim.trace import TraceLevel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.shard.fixture import FixtureRecorder

__all__ = [
    "CounterShardMap",
    "KEY_PATTERN",
    "RebalancePolicy",
    "Shard",
    "ShardBatch",
    "validate_key",
]

KEY_PATTERN = re.compile(r"[A-Za-z0-9_.:\-]{1,128}\Z")
"""Allowed counter keys: 1–128 chars of ``[A-Za-z0-9_.:-]``.

The charset is exactly what survives the space-delimited wire grammar
(``INC <key> [rid] [deadline_ms]``) unambiguously; the length bound
keeps keys well under any sane ``line_limit``.
"""


def validate_key(key: str) -> str:
    """Return *key* if it is a legal counter key, else raise.

    Raises:
        ConfigurationError: empty key, illegal characters (spaces,
            control bytes, non-ASCII), or length > 128.
    """
    if not isinstance(key, str) or not KEY_PATTERN.fullmatch(key):
        raise ConfigurationError(
            f"illegal counter key {key!r}: keys are 1-128 characters "
            "of [A-Za-z0-9_.:-]"
        )
    return key


@dataclass(frozen=True, slots=True)
class RebalancePolicy:
    """When the map splits hot shards and merges cold neighbors.

    Decisions fire every *window* settled operations, from per-shard
    shares of that window's traffic (the same load-concentration lens
    as the paper's bottleneck ``m_b``, applied across shards):

    * the hottest shard splits when its share reaches *split_share*
      (and the shard count is below *max_shards*);
    * otherwise the coldest adjacent pair merges when its combined
      share is at most *merge_share* (and the count exceeds
      *min_shards*).

    At most one topology action per window, so the keyspace never
    thrashes faster than it measures.
    """

    window: int = 512
    split_share: float = 0.6
    merge_share: float = 0.1
    max_shards: int = 16
    min_shards: int = 1

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ConfigurationError(
                f"rebalance window must be >= 1, got {self.window}"
            )
        if not 0.0 < self.split_share <= 1.0:
            raise ConfigurationError(
                f"split_share must be in (0, 1], got {self.split_share}"
            )
        if not 0.0 <= self.merge_share < 1.0:
            raise ConfigurationError(
                f"merge_share must be in [0, 1), got {self.merge_share}"
            )
        if self.min_shards < 1 or self.max_shards < self.min_shards:
            raise ConfigurationError(
                f"need 1 <= min_shards <= max_shards, got "
                f"{self.min_shards}..{self.max_shards}"
            )


class Shard:
    """One shard: an independent protocol pool plus its key ledger."""

    __slots__ = (
        "shard_id",
        "session",
        "key_counts",
        "local_ops",
        "batches",
        "recent",
        "last_value",
        "busy",
        "delivered",
    )

    def __init__(self, shard_id: int, session: RunSession) -> None:
        self.shard_id = shard_id
        self.session = session
        #: per-key increment counts for keys currently placed here
        self.key_counts: dict[str, int] = {}
        #: operations settled through *this* shard's counter
        self.local_ops = 0
        #: batches settled (= ``begin_inc`` calls on the counter)
        self.batches = 0
        #: operations settled since the last rebalance window reset
        self.recent = 0
        #: last value the underlying counter returned (monotonicity)
        self.last_value = -1
        #: a batch is between :meth:`CounterShardMap.begin_batch` and
        #: :meth:`CounterShardMap.settle_batch`
        self.busy = False
        #: pid -> value delivered by the counter, consumed at settle
        self.delivered: dict[int, int] = {}
        self._install_result_hook()

    def _install_result_hook(self) -> None:
        counter = self.session.counter
        original = counter.deliver_result
        delivered = self.delivered

        def deliver(pid: int, value: int) -> None:
            original(pid, value)
            delivered[pid] = value

        counter.deliver_result = deliver  # type: ignore[method-assign]

    @property
    def keys(self) -> int:
        """Distinct keys currently placed on this shard."""
        return len(self.key_counts)

    def next_pid(self) -> int:
        """The initiating processor of the next batch (rotates)."""
        ids = self.session.counter.client_ids()
        return ids[self.batches % len(ids)]

    def fingerprint(self) -> str | None:
        """The shard trace's fingerprint, or ``None`` below ``FULL``."""
        trace = self.session.network.trace
        if not trace.keeps_records:
            return None
        return trace.fingerprint()

    def load_profile(self) -> LoadProfile:
        """Per-processor message loads of this shard's pool (the
        paper's ``m_p`` / ``m_b`` statistics, per shard)."""
        return LoadProfile.from_trace(
            self.session.network.trace, population=self.session.n
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Shard({self.shard_id}, keys={self.keys}, "
            f"ops={self.local_ops}, batches={self.batches})"
        )


@dataclass(slots=True)
class BatchOp:
    """One keyed increment inside a batch."""

    seq: int
    key: str
    rid: str | None
    value: int


@dataclass(slots=True)
class ShardBatch:
    """One in-flight combined traversal: a window of keyed increments.

    Created by :meth:`CounterShardMap.begin_batch` (which assigns every
    op its global sequence number and per-key value, and injects one
    ``begin_inc``); finished by :meth:`CounterShardMap.settle_batch`
    after the shard's runtime drained.
    """

    shard_id: int
    index: int
    pid: int
    ops: list[BatchOp]

    @property
    def size(self) -> int:
        return len(self.ops)

    def values(self) -> list[int]:
        """Per-request values, in submission order."""
        return [op.value for op in self.ops]


class CounterShardMap:
    """A keyed counter keyspace over independent sharded protocol pools.

    Args:
        spec: registry spec string (or :class:`~repro.registry.CounterRef`)
            every shard's pool runs.  Any registered spec works —
            batches serialize per shard, so even sequential-only
            protocols qualify (``interval_mode=wrap`` variants where
            repeated operation intervals require it, e.g.
            ``ww-tree?interval_mode=wrap``).
        n: processors per shard pool.
        shards: initial shard count (ids ``0..shards-1``, equal ranges).
        seed: base seed; shard ``s`` derives ``seed + s`` so pools are
            deterministic but decorrelated.
        runtime: ``"sim"`` for synchronous use (:meth:`inc` /
            :meth:`apply` flush inline) or ``"asyncio"`` for the live
            service (two-phase :meth:`begin_batch` / await the shard
            runtime's ``drain()`` / :meth:`settle_batch`).
        time_scale: real seconds per simulated time unit (asyncio only).
        policy: delivery-policy name forwarded to every shard session.
        trace_level: trace fidelity per shard (``FULL`` enables
            fingerprints in fixture bundles).
        batch_max: largest window one traversal may combine.
        rebalance: optional :class:`RebalancePolicy`; when set,
            :meth:`maybe_rebalance` (called automatically by the sim
            flush path) splits/merges from observed load shares.
        recorder: optional :class:`~repro.shard.fixture.FixtureRecorder`
            capturing every op and topology event for offline replay.
    """

    def __init__(
        self,
        spec: str,
        n: int,
        *,
        shards: int = 1,
        seed: int = 0,
        runtime: str = "sim",
        time_scale: float = 0.0,
        policy: str | None = None,
        trace_level: TraceLevel | str = TraceLevel.FULL,
        batch_max: int = 64,
        rebalance: RebalancePolicy | None = None,
        recorder: "FixtureRecorder | None" = None,
    ) -> None:
        if batch_max < 1:
            raise ConfigurationError(
                f"batch_max must be >= 1, got {batch_max}"
            )
        self._ref = parse_spec(spec)
        self._n = n
        self._seed = seed
        self._runtime_name = runtime
        self._time_scale = time_scale
        self._policy = policy
        self._trace_level = trace_level
        self.batch_max = batch_max
        self.rebalance_policy = rebalance
        self.recorder = recorder
        self.router = ShardRouter(shards)
        self._shards: dict[int, Shard] = {
            shard_id: self._make_shard(shard_id)
            for shard_id in self.router.shard_ids()
        }
        self._seq = 0
        self._total_ops = 0
        self._retired_ops = 0
        self._window_ops = 0
        self._splits = 0
        self._merges = 0
        self._failovers = 0
        self._pending: list[tuple[str, str | None]] = []
        if recorder is not None:
            recorder.record_config(
                {
                    "spec": self._ref.canonical,
                    "n": n,
                    "shards": shards,
                    "seed": seed,
                    "batch_max": batch_max,
                    "policy": policy,
                }
            )

    def _make_shard(self, shard_id: int) -> Shard:
        session = RunSession(
            self._ref,
            self._n,
            policy=self._policy,
            seed=self._seed + shard_id,
            trace_level=self._trace_level,
            runtime=self._runtime_name,
            time_scale=self._time_scale,
        )
        return Shard(shard_id, session)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def spec(self) -> str:
        """Canonical spec string every shard pool runs."""
        return self._ref.canonical

    @property
    def n(self) -> int:
        """Processors per shard pool."""
        return self._n

    @property
    def shard_count(self) -> int:
        """Live shards."""
        return len(self._shards)

    @property
    def total_ops(self) -> int:
        """Keyed increments settled across the keyspace's lifetime."""
        return self._total_ops

    def shard(self, shard_id: int) -> Shard:
        """The live :class:`Shard` with *shard_id*; raises on unknown."""
        try:
            return self._shards[shard_id]
        except KeyError:
            raise ConfigurationError(
                f"unknown shard {shard_id}; live shards: "
                f"{self.router.shard_ids()}"
            ) from None

    def shards(self) -> tuple[Shard, ...]:
        """Live shards in hash-space order."""
        return tuple(
            self._shards[shard_id] for shard_id in self.router.shard_ids()
        )

    def locate(self, key: str) -> int:
        """The shard id owning *key* (validates the key)."""
        return self.router.locate(validate_key(key))

    def value_of(self, key: str) -> int:
        """The current value of *key* (0 if never incremented).

        Every syntactically legal key exists — placement is total —
        so an unknown key is simply a zero counter, not an error.
        """
        return self.shard(self.locate(key)).key_counts.get(key, 0)

    def snapshot(self) -> dict[str, int]:
        """The full keyspace: every nonzero key's value."""
        merged: dict[str, int] = {}
        for shard in self._shards.values():
            merged.update(shard.key_counts)
        return merged

    def fingerprints(self) -> dict[int, str | None]:
        """Per-live-shard trace fingerprints (``None`` below ``FULL``)."""
        return {
            shard_id: self._shards[shard_id].fingerprint()
            for shard_id in self.router.shard_ids()
        }

    def stats(self) -> dict[str, Any]:
        """Keyspace counters plus a per-shard breakdown."""
        per_shard = []
        for shard_range in self.router.ranges():
            shard = self._shards[shard_range.shard_id]
            per_shard.append(
                {
                    "shard": shard.shard_id,
                    "start": shard_range.start,
                    "stop": shard_range.stop,
                    "keys": shard.keys,
                    "ops": shard.local_ops,
                    "batches": shard.batches,
                    "messages": shard.session.network.trace.total_messages,
                }
            )
        return {
            "spec": self.spec,
            "n": self._n,
            "shards": self.shard_count,
            "keys": sum(s.keys for s in self._shards.values()),
            "ops": self._total_ops,
            "batches": sum(s.batches for s in self._shards.values()),
            "splits": self._splits,
            "merges": self._merges,
            "failovers": self._failovers,
            "per_shard": per_shard,
        }

    def verify(self) -> None:
        """Check the conservation invariants; raise ``AssertionError``.

        * every settled op is owned by exactly one live shard's ledger
          (or was settled on a since-merged shard, whose ops the
          survivor's ledger absorbed);
        * the snapshot total equals the number of settled ops;
        * every key in every ledger is placed on its owning shard.
        """
        snapshot_total = sum(
            count
            for shard in self._shards.values()
            for count in shard.key_counts.values()
        )
        assert snapshot_total == self._total_ops, (
            f"keyspace snapshot totals {snapshot_total} but "
            f"{self._total_ops} ops settled"
        )
        local_total = sum(s.local_ops for s in self._shards.values())
        assert local_total + self._retired_ops == self._total_ops, (
            f"per-shard ops {local_total} + retired {self._retired_ops} "
            f"!= total {self._total_ops}"
        )
        for shard in self._shards.values():
            owned = self.router.range_of(shard.shard_id)
            for key in shard.key_counts:
                assert hash_key(key) in owned, (
                    f"key {key!r} ledgered on shard {shard.shard_id} "
                    f"but placed on shard {self.router.locate(key)}"
                )

    # ------------------------------------------------------------------
    # Batching: the two-phase core
    # ------------------------------------------------------------------
    def begin_batch(
        self, shard_id: int, ops: Sequence[tuple[str, str | None]]
    ) -> ShardBatch:
        """Combine *ops* into one traversal of *shard_id*'s pool.

        Assigns every op its global sequence number and its per-key
        value (the shard ledger's count at inject time — the interval
        decomposition), then injects a **single** ``begin_inc``.  The
        caller must drain the shard's runtime before
        :meth:`settle_batch`.

        Raises:
            ConfigurationError: empty window, window over
                ``batch_max``, a key not owned by *shard_id*, or a
                batch already in flight on it.
        """
        shard = self.shard(shard_id)
        if shard.busy:
            raise ConfigurationError(
                f"shard {shard_id} already has a batch in flight; "
                "batches on one shard are strictly sequential"
            )
        if not ops:
            raise ConfigurationError("a batch needs at least one op")
        if len(ops) > self.batch_max:
            raise ConfigurationError(
                f"batch of {len(ops)} exceeds batch_max={self.batch_max}"
            )
        owned = self.router.range_of(shard_id)
        batch_ops: list[BatchOp] = []
        for key, rid in ops:
            validate_key(key)
            if hash_key(key) not in owned:
                raise ConfigurationError(
                    f"key {key!r} belongs to shard "
                    f"{self.router.locate(key)}, not {shard_id}"
                )
        # all-or-nothing: validate the whole window before mutating
        for key, rid in ops:
            value = shard.key_counts.get(key, 0)
            shard.key_counts[key] = value + 1
            batch_ops.append(BatchOp(self._seq, key, rid, value))
            self._seq += 1
        shard.busy = True
        pid = shard.next_pid()
        shard.session.counter.begin_inc(pid, shard.batches)
        return ShardBatch(
            shard_id=shard_id, index=shard.batches, pid=pid, ops=batch_ops
        )

    def settle_batch(self, batch: ShardBatch) -> int:
        """Finish *batch* after its shard's runtime drained.

        Verifies the counter actually answered and that its value is
        strictly larger than the previous batch's (consecutive on
        failure-free runs; crash drills may burn values), updates the
        shard counters, and records every op with the fixture recorder.
        Returns the counter's batch value.
        """
        shard = self.shard(batch.shard_id)
        if not shard.busy:
            raise ConfigurationError(
                f"shard {batch.shard_id} has no batch in flight to settle"
            )
        try:
            value = shard.delivered.pop(batch.pid)
        except KeyError:
            raise ConfigurationError(
                f"batch {batch.index} on shard {batch.shard_id} has no "
                f"result for pid {batch.pid}; drain the shard runtime "
                "before settling"
            ) from None
        assert value > shard.last_value, (
            f"shard {batch.shard_id} batch values must be strictly "
            f"increasing: got {value} after {shard.last_value}"
        )
        shard.last_value = value
        shard.busy = False
        shard.batches += 1
        shard.local_ops += batch.size
        shard.recent += batch.size
        self._total_ops += batch.size
        self._window_ops += batch.size
        if self.recorder is not None:
            for op in batch.ops:
                self.recorder.record_op(
                    {
                        "seq": op.seq,
                        "key": op.key,
                        "rid": op.rid,
                        "value": op.value,
                        "shard": batch.shard_id,
                        "batch": batch.index,
                        "pid": batch.pid,
                    }
                )
        return value

    # ------------------------------------------------------------------
    # Synchronous convenience (sim runtime)
    # ------------------------------------------------------------------
    def enqueue(self, key: str, rid: str | None = None) -> None:
        """Buffer one keyed increment for the next :meth:`flush`."""
        self._pending.append((validate_key(key), rid))

    def flush(self) -> list[int]:
        """Run every buffered increment; return values in enqueue order.

        Groups the buffer by owning shard, runs each shard's window as
        ``batch_max``-bounded combined traversals (draining the shard
        runtime synchronously between phases), then lets the rebalance
        policy act.  Sim-runtime convenience — the live service drives
        the two-phase API itself.
        """
        if not self._pending:
            return []
        pending, self._pending = self._pending, []
        by_shard: dict[int, list[int]] = {}
        for index, (key, _) in enumerate(pending):
            by_shard.setdefault(self.router.locate(key), []).append(index)
        values: list[int | None] = [None] * len(pending)
        for shard_id in sorted(by_shard):
            indices = by_shard[shard_id]
            for at in range(0, len(indices), self.batch_max):
                window = indices[at : at + self.batch_max]
                batch = self.begin_batch(
                    shard_id, [pending[i] for i in window]
                )
                self.shard(shard_id).session.runtime.until_quiescent()
                self.settle_batch(batch)
                for index, op in zip(window, batch.ops):
                    values[index] = op.value
        self.maybe_rebalance()
        return [v for v in values if v is not None]

    def inc(self, key: str, rid: str | None = None) -> int:
        """One keyed increment, flushed immediately (sim convenience)."""
        self.enqueue(key, rid)
        return self.flush()[0]

    def apply(self, keys: Iterable[str]) -> list[int]:
        """Increment each of *keys* once, batched; values in order."""
        for key in keys:
            self.enqueue(key)
        return self.flush()

    # ------------------------------------------------------------------
    # Topology: split / merge / failover / rebalance
    # ------------------------------------------------------------------
    def split(self, shard_id: int) -> int:
        """Split *shard_id*; return the new shard's id.

        The new shard takes the upper half of the range and the ledger
        entries (and only those) whose keys hash into it.  Refuses
        while a batch is in flight on the shard.
        """
        shard = self.shard(shard_id)
        if shard.busy:
            raise ConfigurationError(
                f"cannot split shard {shard_id} with a batch in flight"
            )
        new_range = self.router.split(shard_id)
        new_shard = self._make_shard(new_range.shard_id)
        self._shards[new_range.shard_id] = new_shard
        for key in [
            k for k in shard.key_counts if hash_key(k) in new_range
        ]:
            new_shard.key_counts[key] = shard.key_counts.pop(key)
        # migrated history counts as the new shard's inheritance, not
        # its local traffic: local_ops stays 0, conservation tracks the
        # donor's settled ops until a merge retires a session
        self._splits += 1
        self._record_event(
            {
                "kind": "split",
                "at_seq": self._seq,
                "shard": shard_id,
                "new_shard": new_range.shard_id,
                "moved_keys": new_shard.keys,
            }
        )
        return new_range.shard_id

    def merge(self, survivor: int, absorbed: int) -> None:
        """Merge adjacent shard *absorbed* into *survivor*.

        The absorbed shard's ledger moves wholesale (ranges are
        disjoint, so no key collides), its protocol pool is retired,
        and its trace fingerprint is recorded in the merge event for
        offline verification.
        """
        surviving = self.shard(survivor)
        absorbing = self.shard(absorbed)
        if surviving.busy or absorbing.busy:
            raise ConfigurationError(
                f"cannot merge shards {survivor} and {absorbed} with a "
                "batch in flight"
            )
        self.router.merge(survivor, absorbed)
        surviving.key_counts.update(absorbing.key_counts)
        self._retired_ops += absorbing.local_ops
        self._merges += 1
        self._record_event(
            {
                "kind": "merge",
                "at_seq": self._seq,
                "survivor": survivor,
                "absorbed": absorbed,
                "moved_keys": absorbing.keys,
                "absorbed_ops": absorbing.local_ops,
                "absorbed_fingerprint": absorbing.fingerprint(),
            }
        )
        del self._shards[absorbed]

    def failover(self, shard_id: int) -> int:
        """Crash-drill *shard_id*: suspect its hot seat, then restore.

        Drives the PR 4 failure-detector hooks directly — suspect the
        shard's critical seat (the standby central's primary, or the
        bypass tree's root host), drain the takeover traffic, then
        restore the seat.  Returns the drilled pid.

        Raises:
            CapabilityError: the spec does not tolerate crashes.
            ConfigurationError: a batch is in flight on the shard.
        """
        shard = self.shard(shard_id)
        if shard.busy:
            raise ConfigurationError(
                f"cannot drill shard {shard_id} with a batch in flight"
            )
        counter = shard.session.counter
        if not counter.capabilities.tolerates_crash:
            raise CapabilityError(
                f"cannot crash-drill {self.spec!r}: the spec does not "
                "tolerate crashes (use central[standby] or "
                "combining-tree[bypass])"
            )
        target = getattr(counter, "current_primary", None)
        if target is None:
            target = counter.root_host
        runtime = shard.session.runtime
        counter.on_processor_suspected(target, runtime.now)
        runtime.until_quiescent()
        counter.on_processor_restored(target, runtime.now)
        runtime.until_quiescent()
        self._failovers += 1
        self._record_event(
            {
                "kind": "failover",
                "at_seq": self._seq,
                "shard": shard_id,
                "pid": target,
            }
        )
        return target

    def maybe_rebalance(self) -> list[dict[str, Any]]:
        """Let the :class:`RebalancePolicy` act; return actions taken.

        A no-op without a policy or before the window fills.  At most
        one split *or* merge per window; shards with a batch in flight
        are never touched (the live service calls this between
        settles).  Window counters reset either way, so one decision is
        made per window of traffic.
        """
        policy = self.rebalance_policy
        if policy is None or self._window_ops < policy.window:
            return []
        total = sum(s.recent for s in self._shards.values())
        actions: list[dict[str, Any]] = []
        if total > 0:
            actions = self._rebalance_once(policy, total)
        self._window_ops = 0
        for shard in self._shards.values():
            shard.recent = 0
        return actions

    def _rebalance_once(
        self, policy: RebalancePolicy, total: int
    ) -> list[dict[str, Any]]:
        candidates = [
            shard
            for shard in self._shards.values()
            if not shard.busy
            and self.router.range_of(shard.shard_id).width >= 2
        ]
        if candidates and self.shard_count < policy.max_shards:
            hottest = max(candidates, key=lambda s: (s.recent, -s.shard_id))
            if hottest.recent / total >= policy.split_share:
                new_id = self.split(hottest.shard_id)
                return [
                    {
                        "action": "split",
                        "shard": hottest.shard_id,
                        "new_shard": new_id,
                        "share": hottest.recent / total,
                    }
                ]
        if self.shard_count > policy.min_shards:
            ranges = self.router.ranges()
            best: tuple[int, int, int] | None = None
            for left, right in zip(ranges, ranges[1:]):
                a = self._shards[left.shard_id]
                b = self._shards[right.shard_id]
                if a.busy or b.busy:
                    continue
                combined = a.recent + b.recent
                if best is None or combined < best[0]:
                    best = (combined, left.shard_id, right.shard_id)
            if best is not None and best[0] / total <= policy.merge_share:
                _, survivor, absorbed = best
                self.merge(survivor, absorbed)
                return [
                    {
                        "action": "merge",
                        "survivor": survivor,
                        "absorbed": absorbed,
                        "share": best[0] / total,
                    }
                ]
        return []

    def _record_event(self, event: dict[str, Any]) -> None:
        if self.recorder is not None:
            self.recorder.record_event(event)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CounterShardMap({self.spec!r}, n={self._n}, "
            f"shards={self.shard_count}, ops={self._total_ops})"
        )
