"""The paper's first §2 example: "a bit that can be accessed and flipped".

Two operations:

* ``"flip"`` — return the bit's previous value and invert it;
* ``"read"`` — return the bit.

``flip`` depends on the immediately preceding operation (the returned
value is whatever the *last* flip left behind), so the Hot Spot Lemma —
and with it the Ω(k) bottleneck — applies exactly as for the counter.
"""

from __future__ import annotations

from repro.datatypes.base import TreeDataStructure
from repro.errors import ProtocolError

FLIP = "flip"
READ = "read"


class DistributedFlipBit(TreeDataStructure):
    """A single shared bit on the paper's communication tree."""

    name = "flip-bit"

    def initial_state(self) -> int:
        return 0

    def apply_at_root(self, role, request: object) -> int:
        bit = role.value
        assert isinstance(bit, int)
        if request == FLIP or request is None:
            role.value = bit ^ 1
            return bit
        if request == READ:
            return bit
        raise ProtocolError(f"flip-bit: unknown operation {request!r}")
