"""Fetch-and-add: the multiprocessor primitive behind the related work.

The combining-tree papers the paper cites (YTL87, GVW89) are about
hardware *fetch-and-add*; the counter is its delta = 1 special case.
Operations:

* ``("add", delta)`` — return the pre-add value, then add *delta*
  (delta may be negative or zero);
* ``("read",)`` — return the current value.

The sequential dependency is as strong as the counter's, so the Hot
Spot Lemma and the O(k) bottleneck carry over unchanged — and because
the tree relays requests opaquely, arbitrary deltas cost exactly the
same messages as ``inc``.
"""

from __future__ import annotations

from repro.datatypes.base import TreeDataStructure
from repro.errors import ProtocolError

ADD = "add"
READ = "read"


class DistributedAdder(TreeDataStructure):
    """Fetch-and-add on the paper's communication tree."""

    name = "fetch-and-add"

    def initial_state(self) -> int:
        return 0

    def apply_at_root(self, role, request: object) -> int:
        current = role.value
        assert isinstance(current, int)
        if request is None:
            request = (ADD, 1)  # counter-compatible default
        if not isinstance(request, tuple) or not request:
            raise ProtocolError(f"fetch-and-add: malformed request {request!r}")
        op = request[0]
        if op == ADD:
            if len(request) != 2 or not isinstance(request[1], int):
                raise ProtocolError(f"add needs an integer delta: {request!r}")
            role.value = current + request[1]
            return current
        if op == READ:
            return current
        raise ProtocolError(f"fetch-and-add: unknown operation {op!r}")
