"""A max-register: the contrast case for the sequential dependency.

Operations:

* ``("write_max", v)`` — raise the register to at least *v*; returns the
  register's previous value;
* ``("read",)`` — return the current maximum.

Included as the *boundary* example: a read's result does not always
depend on the immediately preceding operation (writing a smaller value
changes nothing), so the Hot Spot Lemma's argument only bites on the
value-raising operations.  The structure still runs on the tree — the
tests use it to show the library's checkers measure the dependency, not
assume it.
"""

from __future__ import annotations

from repro.datatypes.base import TreeDataStructure
from repro.errors import ProtocolError

WRITE_MAX = "write_max"
READ = "read"


class DistributedMaxRegister(TreeDataStructure):
    """A monotone max-register on the paper's communication tree."""

    name = "max-register"

    def initial_state(self) -> int:
        return 0

    def apply_at_root(self, role, request: object) -> int:
        current = role.value
        assert isinstance(current, int)
        if not isinstance(request, tuple) or not request:
            raise ProtocolError(f"max-register: malformed request {request!r}")
        op = request[0]
        if op == WRITE_MAX:
            if len(request) != 2:
                raise ProtocolError(f"write_max needs a value: {request!r}")
            role.value = max(current, request[1])
            return current
        if op == READ:
            return current
        raise ProtocolError(f"max-register: unknown operation {op!r}")
