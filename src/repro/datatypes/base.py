"""Generalized tree-backed data structures (the paper's §2 remark).

    "Note that the argument in the Hot Spot Lemma can be made for the
    family of all distributed data structures in which an operation
    depends on the operation that immediately precedes it.  Examples for
    such data structures are a bit that can be accessed and flipped and
    a priority queue."

This module makes the remark concrete: a :class:`TreeDataStructure` is
the paper's communication tree — identical geometry, identifier
intervals, retirement protocol, O(k) bottleneck machinery — with the
root's semantics swapped out.  Subclasses override
:meth:`~repro.core.TreeCounter.apply_at_root` with any sequential state
machine; the Hot Spot Lemma and the load bounds carry over because the
communication structure is untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.tree.counter import TreeCounter
from repro.errors import ConfigurationError, ProtocolError
from repro.sim.messages import OpIndex, ProcessorId
from repro.sim.trace import Trace


class TreeDataStructure(TreeCounter):
    """A sequentially dependent ADT hosted on the paper's tree.

    Subclasses override :meth:`apply_at_root` (and usually
    :meth:`initial_state`).  Operations are opaque *requests* interpreted
    only at the root, so inner nodes stay oblivious relays — exactly the
    property that lets the paper's load analysis apply verbatim.
    """

    name = "tree-adt"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.registry.root().value = self.initial_state()

    def initial_state(self) -> Any:
        """The root's starting state (the counter's is 0)."""
        return 0

    @property
    def state(self) -> Any:
        """Current root state (test introspection)."""
        return self.registry.root().value

    def begin_op(self, pid: ProcessorId, op_index: OpIndex, request: Any) -> None:
        """Inject operation *request* at processor *pid*."""
        if not 1 <= pid <= self.n:
            raise ConfigurationError(
                f"processor {pid} is not a client of this structure (1..{self.n})"
            )
        worker = self.worker(pid)
        self.network.inject(
            (lambda: worker.request_inc(request)), op_index=op_index
        )

    def begin_inc(self, pid: ProcessorId, op_index: OpIndex) -> None:
        """Counter-compatible entry point: the default (None) request."""
        self.begin_op(pid, op_index, None)


@dataclass(frozen=True, slots=True)
class AdtOutcome:
    """One completed ADT operation."""

    op_index: OpIndex
    initiator: ProcessorId
    request: Any
    reply: Any
    messages: int


@dataclass(slots=True)
class AdtRunResult:
    """Everything measured about one ADT workload execution."""

    name: str
    n: int
    trace: Trace
    outcomes: list[AdtOutcome] = field(default_factory=list)

    def replies(self) -> list[Any]:
        """Replies in operation order."""
        return [outcome.reply for outcome in self.outcomes]

    def bottleneck_load(self) -> int:
        """The paper's ``m_b`` for this run."""
        return self.trace.bottleneck()[1]

    @property
    def total_messages(self) -> int:
        """Messages delivered over the whole run."""
        return self.trace.total_messages


def run_ops(
    structure: TreeDataStructure,
    ops: Sequence[tuple[ProcessorId, Any]],
) -> AdtRunResult:
    """Run ``(pid, request)`` operations sequentially with quiescence.

    The ADT analogue of :func:`repro.workloads.run_sequence`: operation
    ``i+1`` starts only after operation ``i``'s process terminated, the
    paper's sequential-timing assumption.
    """
    network = structure.network
    result = AdtRunResult(name=structure.name, n=structure.n, trace=network.trace)
    for op_index, (pid, request) in enumerate(ops):
        before = len(structure.results_for(pid))
        structure.begin_op(pid, op_index, request)
        network.run_until_quiescent()
        replies = structure.results_for(pid)
        if len(replies) != before + 1:
            raise ProtocolError(
                f"operation {op_index}: processor {pid} received "
                f"{len(replies) - before} replies instead of 1"
            )
        result.outcomes.append(
            AdtOutcome(
                op_index=op_index,
                initiator=pid,
                request=request,
                reply=replies[-1],
                messages=network.trace.messages_for_op(op_index),
            )
        )
    return result
