"""Sequentially dependent data types on the paper's tree (§2's remark).

The Hot Spot Lemma — and therefore the Ω(k) bottleneck — holds "for the
family of all distributed data structures in which an operation depends
on the operation that immediately precedes it".  This package hosts
those structures on the unchanged communication tree:

* :class:`DistributedFlipBit` — the paper's "bit that can be accessed
  and flipped";
* :class:`DistributedPriorityQueue` — the paper's priority queue;
* :class:`DistributedMaxRegister` — the boundary case where only some
  operations carry the dependency.

All share :class:`TreeDataStructure` (the tree counter with pluggable
root semantics) and the :func:`run_ops` sequential driver.
"""

from repro.datatypes.adder import ADD, DistributedAdder
from repro.datatypes.base import (
    AdtOutcome,
    AdtRunResult,
    TreeDataStructure,
    run_ops,
)
from repro.datatypes.flip_bit import FLIP, READ, DistributedFlipBit
from repro.datatypes.max_register import WRITE_MAX, DistributedMaxRegister
from repro.datatypes.priority_queue import (
    DELETE_MIN,
    INSERT,
    PEEK,
    DistributedPriorityQueue,
)

__all__ = [
    "ADD",
    "AdtOutcome",
    "AdtRunResult",
    "DELETE_MIN",
    "DistributedAdder",
    "DistributedFlipBit",
    "DistributedMaxRegister",
    "DistributedPriorityQueue",
    "FLIP",
    "INSERT",
    "PEEK",
    "READ",
    "TreeDataStructure",
    "WRITE_MAX",
    "run_ops",
]
