"""The paper's second §2 example: a distributed priority queue.

Operations (requests are plain tuples so they fit message payloads):

* ``("insert", key)`` — add *key*; returns the new queue size;
* ``("delete_min",)`` — remove and return the smallest key (``None`` if
  empty);
* ``("peek",)`` — return the smallest key without removing it.

``delete_min`` depends on every preceding operation (what is the
minimum *now*?), the strongest form of the sequential dependency the
Hot Spot Lemma needs.
"""

from __future__ import annotations

import heapq

from repro.datatypes.base import TreeDataStructure
from repro.errors import ProtocolError

INSERT = "insert"
DELETE_MIN = "delete_min"
PEEK = "peek"


class DistributedPriorityQueue(TreeDataStructure):
    """A min-priority queue on the paper's communication tree.

    The heap lives with the root role and migrates with it on
    retirement, exactly like the counter's value (the paper's root
    hand-off "additionally informs the new processor of the counter
    value"; here the value is the heap).
    """

    name = "priority-queue"

    def initial_state(self) -> list:
        return []

    def apply_at_root(self, role, request: object) -> object:
        heap = role.value
        assert isinstance(heap, list)
        if not isinstance(request, tuple) or not request:
            raise ProtocolError(f"priority-queue: malformed request {request!r}")
        op = request[0]
        if op == INSERT:
            if len(request) != 2:
                raise ProtocolError(f"insert needs a key: {request!r}")
            heapq.heappush(heap, request[1])
            return len(heap)
        if op == DELETE_MIN:
            if not heap:
                return None
            return heapq.heappop(heap)
        if op == PEEK:
            return heap[0] if heap else None
        raise ProtocolError(f"priority-queue: unknown operation {op!r}")

    def __len__(self) -> int:
        heap = self.state
        return len(heap)
