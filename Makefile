# Convenience targets for the reproduction.

PYTHON ?= python

.PHONY: install test bench validate figures apidocs all clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

validate:
	$(PYTHON) -m repro validate

figures:
	$(PYTHON) -m repro figures

apidocs:
	$(PYTHON) scripts/gen_api_docs.py

all: test bench validate figures

clean:
	rm -rf .pytest_cache src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
