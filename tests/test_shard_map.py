"""The sharded keyspace over every registered protocol.

``CounterShardMap``'s batching contract — at most one combined
traversal in flight per shard — means *every* registered spec can back
a shard, including sequential-only protocols the live single-counter
service refuses (``arrow``, ``static-tree``).  The matrix here runs
each spec name literally (``ww-tree`` in wrap mode, since a service
repeats operation intervals) through increments, a split, and a merge,
then pins the combining amortization, topology semantics, automatic
rebalancing, and the misuse surface.
"""

from __future__ import annotations

import pytest

from repro.errors import CapabilityError, ConfigurationError
from repro.registry import registered_names
from repro.shard import (
    CounterShardMap,
    RebalancePolicy,
    hash_key,
    validate_key,
)

pytestmark = pytest.mark.shard

# Literal, not computed: scripts/check_registry.py greps this file for
# every registered spec name, so a new spec cannot register without
# being added here (the guard test below catches the drift).
EVERY_SPEC = (
    "arrow",
    "byz-counter",
    "central",
    "central[standby]",
    "combining-tree",
    "combining-tree[bypass]",
    "counting-network",
    "diffracting-tree",
    "quorum[crumbling-wall]",
    "quorum[maekawa]",
    "quorum[majority]",
    "quorum[singleton]",
    "quorum[tree-paths]",
    "quorum[wheel]",
    "static-tree",
    "ww-tree",
)
CRASH_TOLERANT = ("central[standby]", "combining-tree[bypass]")


def test_every_registered_spec_is_in_the_matrix():
    assert EVERY_SPEC == registered_names()


def _spec_for(name: str) -> str:
    # Strict ww-tree enforces one-shot id discipline; a keyspace
    # repeats operation intervals, so it shards in wrap mode.
    return "ww-tree?interval_mode=wrap" if name == "ww-tree" else name


def _n_for(name: str) -> int:
    # Maekawa quorums require a perfect-square population.
    return 9 if name == "quorum[maekawa]" else 8


class TestEveryRegisteredSpecShards:
    @pytest.mark.parametrize("name", EVERY_SPEC)
    def test_keyed_increments_across_resharding(self, name):
        shard_map = CounterShardMap(
            _spec_for(name), _n_for(name), shards=2, seed=1, batch_max=4
        )
        model: dict[str, int] = {}

        def bump(keys):
            values = shard_map.apply(keys)
            for key, value in zip(keys, values):
                assert value == model.get(key, 0), (name, key)
                model[key] = model.get(key, 0) + 1

        bump([f"k{i % 5}" for i in range(12)])
        shard_map.split(shard_map.router.shard_ids()[0])
        bump([f"k{i % 3}" for i in range(6)])
        survivor, absorbed = shard_map.router.shard_ids()[:2]
        shard_map.merge(survivor, absorbed)
        bump(["k0", "k9"])
        shard_map.verify()
        assert shard_map.snapshot() == model
        assert shard_map.total_ops == 20


class TestBatchCombining:
    def test_window_pays_one_traversal(self):
        # 16 increments, batch_max=8, one shard: exactly two combined
        # traversals (two begin_inc calls), not sixteen.
        shard_map = CounterShardMap("central", 4, shards=1, batch_max=8)
        values = shard_map.apply([f"k{i % 4}" for i in range(16)])
        shard = shard_map.shards()[0]
        assert shard.batches == 2
        assert shard.local_ops == 16
        assert values == [i // 4 for i in range(16)]

    def test_batching_amortizes_message_cost(self):
        # The same workload, combined vs one-op windows: combining must
        # strictly reduce the protocol messages (the paper's Theta(k)
        # traversal paid per batch instead of per increment).
        def messages(batch_max: int) -> int:
            shard_map = CounterShardMap(
                "combining-tree", 8, shards=1, batch_max=batch_max
            )
            shard_map.apply([f"k{i % 4}" for i in range(32)])
            return sum(
                entry["messages"]
                for entry in shard_map.stats()["per_shard"]
            )

        assert messages(32) < messages(1) / 4

    def test_values_decompose_from_the_per_key_ledger(self):
        shard_map = CounterShardMap("central", 4, shards=1, batch_max=8)
        assert shard_map.apply(["a", "b", "a", "a", "b"]) == [
            0, 0, 1, 2, 1,
        ]
        assert shard_map.value_of("a") == 3
        assert shard_map.value_of("b") == 2
        assert shard_map.value_of("never") == 0


class TestTopology:
    def test_split_moves_exactly_the_upper_half_ledger(self):
        shard_map = CounterShardMap("central", 4, shards=1, batch_max=8)
        keys = [f"user:{i}" for i in range(40)]
        shard_map.apply(keys)
        donor = shard_map.router.shard_ids()[0]
        new_id = shard_map.split(donor)
        new_range = shard_map.router.range_of(new_id)
        moved = {k for k in keys if hash_key(k) in new_range}
        assert shard_map.shard(new_id).key_counts == {
            key: 1 for key in moved
        }
        assert set(shard_map.shard(donor).key_counts) == set(keys) - moved
        shard_map.verify()

    def test_merge_absorbs_ledger_and_retires_the_pool(self):
        shard_map = CounterShardMap("central", 4, shards=2, batch_max=8)
        shard_map.apply([f"user:{i}" for i in range(20)])
        survivor, absorbed = shard_map.router.shard_ids()
        absorbed_keys = dict(shard_map.shard(absorbed).key_counts)
        shard_map.merge(survivor, absorbed)
        assert shard_map.shard_count == 1
        for key, count in absorbed_keys.items():
            assert shard_map.shard(survivor).key_counts[key] == count
        with pytest.raises(ConfigurationError, match="unknown shard"):
            shard_map.shard(absorbed)
        shard_map.verify()
        assert shard_map.total_ops == 20

    @pytest.mark.parametrize("name", CRASH_TOLERANT)
    def test_failover_drills_and_service_continues(self, name):
        shard_map = CounterShardMap(name, 8, shards=2, batch_max=4)
        shard_map.apply([f"k{i}" for i in range(8)])
        for shard_id in shard_map.router.shard_ids():
            shard_map.failover(shard_id)
        shard_map.apply([f"k{i}" for i in range(8)])
        shard_map.verify()
        assert shard_map.stats()["failovers"] == 2
        assert shard_map.total_ops == 16

    def test_failover_refused_without_crash_tolerance(self):
        shard_map = CounterShardMap("central", 4, shards=1)
        with pytest.raises(CapabilityError, match="does not tolerate"):
            shard_map.failover(shard_map.router.shard_ids()[0])


class TestRebalancePolicy:
    def test_hot_spot_splits(self):
        shard_map = CounterShardMap(
            "central",
            4,
            shards=1,
            batch_max=4,
            rebalance=RebalancePolicy(window=8, split_share=0.6),
        )
        shard_map.apply(["hot"] * 8)  # 100% share on one shard
        assert shard_map.shard_count == 2
        assert shard_map.stats()["splits"] == 1
        shard_map.verify()

    def test_cold_neighbors_merge_when_splitting_is_capped(self):
        shard_map = CounterShardMap(
            "central",
            4,
            shards=4,
            batch_max=4,
            rebalance=RebalancePolicy(
                window=8, split_share=0.6, merge_share=0.1, max_shards=4
            ),
        )
        # all traffic on one key: the hot shard cannot split (at
        # max_shards), so the coldest adjacent zero-traffic pair merges
        shard_map.apply(["hot"] * 8)
        assert shard_map.shard_count == 3
        assert shard_map.stats()["merges"] == 1
        shard_map.verify()

    def test_no_action_before_the_window_fills(self):
        shard_map = CounterShardMap(
            "central",
            4,
            shards=1,
            batch_max=4,
            rebalance=RebalancePolicy(window=64, split_share=0.6),
        )
        shard_map.apply(["hot"] * 8)
        assert shard_map.shard_count == 1
        assert shard_map.maybe_rebalance() == []

    def test_policy_validation(self):
        for bad in (
            dict(window=0),
            dict(split_share=0.0),
            dict(split_share=1.5),
            dict(merge_share=1.0),
            dict(min_shards=0),
            dict(min_shards=8, max_shards=4),
        ):
            with pytest.raises(ConfigurationError):
                RebalancePolicy(**bad)


class TestMisuseSurface:
    def test_key_validation(self):
        for bad in ("", "has space", "bang!", "k" * 129, "tab\tkey"):
            with pytest.raises(ConfigurationError, match="illegal"):
                validate_key(bad)
        assert validate_key("A-ok_1.2:3") == "A-ok_1.2:3"

    def test_batch_windows_are_validated_before_mutation(self):
        shard_map = CounterShardMap("central", 4, shards=2, batch_max=2)
        shard_id = shard_map.locate("mine")
        other = next(
            s for s in shard_map.router.shard_ids() if s != shard_id
        )
        with pytest.raises(ConfigurationError, match="at least one op"):
            shard_map.begin_batch(shard_id, [])
        with pytest.raises(ConfigurationError, match="exceeds batch_max"):
            shard_map.begin_batch(shard_id, [("mine", None)] * 3)
        with pytest.raises(ConfigurationError, match="belongs to shard"):
            shard_map.begin_batch(other, [("mine", None)])
        # nothing leaked into any ledger from the rejected windows
        assert shard_map.snapshot() == {}

    def test_one_batch_in_flight_per_shard(self):
        shard_map = CounterShardMap("central", 4, shards=1, batch_max=4)
        shard_id = shard_map.router.shard_ids()[0]
        batch = shard_map.begin_batch(shard_id, [("k", None)])
        with pytest.raises(ConfigurationError, match="strictly sequential"):
            shard_map.begin_batch(shard_id, [("k", None)])
        for action in (
            lambda: shard_map.split(shard_id),
            lambda: shard_map.merge(shard_id, shard_id),
            lambda: shard_map.failover(shard_id),
        ):
            with pytest.raises(ConfigurationError, match="in flight"):
                action()
        shard_map.shard(shard_id).session.runtime.until_quiescent()
        shard_map.settle_batch(batch)
        with pytest.raises(ConfigurationError, match="no batch in flight"):
            shard_map.settle_batch(batch)

    def test_settle_requires_a_drained_runtime(self):
        shard_map = CounterShardMap("central", 4, shards=1, batch_max=4)
        shard_id = shard_map.router.shard_ids()[0]
        batch = shard_map.begin_batch(shard_id, [("k", None)])
        with pytest.raises(ConfigurationError, match="drain the shard"):
            shard_map.settle_batch(batch)

    def test_bad_batch_max(self):
        with pytest.raises(ConfigurationError, match="batch_max"):
            CounterShardMap("central", 4, batch_max=0)


class TestIntrospection:
    def test_stats_and_fingerprints(self):
        shard_map = CounterShardMap("central", 4, shards=2, batch_max=4)
        shard_map.apply([f"k{i}" for i in range(10)])
        stats = shard_map.stats()
        assert stats["spec"] == "central"
        assert stats["shards"] == 2
        assert stats["ops"] == 10
        assert stats["keys"] == 10
        assert len(stats["per_shard"]) == 2
        assert sum(e["ops"] for e in stats["per_shard"]) == 10
        fingerprints = shard_map.fingerprints()
        assert set(fingerprints) == set(shard_map.router.shard_ids())
        assert all(fp is not None for fp in fingerprints.values())

    def test_loads_trace_level_disables_fingerprints(self):
        shard_map = CounterShardMap(
            "central", 4, shards=2, trace_level="LOADS"
        )
        shard_map.apply(["k"])
        assert all(
            fp is None for fp in shard_map.fingerprints().values()
        )
