"""Unit tests for workload sequences and the drivers."""

from __future__ import annotations

import pytest

from repro.counters import CentralCounter
from repro.errors import ConfigurationError, ProtocolError
from repro.sim.network import Network
from repro.workloads import (
    one_shot,
    reversed_one_shot,
    round_robin,
    run_concurrent,
    run_factory_once,
    run_sequence,
    shuffled,
    single_hotspot,
    zipf_sequence,
)


class TestSequences:
    def test_one_shot_is_identity_permutation(self):
        assert one_shot(5) == [1, 2, 3, 4, 5]

    def test_reversed_one_shot(self):
        assert reversed_one_shot(4) == [4, 3, 2, 1]

    def test_shuffled_is_permutation(self):
        order = shuffled(20, seed=3)
        assert sorted(order) == list(range(1, 21))

    def test_shuffled_seeded(self):
        assert shuffled(20, seed=3) == shuffled(20, seed=3)
        assert shuffled(20, seed=3) != shuffled(20, seed=4)

    def test_round_robin_repeats_everyone(self):
        sequence = round_robin(3, rounds=2)
        assert sequence == [1, 2, 3, 1, 2, 3]

    def test_zipf_respects_range_and_length(self):
        sequence = zipf_sequence(10, length=100, seed=1)
        assert len(sequence) == 100
        assert all(1 <= pid <= 10 for pid in sequence)

    def test_zipf_is_skewed_toward_low_ids(self):
        sequence = zipf_sequence(50, length=2000, skew=1.5, seed=0)
        low = sum(1 for pid in sequence if pid <= 5)
        high = sum(1 for pid in sequence if pid > 45)
        assert low > high * 3

    def test_single_hotspot(self):
        assert single_hotspot(9, 4, hot=3) == [3, 3, 3, 3]

    @pytest.mark.parametrize(
        "call",
        [
            lambda: one_shot(0),
            lambda: round_robin(3, rounds=0),
            lambda: zipf_sequence(3, length=0),
            lambda: zipf_sequence(3, length=5, skew=0.0),
            lambda: single_hotspot(3, 2, hot=9),
        ],
    )
    def test_invalid_parameters_rejected(self, call):
        with pytest.raises(ConfigurationError):
            call()


class TestSequentialDriver:
    def test_values_are_sequential(self):
        result = run_factory_once(CentralCounter, 10, one_shot(10))
        assert result.values() == list(range(10))

    def test_outcomes_record_initiators(self):
        result = run_factory_once(CentralCounter, 5, reversed_one_shot(5))
        assert [o.initiator for o in result.outcomes] == [5, 4, 3, 2, 1]

    def test_per_op_message_counts_sum_to_total(self):
        result = run_factory_once(CentralCounter, 8, one_shot(8))
        assert sum(o.messages for o in result.outcomes) == result.total_messages

    def test_average_messages_per_op(self):
        result = run_factory_once(CentralCounter, 8, one_shot(8))
        # Server (pid 1) incs locally: 0 msgs; others: 2 msgs.
        assert result.average_messages_per_op() == pytest.approx(14 / 8)

    def test_bottleneck_is_central_server(self):
        result = run_factory_once(CentralCounter, 8, one_shot(8))
        assert result.bottleneck_processor() == 1
        assert result.bottleneck_load() == 14

    def test_value_check_catches_broken_counter(self, network):
        class LyingCounter(CentralCounter):
            def take_value(self):
                value = super().take_value()
                return value + 1 if value >= 1 else value

        counter = LyingCounter(network, 4)
        with pytest.raises(ProtocolError, match="expected 1"):
            run_sequence(counter, one_shot(4))

    def test_value_check_can_be_disabled(self, network):
        class LyingCounter(CentralCounter):
            def take_value(self):
                return 41

        counter = LyingCounter(network, 3)
        result = run_sequence(counter, one_shot(3), check_values=False)
        assert result.values() == [41, 41, 41]

    def test_missing_result_detected(self, network):
        class SilentCounter(CentralCounter):
            def begin_inc(self, pid, op_index):
                pass  # never answers

        counter = SilentCounter(network, 3)
        with pytest.raises(ProtocolError, match="instead of 1"):
            run_sequence(counter, one_shot(3))

    def test_empty_sequence(self, network):
        counter = CentralCounter(network, 3)
        result = run_sequence(counter, [])
        assert result.operation_count == 0
        assert result.average_messages_per_op() == 0.0


class TestConcurrentDriver:
    def test_batch_values_form_permutation(self, network):
        counter = CentralCounter(network, 12)
        result = run_concurrent(counter, [one_shot(12)])
        assert sorted(result.values()) == list(range(12))

    def test_multiple_batches(self, network):
        counter = CentralCounter(network, 6)
        result = run_concurrent(counter, [[1, 2, 3], [4, 5, 6]])
        assert sorted(result.values()) == list(range(6))
        assert result.operation_count == 6

    def test_repeat_initiator_across_batches(self, network):
        counter = CentralCounter(network, 3)
        result = run_concurrent(counter, [[1, 2], [1, 3]])
        assert sorted(result.values()) == [0, 1, 2, 3]

    def test_duplicate_check_catches_broken_counter(self, network):
        class StuckCounter(CentralCounter):
            def take_value(self):
                return 0  # hands out 0 forever

        counter = StuckCounter(network, 4)
        with pytest.raises(ProtocolError, match="permutation"):
            run_concurrent(counter, [one_shot(4)])


class TestBatched:
    def test_batches_partition_the_one_shot(self):
        from repro.workloads import batched

        batches = batched(10, 3)
        assert batches == [[1, 2, 3], [4, 5, 6], [7, 8, 9], [10]]
        flat = [pid for batch in batches for pid in batch]
        assert flat == list(range(1, 11))

    def test_batch_size_validation(self):
        from repro.workloads import batched

        with pytest.raises(ConfigurationError):
            batched(10, 0)

    def test_batched_drive_through_concurrent_runner(self, network):
        from repro.workloads import batched

        counter = CentralCounter(network, 12)
        result = run_concurrent(counter, batched(12, 4))
        assert sorted(result.values()) == list(range(12))

    def test_partial_concurrency_interpolates_bottleneck(self):
        # Combining tree: batch size 1 = sequential (Θ(n) root), full
        # batch = maximal combining; sizes in between sit in between.
        from repro.counters import CombiningTreeCounter
        from repro.workloads import batched

        n = 64
        loads = []
        for batch_size in (1, 8, 64):
            network = Network()
            counter = CombiningTreeCounter(network, n)
            result = run_concurrent(counter, batched(n, batch_size))
            loads.append(result.bottleneck_load())
        assert loads[0] > loads[1] > loads[2]
