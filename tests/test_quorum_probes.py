"""Tests for the exact probe-complexity game (PW96)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.quorum import (
    MaekawaGrid,
    ProjectivePlaneQuorum,
    RotatingMajorityQuorum,
    SingletonQuorum,
    TreePathQuorum,
    WheelQuorum,
    probe_complexity,
)
from repro.quorum.systems import QuorumSystem


class _TwoDisjointish(QuorumSystem):
    """Tiny custom family for hand-checkable game values."""

    def __init__(self):
        super().__init__(3)
        self._family = [frozenset({1, 2}), frozenset({2, 3})]

    def quorums(self):
        yield from self._family


class TestGameValues:
    def test_singleton_needs_one_probe(self):
        assert probe_complexity(SingletonQuorum(7)) == 1

    def test_hand_checked_family(self):
        # Probe 2 first: dead -> both quorums dead (1 probe would do)...
        # alive -> must still check 1 or 3, worst case both: total 3.
        # Optimal play: probe 2 (alive), probe 1 (alive) -> quorum {1,2}.
        # Adversary answers to maximize: 2 alive, 1 dead, 3 dead => all
        # dead after 3 probes.  Value is 3.
        assert probe_complexity(_TwoDisjointish()) == 3

    def test_wheel_needs_n_probes(self):
        # PW's point: size-2 quorums, yet certifying may touch everyone
        # (hub dead => must scan the whole rim).
        assert probe_complexity(WheelQuorum(7)) == 7

    def test_tree_paths_root_short_circuit(self):
        # If the root is dead every path-quorum is dead, so the game
        # value is below n.
        assert probe_complexity(TreePathQuorum(7)) < 7

    def test_majority_probes_everyone(self):
        assert probe_complexity(RotatingMajorityQuorum(9)) == 9

    def test_fano_plane(self):
        assert probe_complexity(ProjectivePlaneQuorum(2)) == 7

    def test_probe_at_most_n(self):
        for system in (MaekawaGrid(9), WheelQuorum(6), TreePathQuorum(7)):
            assert probe_complexity(system) <= system.n

    def test_probe_at_least_min_quorum(self):
        # Exhibiting a live quorum requires probing all its members.
        for system in (MaekawaGrid(9), ProjectivePlaneQuorum(2)):
            smallest = min(len(q) for q in system.quorums())
            assert probe_complexity(system) >= smallest

    def test_size_guard(self):
        with pytest.raises(ConfigurationError):
            probe_complexity(RotatingMajorityQuorum(20))
