"""Fault-injection substrate: spec parsing, rule behavior, determinism.

The fault layer must be invisible when absent (the acceptance criterion
is a byte-identical clean send path), deterministic per seed when
present, and honest in its bookkeeping: every injected fault appears in
the plan's ledger, and — levels permitting — in the trace.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError, SimulationLimitError
from repro.sim.faults import (
    CrashRule,
    DropRule,
    DuplicateRule,
    FaultPlan,
    PartitionRule,
    ReorderRule,
    canonical_fault_spec,
    parse_fault_spec,
)
from repro.sim.messages import Message
from repro.sim.network import Network
from repro.sim.processor import InertProcessor, Processor
from repro.sim.trace import TraceLevel
from repro.errors import TraceCapabilityError

pytestmark = pytest.mark.faults


def _message(sender=1, receiver=2, op_index=0, uid=0):
    return Message(
        sender=sender, receiver=receiver, kind="m",
        op_index=op_index, uid=uid,
    )


class _Echo(Processor):
    """Replies to every ``ping`` with another ``ping`` (never quiesces)."""

    def on_message(self, message):
        self.send(message.sender, "ping", {})


def _blast(network: Network, messages: int = 200) -> None:
    """Send a deterministic burst between the registered processors."""
    count = network.processor_count
    for index in range(messages):
        network.send(
            (index % count) + 1, ((index + 1) % count) + 1, "m", {"i": index}
        )
    network.run_until_quiescent()


# ----------------------------------------------------------------------
# Spec strings
# ----------------------------------------------------------------------
class TestSpecParsing:
    def test_roundtrip_is_canonical(self):
        plan = parse_fault_spec("drop=0.05,dup=0.01,reorder=0.1")
        assert plan.spec == "drop=0.05,dup=0.01,reorder=0.1"
        assert canonical_fault_spec(plan.spec) == plan.spec

    def test_equivalent_spellings_share_a_canonical_form(self):
        a = canonical_fault_spec("dup=0.01,drop=0.05")
        b = canonical_fault_spec("drop=0.05,dup=0.01")
        assert a == b == "drop=0.05,dup=0.01"

    def test_crash_and_partition_windows(self):
        plan = parse_fault_spec("crash=3@t50-t80,partition=1..4|5..8@t10")
        assert plan.spec == "partition=1..4|5..8@t10,crash=3@t50-t80"
        crash = plan.rules[-1]
        assert isinstance(crash, CrashRule)
        assert (crash.pid, crash.start, crash.end) == (3, 50.0, 80.0)
        partition = plan.rules[0]
        assert isinstance(partition, PartitionRule)
        assert partition.group_a == frozenset({1, 2, 3, 4})
        assert partition.end == math.inf

    def test_explicit_id_lists(self):
        plan = parse_fault_spec("partition=1+5+9|2..3")
        rule = plan.rules[0]
        assert rule.group_a == frozenset({1, 5, 9})
        assert rule.group_b == frozenset({2, 3})

    def test_dup_copies_syntax(self):
        rule = parse_fault_spec("dup=0.2x3").rules[0]
        assert isinstance(rule, DuplicateRule)
        assert rule.copies == 3
        assert parse_fault_spec("dup=0.2x3").spec == "dup=0.2x3"

    def test_lossy_flag(self):
        assert parse_fault_spec("drop=0.01").lossy
        assert parse_fault_spec("crash=1@t0").lossy
        assert parse_fault_spec("partition=1|2").lossy
        assert not parse_fault_spec("dup=0.5,reorder=0.5").lossy
        assert not parse_fault_spec("drop=0").lossy

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "drop",
            "drop=",
            "drop=x",
            "drop=1.5",
            "drop=0.1,drop=0.2",
            "unknown=1",
            "crash=3",
            "crash=x@t5",
            "crash=3@t80-t50",
            "partition=1..4",
            "partition=1..4|3..8",
            "partition=|1",
            "dup=0.1x0",
            "dup=0.1xq",
            "reorder=0.1@0",
        ],
    )
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            parse_fault_spec(bad)

    def test_plan_rejects_non_rules(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(["drop"])  # type: ignore[list-item]


# ----------------------------------------------------------------------
# Rule behavior through a real network
# ----------------------------------------------------------------------
class TestInjection:
    def test_drop_loses_messages_but_never_blocks_quiescence(self):
        plan = parse_fault_spec("drop=0.3", seed=1)
        network = Network(fault_plan=plan)
        network.register_all([InertProcessor(pid) for pid in (1, 2)])
        _blast(network, 200)
        dropped = plan.counts["drop"]
        assert 0 < dropped < 200
        assert network.is_quiescent()
        assert network.in_flight == 0
        assert network.trace.total_messages == 200 - dropped

    def test_dropped_messages_add_no_load(self):
        plan = FaultPlan([DropRule(1.0)], seed=0)
        network = Network(fault_plan=plan)
        network.register_all([InertProcessor(pid) for pid in (1, 2)])
        _blast(network, 50)
        assert plan.counts == {"drop": 50}
        assert network.trace.loads() == {}
        assert network.trace.total_messages == 0

    def test_duplicates_deliver_extra_copies_sharing_the_uid(self):
        plan = FaultPlan([DuplicateRule(1.0, copies=2)], seed=3)
        network = Network(fault_plan=plan)
        network.register_all([InertProcessor(pid) for pid in (1, 2)])
        network.send(1, 2, "m", {})
        network.run_until_quiescent()
        records = network.trace.records
        assert len(records) == 3  # original + 2 copies
        assert len({record.uid for record in records}) == 1
        assert plan.counts == {"duplicate": 1}

    def test_partition_drops_only_the_cut_in_its_window(self):
        plan = FaultPlan([PartitionRule([1], [2], start=0.0, end=10.0)])
        network = Network(fault_plan=plan)
        network.register_all([InertProcessor(pid) for pid in (1, 2, 3)])
        network.send(1, 2, "m", {})   # crosses the cut: dropped
        network.send(1, 3, "m", {})   # endpoint outside both groups: passes
        network.send(2, 1, "m", {})   # crosses (symmetric): dropped
        network.run_until_quiescent()
        assert plan.counts == {"partition": 2}
        assert network.trace.total_messages == 1

    def test_crash_window_eats_sends_and_arrivals(self):
        plan = FaultPlan([CrashRule(2, start=5.0, end=100.0)])
        network = Network(fault_plan=plan)
        network.register_all([InertProcessor(pid) for pid in (1, 2)])
        network.send(1, 2, "m", {})  # sent at t=0, arrives t=1: delivered
        network.run_until_quiescent()
        network.inject(lambda: network.send(1, 2, "m", {}), delay=6.0)
        network.inject(lambda: network.send(2, 1, "m", {}), delay=7.0)
        network.run_until_quiescent()
        assert network.trace.total_messages == 1
        assert plan.counts == {"crash": 2}
        details = {record.detail for record in plan.events}
        assert details == {"receiver 2 down", "sender 2 down"}

    def test_reorder_boosts_delay(self):
        plan = FaultPlan([ReorderRule(1.0, max_boost=50.0)], seed=9)
        network = Network(fault_plan=plan)
        network.register_all([InertProcessor(pid) for pid in (1, 2)])
        network.send(1, 2, "m", {})
        network.run_until_quiescent()
        record = network.trace.records[0]
        assert record.deliver_time > 1.0  # unit delay plus a boost
        assert plan.counts == {"reorder": 1}


# ----------------------------------------------------------------------
# Determinism and the fork/reset lifecycle
# ----------------------------------------------------------------------
class TestDeterminism:
    SPEC = "drop=0.2,dup=0.1,reorder=0.2"

    def _run(self, plan):
        network = Network(fault_plan=plan)
        network.register_all([InertProcessor(pid) for pid in (1, 2, 3)])
        _blast(network, 300)
        return network.trace.loads(), plan.events

    def test_equal_seeds_give_equal_injections(self):
        loads_a, events_a = self._run(parse_fault_spec(self.SPEC, seed=7))
        loads_b, events_b = self._run(parse_fault_spec(self.SPEC, seed=7))
        assert loads_a == loads_b
        assert events_a == events_b

    def test_different_seeds_differ(self):
        _, events_a = self._run(parse_fault_spec(self.SPEC, seed=1))
        _, events_b = self._run(parse_fault_spec(self.SPEC, seed=2))
        assert events_a != events_b

    def test_equivalent_spellings_inject_identically(self):
        _, events_a = self._run(
            parse_fault_spec("reorder=0.2,dup=0.1,drop=0.2", seed=7)
        )
        _, events_b = self._run(parse_fault_spec(self.SPEC, seed=7))
        assert events_a == events_b

    def test_fork_is_independent_and_equivalently_seeded(self):
        parent = parse_fault_spec(self.SPEC, seed=5)
        _, parent_events = self._run(parent)
        fork = parent.fork()
        assert fork.spec == parent.spec
        assert fork.seed == parent.seed
        assert fork.events == []  # fresh ledger
        _, fork_events = self._run(fork)
        assert fork_events == parent_events  # replay from scratch
        assert parent.events == parent_events  # parent untouched by fork run

    def test_reset_replays_the_same_stream(self):
        plan = parse_fault_spec(self.SPEC, seed=5)
        _, first = self._run(plan)
        events_snapshot = list(first)
        plan.reset()
        assert plan.events == [] and plan.counts == {}
        network = Network(fault_plan=plan)
        network.register_all([InertProcessor(pid) for pid in (1, 2, 3)])
        _blast(network, 300)
        assert plan.events == events_snapshot


# ----------------------------------------------------------------------
# Zero overhead without a plan; trace integration with one
# ----------------------------------------------------------------------
class TestNetworkIntegration:
    def test_clean_network_keeps_the_class_level_send(self):
        network = Network()
        assert "send" not in network.__dict__
        assert type(network).send is Network.send

    def test_installing_a_plan_rebinds_send_on_the_instance_only(self):
        clean = Network()
        faulty = Network(fault_plan=parse_fault_spec("drop=0.5"))
        assert "send" in faulty.__dict__
        assert "send" not in clean.__dict__

    def test_clean_runs_are_identical_with_the_fault_layer_present(self):
        def run(**kwargs):
            network = Network(**kwargs)
            network.register_all([InertProcessor(pid) for pid in (1, 2)])
            _blast(network, 100)
            return network.trace.records

        assert run() == run(fault_plan=None)

    @pytest.mark.parametrize("level", [TraceLevel.FULL, TraceLevel.LOADS])
    def test_trace_mirrors_fault_counts(self, level):
        plan = parse_fault_spec("drop=0.3", seed=2)
        network = Network(trace_level=level, fault_plan=plan)
        network.register_all([InertProcessor(pid) for pid in (1, 2)])
        _blast(network, 100)
        assert network.trace.fault_counts() == plan.counts
        assert network.trace.total_faults == sum(plan.counts.values())

    def test_full_trace_records_fault_events(self):
        plan = parse_fault_spec("drop=0.3", seed=2)
        network = Network(trace_level=TraceLevel.FULL, fault_plan=plan)
        network.register_all([InertProcessor(pid) for pid in (1, 2)])
        _blast(network, 100)
        assert network.trace.fault_events == plan.events

    def test_loads_trace_refuses_fault_events(self):
        network = Network(
            trace_level=TraceLevel.LOADS,
            fault_plan=parse_fault_spec("drop=0.5"),
        )
        with pytest.raises(TraceCapabilityError):
            network.trace.fault_events

    def test_off_trace_keeps_only_the_plan_ledger(self):
        plan = parse_fault_spec("drop=0.5", seed=1)
        network = Network(trace_level=TraceLevel.OFF, fault_plan=plan)
        network.register_all([InertProcessor(pid) for pid in (1, 2)])
        _blast(network, 100)
        assert sum(plan.counts.values()) > 0  # the plan still counted
        with pytest.raises(TraceCapabilityError):
            network.trace.fault_counts()


# ----------------------------------------------------------------------
# SimulationLimitError enrichment
# ----------------------------------------------------------------------
class TestLimitError:
    def _livelock(self, **kwargs) -> SimulationLimitError:
        network = Network(event_limit=40, **kwargs)
        network.register_all([_Echo(1), _Echo(2)])
        network.send(1, 2, "ping", {})
        with pytest.raises(SimulationLimitError) as excinfo:
            network.run_until_quiescent()
        return excinfo.value

    def test_error_reports_events_in_flight_and_context(self):
        error = self._livelock()
        assert error.events_executed is not None
        assert error.events_executed > 40  # the over-budget event included
        assert error.in_flight is not None
        assert f"{error.events_executed} events executed" in str(error)
        assert "in flight" in str(error)

    def test_error_names_the_run_context(self):
        network = Network(event_limit=40)
        network.run_context = "ww-tree?interval_mode=wrap"
        network.register_all([_Echo(1), _Echo(2)])
        network.send(1, 2, "ping", {})
        with pytest.raises(SimulationLimitError) as excinfo:
            network.run_until_quiescent()
        assert excinfo.value.context == "ww-tree?interval_mode=wrap"
        assert "while running ww-tree?interval_mode=wrap" in str(excinfo.value)

    def test_error_names_the_fault_plan(self):
        error = self._livelock(fault_plan=parse_fault_spec("reorder=0.5"))
        assert "under fault plan 'reorder=0.5'" in str(error)
