"""Tests for the generalized tree data structures (§2's remark)."""

from __future__ import annotations

import heapq
import random

import pytest

from repro.datatypes import (
    DELETE_MIN,
    FLIP,
    INSERT,
    PEEK,
    READ,
    WRITE_MAX,
    DistributedFlipBit,
    DistributedMaxRegister,
    DistributedPriorityQueue,
    run_ops,
)
from repro.errors import ConfigurationError, ProtocolError
from repro.lowerbound import check_hot_spot
from repro.sim.network import Network
from repro.workloads import one_shot, run_sequence
from repro.workloads.driver import RunResult


class TestFlipBit:
    def test_flip_returns_previous_and_inverts(self):
        network = Network()
        bit = DistributedFlipBit(network, 8)
        ops = [(pid, FLIP) for pid in one_shot(8)]
        result = run_ops(bit, ops)
        assert result.replies() == [0, 1, 0, 1, 0, 1, 0, 1]
        assert bit.state == 0  # eight flips land back at 0

    def test_read_does_not_change_the_bit(self):
        network = Network()
        bit = DistributedFlipBit(network, 4)
        result = run_ops(bit, [(1, FLIP), (2, READ), (3, READ), (4, FLIP)])
        assert result.replies() == [0, 1, 1, 1]
        assert bit.state == 0

    def test_unknown_op_rejected(self):
        network = Network()
        bit = DistributedFlipBit(network, 4)
        with pytest.raises(ProtocolError):
            run_ops(bit, [(1, "explode")])

    def test_flip_dependency_spans_every_pair(self):
        # The value returned by op i+1 is determined by op i: the
        # sequential dependency the Hot Spot Lemma needs.
        network = Network()
        bit = DistributedFlipBit(network, 16)
        result = run_ops(bit, [(pid, FLIP) for pid in one_shot(16)])
        replies = result.replies()
        for previous, current in zip(replies, replies[1:]):
            assert current == previous ^ 1


class TestPriorityQueue:
    def test_insert_then_delete_min_sorts(self):
        network = Network()
        queue = DistributedPriorityQueue(network, 16)
        keys = [7, 3, 9, 1, 5, 2, 8, 6]
        ops = [(pid, (INSERT, key)) for pid, key in zip(one_shot(8), keys)]
        ops += [(pid, (DELETE_MIN,)) for pid in range(9, 17)]
        result = run_ops(queue, ops)
        assert result.replies()[8:] == sorted(keys)
        assert len(queue) == 0

    def test_delete_from_empty_returns_none(self):
        network = Network()
        queue = DistributedPriorityQueue(network, 4)
        result = run_ops(queue, [(1, (DELETE_MIN,))])
        assert result.replies() == [None]

    def test_peek_is_nondestructive(self):
        network = Network()
        queue = DistributedPriorityQueue(network, 4)
        result = run_ops(
            queue,
            [(1, (INSERT, 42)), (2, (PEEK,)), (3, (PEEK,)), (4, (DELETE_MIN,))],
        )
        assert result.replies() == [1, 42, 42, 42]

    def test_matches_reference_heap_on_random_ops(self):
        from repro.core import IntervalMode, TreePolicy

        rng = random.Random(7)
        network = Network()
        # Repeated initiators are not the one-shot workload; wrap mode
        # lets intervals be reused (trading away the one-shot bound).
        queue = DistributedPriorityQueue(
            network,
            32,
            policy=TreePolicy(retire_threshold=12, interval_mode=IntervalMode.WRAP),
        )
        reference: list[int] = []
        ops = []
        expected = []
        for step in range(60):
            pid = rng.randrange(1, 33)
            if reference and rng.random() < 0.4:
                ops.append((pid, (DELETE_MIN,)))
                expected.append(heapq.heappop(reference))
            else:
                key = rng.randrange(1000)
                ops.append((pid, (INSERT, key)))
                heapq.heappush(reference, key)
                expected.append(len(reference))
        result = run_ops(queue, ops)
        assert result.replies() == expected

    def test_malformed_requests_rejected(self):
        network = Network()
        queue = DistributedPriorityQueue(network, 4)
        with pytest.raises(ProtocolError):
            run_ops(queue, [(1, "not-a-tuple")])
        network = Network()
        queue = DistributedPriorityQueue(network, 4)
        with pytest.raises(ProtocolError):
            run_ops(queue, [(1, (INSERT,))])


class TestMaxRegister:
    def test_write_max_monotone(self):
        network = Network()
        register = DistributedMaxRegister(network, 8)
        result = run_ops(
            register,
            [
                (1, (WRITE_MAX, 5)),
                (2, (WRITE_MAX, 3)),  # no-op: smaller
                (3, (READ,)),
                (4, (WRITE_MAX, 9)),
                (5, (READ,)),
            ],
        )
        assert result.replies() == [0, 5, 5, 5, 9]
        assert register.state == 9

    def test_returns_previous_value(self):
        network = Network()
        register = DistributedMaxRegister(network, 4)
        result = run_ops(register, [(1, (WRITE_MAX, 2)), (2, (WRITE_MAX, 7))])
        assert result.replies() == [0, 2]


class TestSharedTreeMachinery:
    @pytest.mark.parametrize(
        "cls,request_",
        [
            (DistributedFlipBit, FLIP),
            (DistributedPriorityQueue, (INSERT, 1)),
            (DistributedMaxRegister, (WRITE_MAX, 1)),
        ],
    )
    def test_one_shot_bottleneck_is_o_k(self, cls, request_):
        """§2's remark: the O(k) structure carries over unchanged."""
        n = 81
        network = Network()
        structure = cls(network, n)
        result = run_ops(structure, [(pid, request_) for pid in one_shot(n)])
        assert result.bottleneck_load() <= 24 * structure.k

    @pytest.mark.parametrize(
        "cls,request_",
        [
            (DistributedFlipBit, FLIP),
            (DistributedPriorityQueue, (INSERT, 3)),
        ],
    )
    def test_hot_spot_lemma_applies(self, cls, request_):
        n = 27
        network = Network()
        structure = cls(network, n)
        adt_result = run_ops(structure, [(pid, request_) for pid in one_shot(n)])
        # Reuse the counter checker via a RunResult facade.
        from repro.workloads.driver import OpOutcome

        facade = RunResult(name := structure.name, n, adt_result.trace)
        facade.outcomes = [
            OpOutcome(o.op_index, o.initiator, 0, o.messages)
            for o in adt_result.outcomes
        ]
        assert check_hot_spot(facade).holds

    def test_retirements_happen_for_adts_too(self):
        network = Network()
        bit = DistributedFlipBit(network, 81)
        run_ops(bit, [(pid, FLIP) for pid in one_shot(81)])
        assert len(bit.retirements) > 0

    def test_state_survives_root_retirement(self):
        # The heap must migrate with the root role: insert everything,
        # then delete-min across many retirements.
        network = Network()
        queue = DistributedPriorityQueue(network, 81)
        inserts = [(pid, (INSERT, 1000 - pid)) for pid in one_shot(81)]
        run_ops(queue, inserts)
        assert len(queue) == 81
        root_retires = sum(
            1 for event in queue.retirements if event.addr.is_root
        )
        assert root_retires > 0

    def test_invalid_pid_rejected(self):
        network = Network()
        bit = DistributedFlipBit(network, 4)
        with pytest.raises(ConfigurationError):
            bit.begin_op(5, 0, FLIP)

    def test_counter_compatible_begin_inc(self):
        # begin_inc == begin_op(None); for the flip bit None means flip.
        network = Network()
        bit = DistributedFlipBit(network, 4)
        result = run_sequence(bit, one_shot(4), check_values=False)
        assert result.values() == [0, 1, 0, 1]
