"""Tests for the live serving layer: CounterService + the load generator.

Everything runs in-process on loopback sockets with ``time_scale=0`` so
the suite stays fast; the wall-clock saturation behavior is exercised by
the ``serving`` benchmark grid instead.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import CapabilityError
from repro.registry import parse_spec, registered_names
from repro.serve import CounterService, LoadResult, run_load, run_rate_sweep

SERVABLE = tuple(
    name
    for name in registered_names()
    if parse_spec(name).capabilities.supports_concurrent
)
SEQUENTIAL_ONLY = tuple(
    name for name in registered_names() if name not in SERVABLE
)


def _spec_for(name: str) -> str:
    # Strict ww-tree enforces one-shot id discipline; a service handles
    # repeated operations, so it is served in wrap mode.
    return "ww-tree?interval_mode=wrap" if name == "ww-tree" else name


async def _request(service: CounterService, line: str) -> str:
    reader, writer = await asyncio.open_connection(
        service.host, service.port
    )
    try:
        writer.write(f"{line}\n".encode("ascii"))
        await writer.drain()
        return (await reader.readline()).decode("ascii").strip()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


class TestEveryServableSpecServes:
    """The acceptance bar: every concurrent-capable spec, served."""

    @pytest.mark.parametrize("name", SERVABLE)
    def test_served_increments_count_correctly(self, name):
        n = 8

        async def go():
            service = CounterService(_spec_for(name), n, port=0)
            await service.start()
            try:
                values = await asyncio.gather(
                    *(service.inc() for _ in range(n))
                )
            finally:
                await service.stop()
            return service, values

        service, values = asyncio.run(go())
        assert sorted(values) == list(range(n))
        assert service.served == n
        assert service.inflight == 0
        assert service.stats()["served"] == n

    @pytest.mark.parametrize("name", SEQUENTIAL_ONLY)
    def test_sequential_only_specs_refused(self, name):
        with pytest.raises(CapabilityError, match="cannot serve"):
            CounterService(name, 8)


class TestProtocol:
    def _with_service(self, coro_fn, spec="central", n=4):
        async def go():
            service = CounterService(spec, n, port=0)
            await service.start()
            try:
                return await coro_fn(service)
            finally:
                await service.stop()

        return asyncio.run(go())

    def test_inc_returns_ordered_values_per_connection(self):
        async def drive(service):
            reader, writer = await asyncio.open_connection(
                service.host, service.port
            )
            answers = []
            for _ in range(5):
                writer.write(b"INC\n")
                await writer.drain()
                answers.append((await reader.readline()).decode().strip())
            writer.close()
            await writer.wait_closed()
            return answers

        answers = self._with_service(drive)
        assert answers == [f"OK {v}" for v in range(5)]

    def test_ping_pong(self):
        assert self._with_service(lambda s: _request(s, "PING")) == "PONG"

    def test_stats_reports_spec_and_counts(self):
        async def drive(service):
            # two incs: the first leases central's co-located server
            # client (self-delivery, zero messages), the second is remote
            await service.inc()
            await service.inc()
            return await _request(service, "STATS")

        line = self._with_service(drive)
        assert line.startswith("STATS ")
        fields = dict(
            pair.split("=", 1) for pair in line[len("STATS "):].split()
        )
        assert fields["spec"] == "central"
        assert fields["n"] == "4"
        assert fields["served"] == "2"
        assert fields["inflight"] == "0"
        assert int(fields["messages"]) > 0

    def test_unknown_command_answers_err(self):
        answer = self._with_service(lambda s: _request(s, "DECREMENT"))
        assert answer.startswith("ERR unknown command")

    def test_lowercase_commands_accepted(self):
        assert self._with_service(lambda s: _request(s, "ping")) == "PONG"

    def test_shutdown_answers_bye_and_stops(self):
        async def go():
            service = CounterService("central", 4, port=0)
            await service.start()
            answer = await _request(service, "SHUTDOWN")
            await asyncio.wait_for(service.wait_closed(), timeout=5)
            return answer

        assert asyncio.run(go()) == "BYE"

    def test_port_zero_binds_a_real_port(self):
        async def go():
            service = CounterService("central", 4, port=0)
            await service.start()
            port = service.port
            address = service.address
            await service.stop()
            return port, address

        port, address = asyncio.run(go())
        assert port > 0
        assert address == f"127.0.0.1:{port}"


class TestProtocolEdgeCases:
    def test_binary_junk_answers_err_and_keeps_the_connection(self):
        async def go():
            service = CounterService("central", 4, port=0)
            await service.start()
            try:
                reader, writer = await asyncio.open_connection(
                    service.host, service.port
                )
                writer.write(b"\x00\xff\xfe\x80 junk\n")
                await writer.drain()
                junk_answer = (await reader.readline()).decode(
                    "ascii", "replace"
                )
                writer.write(b"PING\n")
                await writer.drain()
                ping_answer = (await reader.readline()).decode("ascii")
                writer.close()
                await writer.wait_closed()
                return junk_answer, ping_answer
            finally:
                await service.stop()

        junk_answer, ping_answer = asyncio.run(go())
        assert junk_answer.startswith("ERR unknown command")
        assert ping_answer == "PONG\n"

    def test_pipelined_commands_in_one_chunk_answer_in_order(self):
        async def go():
            service = CounterService("central", 4, port=0)
            await service.start()
            try:
                reader, writer = await asyncio.open_connection(
                    service.host, service.port
                )
                writer.write(b"INC\nPING\nINC\nSTATS\n")
                await writer.drain()
                answers = [
                    (await reader.readline()).decode("ascii").strip()
                    for _ in range(4)
                ]
                writer.close()
                await writer.wait_closed()
                return answers
            finally:
                await service.stop()

        answers = asyncio.run(go())
        assert answers[0] == "OK 0"
        assert answers[1] == "PONG"
        assert answers[2] == "OK 1"
        assert answers[3].startswith("STATS ")

    def test_disconnect_mid_inc_returns_the_leased_processor(self):
        async def go():
            service = CounterService(
                "static-tree", 1, port=0, time_scale=0.05
            )
            await service.start()
            try:
                _, writer = await asyncio.open_connection(
                    service.host, service.port
                )
                writer.write(b"INC\n")
                await writer.drain()
                writer.close()  # walk away mid-operation
                # the op still commits, and the single lease is free
                # again for the next client: an in-process inc works
                await asyncio.sleep(0.01)
                value = await asyncio.wait_for(service.inc(), timeout=5.0)
                return value, service.served, service.inflight
            finally:
                await service.stop()

        value, served, inflight = asyncio.run(go())
        assert value == 1  # the abandoned op committed first
        assert served == 2
        assert inflight == 0

    def test_stats_field_order_is_the_wire_contract(self):
        async def go():
            service = CounterService("central", 4, port=0)
            await service.start()
            try:
                return await _request(service, "STATS")
            finally:
                await service.stop()

        line = asyncio.run(go())
        keys = [pair.split("=", 1)[0] for pair in line.split()[1:]]
        assert keys == [
            "spec",
            "n",
            "served",
            "inflight",
            "backlog",
            "shed",
            "expired",
            "deduped",
            "rid_committed",
            "messages",
        ]


class TestLoadGenerator:
    def test_run_load_counts_every_increment(self):
        async def go():
            service = CounterService(
                "ww-tree?interval_mode=wrap", 27, port=0
            )
            await service.start()
            try:
                result = await run_load(
                    service.host, service.port, ops=60, rate=500.0
                )
            finally:
                await service.stop()
            return service, result

        service, result = asyncio.run(go())
        assert result.sent == 60
        assert result.completed == 60
        assert result.errors == 0
        assert result.final_value == 60
        assert service.served == 60
        assert result.throughput > 0.0
        assert 0.0 <= result.p50 <= result.p99

    def test_bursty_process(self):
        async def go():
            service = CounterService("central", 8, port=0)
            await service.start()
            try:
                return await run_load(
                    service.host,
                    service.port,
                    ops=30,
                    rate=300.0,
                    process="bursty",
                )
            finally:
                await service.stop()

        result = asyncio.run(go())
        assert result.completed == 30
        assert result.process == "bursty"

    def test_rate_sweep_runs_each_rate(self):
        async def go():
            service = CounterService("central", 8, port=0)
            await service.start()
            try:
                return await run_rate_sweep(
                    service.host,
                    service.port,
                    ops=20,
                    rates=(100.0, 200.0),
                )
            finally:
                await service.stop()

        sweep = asyncio.run(go())
        assert sweep.rates == [100.0, 200.0]
        assert all(run.completed == 20 for run in sweep.runs)
        # final value keeps growing across the sweep on one service
        assert sweep.runs[0].final_value == 20
        assert sweep.runs[1].final_value == 40

    def test_rate_sweep_requires_ascending_rates(self):
        async def go():
            await run_rate_sweep("127.0.0.1", 1, ops=1, rates=(2.0, 1.0))

        with pytest.raises(ValueError, match="ascending"):
            asyncio.run(go())


class TestLoadResultMath:
    def _result(self, latencies):
        return LoadResult(
            offered_rate=10.0,
            process="poisson",
            sent=len(latencies),
            completed=len(latencies),
            errors=0,
            duration=2.0,
            final_value=len(latencies),
            latencies=list(latencies),
        )

    def test_percentiles_nearest_rank(self):
        result = self._result([0.1, 0.2, 0.3, 0.4, 0.5])
        assert result.p50 == 0.3
        assert result.percentile(0.0) == 0.1
        assert result.percentile(1.0) == 0.5

    def test_empty_latencies_are_zero(self):
        result = self._result([])
        assert result.mean_latency == 0.0
        assert result.p99 == 0.0

    def test_percentile_bounds_checked(self):
        with pytest.raises(ValueError):
            self._result([0.1]).percentile(1.5)

    def test_throughput_and_summary(self):
        result = self._result([0.01, 0.02])
        assert result.throughput == pytest.approx(1.0)
        line = result.summary()
        assert "rate=10/s" in line
        assert "ok=2" in line
        assert "p99=" in line
