"""Integration tests: the paper's comparative claims, end to end.

These are the tests that pin the headline result: in the one-shot
sequential workload the paper's counter has an O(k) bottleneck while
every baseline — central, static tree, combining tree, counting network,
diffracting tree — keeps a Θ(n)-ish hot spot.
"""

from __future__ import annotations

import pytest

from repro.analysis import LoadProfile
from repro.core import TreeCounter
from repro.counters import (
    BitonicCountingNetwork,
    CentralCounter,
    CombiningTreeCounter,
    DiffractingTreeCounter,
    StaticTreeCounter,
)
from repro.lowerbound import lower_bound_k, message_load_bound
from repro.sim.network import Network
from repro.workloads import one_shot, run_sequence

from conftest import ALL_FACTORIES


def _bottleneck(factory, n):
    network = Network()
    counter = factory(network, n)
    result = run_sequence(counter, one_shot(n))
    return result.bottleneck_load(), result


class TestHeadlineResult:
    def test_tree_beats_every_baseline_at_k4(self):
        n = 1024
        tree_load, _ = _bottleneck(TreeCounter, n)
        for name, factory in ALL_FACTORIES.items():
            if name == "ww-tree":
                continue
            if name == "arrow":
                # Order-sensitive: cheap on the friendly identity order,
                # Θ(n) on adversarial orders — covered separately below
                # and by E13.
                continue
            baseline_load, _ = _bottleneck(factory, n)
            assert tree_load < baseline_load, (
                f"{name}: {baseline_load} <= tree {tree_load}"
            )

    def test_tree_beats_arrow_on_adversarial_order(self):
        from repro.counters import ArrowCounter

        n = 256
        tree_network = Network()
        tree = TreeCounter(tree_network, n)
        tree_load = run_sequence(tree, one_shot(n)).bottleneck_load()
        ping_pong = [1 if i % 2 == 0 else n for i in range(n)]
        arrow_network = Network()
        arrow = ArrowCounter(arrow_network, n)
        arrow_load = run_sequence(arrow, ping_pong).bottleneck_load()
        assert tree_load < arrow_load

    def test_all_counters_respect_the_lower_bound(self):
        n = 81
        floor = message_load_bound(n)
        for factory in ALL_FACTORIES.values():
            load, _ = _bottleneck(factory, n)
            assert load >= floor

    def test_baselines_scale_linearly_tree_does_not(self):
        small, large = 81, 1024  # n grows 12.6x
        growth = {}
        for name, factory in ALL_FACTORIES.items():
            load_small, _ = _bottleneck(factory, small)
            load_large, _ = _bottleneck(factory, large)
            growth[name] = load_large / load_small
        # Θ(n) baselines grow close to 12.6x; the paper's tree grows
        # like k: 4/3 ≈ 1.33x.
        assert growth["ww-tree"] < 2.0
        for name in ("central", "static-tree", "combining-tree"):
            assert growth[name] > 8.0, f"{name} grew only {growth[name]:.1f}x"

    def test_measured_load_tracks_k_curve(self):
        # Bottleneck/k(n) is roughly constant for the tree counter.
        ratios = []
        for k in (2, 3, 4):
            n = k ** (k + 1)
            load, _ = _bottleneck(TreeCounter, n)
            ratios.append(load / lower_bound_k(n))
        assert max(ratios) / min(ratios) < 2.0


class TestCostOfDecentralization:
    def test_central_counter_is_message_optimal(self):
        # §1: "message optimal ... with only one message exchange".
        n = 64
        central_load, central_result = _bottleneck(CentralCounter, n)
        tree_load, tree_result = _bottleneck(TreeCounter, n)
        assert central_result.total_messages < tree_result.total_messages
        assert tree_load < central_load

    def test_total_message_overhead_is_bounded(self):
        # The tree pays O(k) messages per op — more than central's 2, but
        # a bounded multiple.
        n = 1024
        _, tree_result = _bottleneck(TreeCounter, n)
        per_op = tree_result.average_messages_per_op()
        k = 4
        assert 2 <= per_op <= 6 * k


class TestLoadDistributionShape:
    def test_tree_spreads_load_far_more_evenly(self):
        n = 1024
        _, central_result = _bottleneck(CentralCounter, n)
        _, tree_result = _bottleneck(TreeCounter, n)
        central_profile = LoadProfile.from_trace(central_result.trace, population=n)
        tree_profile = LoadProfile.from_trace(tree_result.trace, population=n)
        assert tree_profile.concentration < central_profile.concentration / 5

    def test_every_processor_in_tree_has_low_load(self):
        n = 1024
        _, result = _bottleneck(TreeCounter, n)
        profile = LoadProfile.from_trace(result.trace, population=n)
        assert profile.percentile(0.99) <= profile.bottleneck_load
        assert profile.bottleneck_load <= 24 * 4  # C·k at k=4


class TestCountingNetworkWidthTradeoff:
    @pytest.mark.parametrize("width", [2, 4, 8])
    def test_wider_networks_trade_messages_for_load(self, width):
        n = 128
        network = Network()
        counter = BitonicCountingNetwork(network, n, width=width)
        result = run_sequence(counter, one_shot(n))
        assert result.values() == list(range(n))

    def test_width_sweep_monotone_bottleneck(self):
        n = 128
        loads = []
        for width in (2, 4, 8, 16):
            network = Network()
            counter = BitonicCountingNetwork(network, n, width=width)
            result = run_sequence(counter, one_shot(n))
            loads.append(result.bottleneck_load())
        assert loads[0] > loads[-1]


class TestDiffractingAndCombiningStayLinear:
    @pytest.mark.parametrize(
        "factory", [CombiningTreeCounter, DiffractingTreeCounter, StaticTreeCounter]
    )
    def test_sequential_bottleneck_grows_with_n(self, factory):
        load_small, _ = _bottleneck(factory, 32)
        load_large, _ = _bottleneck(factory, 256)
        assert load_large >= 4 * load_small
