"""Tests for the linearizability checker (HSW related work)."""

from __future__ import annotations

import pytest

from repro.analysis import (
    TimedOp,
    check_linearizable_counting,
    run_concurrent_timed,
    run_staggered_timed,
)
from repro.counters import BitonicCountingNetwork, CentralCounter
from repro.errors import ProtocolError
from repro.sim.network import Network
from repro.sim.policies import DeliveryPolicy, RandomDelay


def _op(index, value, request, response):
    return TimedOp(
        op_index=index, initiator=index + 1, value=value,
        request_time=request, response_time=response,
    )


class TestChecker:
    def test_sequential_history_is_linearizable(self):
        ops = [_op(i, i, 10.0 * i, 10.0 * i + 5) for i in range(5)]
        report = check_linearizable_counting(ops)
        assert report.linearizable
        assert report.precedence_pairs == 10  # all ordered pairs

    def test_fully_overlapping_history_is_vacuously_linearizable(self):
        ops = [_op(i, 4 - i, 0.0, 100.0) for i in range(5)]
        report = check_linearizable_counting(ops)
        assert report.linearizable
        assert report.precedence_pairs == 0

    def test_inversion_detected(self):
        ops = [
            _op(0, 1, 0.0, 5.0),   # finished early with the BIGGER value
            _op(1, 0, 10.0, 15.0),  # started later, got the smaller value
        ]
        report = check_linearizable_counting(ops)
        assert not report.linearizable
        assert len(report.inversions) == 1
        inversion = report.inversions[0]
        assert inversion.earlier.value == 1
        assert inversion.later.value == 0
        assert "larger value" in str(inversion)

    def test_nearest_witness_is_reported(self):
        ops = [
            _op(0, 2, 0.0, 3.0),
            _op(1, 1, 0.0, 4.0),
            _op(2, 0, 10.0, 12.0),
        ]
        report = check_linearizable_counting(ops)
        assert not report.linearizable
        # op 2 is inverted against the earliest-finishing larger value.
        assert report.inversions[0].earlier.value == 2

    def test_duplicate_values_rejected(self):
        ops = [_op(0, 1, 0.0, 1.0), _op(1, 1, 2.0, 3.0)]
        with pytest.raises(ProtocolError):
            check_linearizable_counting(ops)


class _StallFirstToken(DeliveryPolicy):
    """Scripted adversary: park client 1's post-balancer hop for ages."""

    def delay(self, message):
        if (
            message.kind == "cn-token"
            and message.payload.get("origin") == 1
            and message.payload.get("layer") == 1
        ):
            return 100.0
        return 1.0


class TestCountersUnderConcurrency:
    def test_central_counter_is_linearizable(self):
        for seed in range(5):
            network = Network(policy=RandomDelay(seed=seed, low=0.5, high=20.0))
            counter = CentralCounter(network, 16)
            ops = run_staggered_timed(counter, list(range(1, 17)), gap=2.0)
            assert check_linearizable_counting(ops).linearizable

    def test_counting_network_counts_but_is_not_linearizable(self):
        """The HSW counterexample, deterministic.

        A stalled token reserves exit wire 0; a second token finishes
        with value 1; a third token, starting strictly afterwards,
        overtakes the stalled one and receives value 0.
        """
        network = Network(policy=_StallFirstToken())
        counter = BitonicCountingNetwork(network, 4, width=2)
        ops = run_staggered_timed(counter, [1, 2, 3], gap=5.0)
        # It counts: values are a permutation.
        assert sorted(op.value for op in ops) == [0, 1, 2]
        report = check_linearizable_counting(ops)
        assert not report.linearizable
        inversion = report.inversions[0]
        assert inversion.earlier.value > inversion.later.value
        assert inversion.earlier.response_time < inversion.later.request_time

    def test_concurrent_timed_driver_matches_results(self):
        network = Network(policy=RandomDelay(seed=3))
        counter = CentralCounter(network, 8)
        ops = run_concurrent_timed(counter, list(range(1, 9)))
        assert sorted(op.value for op in ops) == list(range(8))
        assert all(op.response_time >= op.request_time for op in ops)
