"""Tiered tracing: FULL, LOADS and OFF agree where they overlap.

The trace level only changes what the simulator *remembers*, never what
it *does*: the same seed must drive the same execution at every level,
the load counters kept by ``LOADS`` must equal the ones derived from
``FULL`` records, and queries a level cannot answer must fail loudly
with :class:`~repro.errors.TraceCapabilityError` rather than return
wrong data.
"""

from __future__ import annotations

import pytest

from repro.counters import CentralCounter
from repro.core import TreeCounter
from repro.errors import TraceCapabilityError
from repro.sim.messages import Message
from repro.sim.network import Network
from repro.sim.policies import RandomDelay
from repro.sim.processor import Processor
from repro.sim.trace import Trace, TraceLevel
from repro.workloads import one_shot, run_sequence


class Echo(Processor):
    def on_message(self, message: Message) -> None:
        if message.kind == "ping":
            self.send(message.sender, "pong", {})


def _run_tree(level: TraceLevel, seed: int = 7, n: int = 81) -> Network:
    network = Network(policy=RandomDelay(seed=seed), trace_level=level)
    counter = TreeCounter(network, n)
    run_sequence(counter, one_shot(n))
    return network


class TestTraceLevelCoercion:
    def test_coerce_accepts_names_any_case(self):
        assert TraceLevel.coerce("loads") is TraceLevel.LOADS
        assert TraceLevel.coerce("FULL") is TraceLevel.FULL
        assert TraceLevel.coerce(TraceLevel.OFF) is TraceLevel.OFF

    def test_coerce_rejects_unknown(self):
        with pytest.raises(ValueError):
            TraceLevel.coerce("verbose")

    def test_network_accepts_string_level(self):
        network = Network(trace_level="loads")
        assert network.trace_level is TraceLevel.LOADS


class TestDeterminismAcrossLevels:
    def test_same_seed_same_run_under_loads(self):
        first = _run_tree(TraceLevel.LOADS)
        second = _run_tree(TraceLevel.LOADS)
        assert first.trace.loads() == second.trace.loads()
        assert first.trace.total_messages == second.trace.total_messages
        assert first.now == second.now

    def test_full_and_loads_counters_agree(self):
        full = _run_tree(TraceLevel.FULL).trace
        loads = _run_tree(TraceLevel.LOADS).trace
        assert loads.loads() == full.loads()
        assert loads.total_messages == full.total_messages
        assert loads.bottleneck() == full.bottleneck()
        assert loads.op_indices() == full.op_indices()
        for op in full.op_indices():
            assert loads.messages_for_op(op) == full.messages_for_op(op)
            assert loads.footprint(op) == full.footprint(op)

    def test_off_runs_the_same_execution(self):
        full = _run_tree(TraceLevel.FULL)
        off = _run_tree(TraceLevel.OFF)
        assert off.now == full.now
        assert off.events_executed == full.events_executed
        assert off.trace.level is TraceLevel.OFF


class TestCapabilityErrors:
    def test_loads_refuses_record_queries(self):
        trace = _run_tree(TraceLevel.LOADS, n=8).trace
        with pytest.raises(TraceCapabilityError):
            trace.records  # noqa: B018
        with pytest.raises(TraceCapabilityError):
            list(trace)
        with pytest.raises(TraceCapabilityError):
            trace.records_for_op(0)
        with pytest.raises(TraceCapabilityError):
            trace.load_snapshot(1)

    def test_off_refuses_load_queries(self):
        trace = _run_tree(TraceLevel.OFF, n=8).trace
        with pytest.raises(TraceCapabilityError):
            trace.loads()
        with pytest.raises(TraceCapabilityError):
            trace.bottleneck()
        with pytest.raises(TraceCapabilityError):
            trace.load(1)
        with pytest.raises(TraceCapabilityError):
            trace.total_messages  # noqa: B018

    def test_error_names_the_required_level(self):
        trace = Trace(level=TraceLevel.LOADS)
        with pytest.raises(TraceCapabilityError, match="FULL"):
            trace.records  # noqa: B018


class TestDegradedDriver:
    def test_driver_reports_sentinel_under_off(self):
        network = Network(trace_level=TraceLevel.OFF)
        counter = CentralCounter(network, 8)
        result = run_sequence(counter, one_shot(8))
        assert [outcome.value for outcome in result.outcomes] == list(range(8))
        assert all(outcome.messages == -1 for outcome in result.outcomes)

    def test_driver_keeps_counts_under_loads(self):
        network = Network(trace_level=TraceLevel.LOADS)
        counter = CentralCounter(network, 8)
        result = run_sequence(counter, one_shot(8))
        assert all(outcome.messages >= 0 for outcome in result.outcomes)
        assert result.bottleneck_load() == network.trace.bottleneck()[1]


class TestPayloadSharing:
    def test_full_copies_payloads(self):
        network = Network(trace_level=TraceLevel.FULL)
        network.register_all([Echo(1), Echo(2)])
        payload = {"x": 1}
        message = network.send(1, 2, "data", payload)
        payload["x"] = 2
        assert message.payload == {"x": 1}

    def test_loads_passes_payload_through(self):
        # The fast tiers skip the defensive copy — documented contract.
        network = Network(trace_level=TraceLevel.LOADS)
        network.register_all([Echo(1), Echo(2)])
        payload = {"x": 1}
        message = network.send(1, 2, "data", payload)
        assert message.payload is payload
