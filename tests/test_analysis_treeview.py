"""Tests for the ASCII tree/load renderings."""

from __future__ import annotations

from repro.analysis import (
    LoadProfile,
    render_histogram,
    render_load_bars,
    render_tree,
)
from repro.core import TreeCounter
from repro.sim.network import Network
from repro.sim.trace import Trace
from repro.workloads import one_shot, run_sequence


def _profile(n=81):
    network = Network()
    counter = TreeCounter(network, n)
    result = run_sequence(counter, one_shot(n))
    return counter, LoadProfile.from_trace(result.trace, population=n)


class TestRenderTree:
    def test_mentions_every_level(self):
        counter, _ = _profile()
        text = render_tree(counter)
        assert "root" in text
        assert "lvl 1" in text
        assert "lvl 3" in text
        assert "leaves: 81" in text

    def test_reflects_retirements(self):
        counter, _ = _profile()
        text = render_tree(counter)
        total = len(counter.retirements)
        assert total > 0
        # Root line shows a nonzero retirement count.
        root_line = next(line for line in text.splitlines() if "root" in line)
        assert "retired" in root_line
        assert " 0x" not in root_line

    def test_fresh_counter_renders_without_traffic(self):
        network = Network()
        counter = TreeCounter(network, 8)
        text = render_tree(counter)
        assert "8 leaves" in text


class TestRenderLoadBars:
    def test_bars_monotone_nonincreasing(self):
        _, profile = _profile()
        lines = render_load_bars(profile, top=5).splitlines()[1:]
        lengths = [line.count("█") for line in lines]
        assert lengths == sorted(lengths, reverse=True)

    def test_empty_profile(self):
        profile = LoadProfile.from_trace(Trace())
        assert "no load" in render_load_bars(profile)

    def test_top_limits_rows(self):
        _, profile = _profile()
        lines = render_load_bars(profile, top=3).splitlines()
        assert len(lines) == 4  # header + 3 bars


class TestRenderHistogram:
    def test_counts_cover_population(self):
        _, profile = _profile()
        text = render_histogram(profile, bins=4)
        counts = [int(line.split()[1]) for line in text.splitlines()[1:]]
        assert sum(counts) == profile.population

    def test_empty_histogram(self):
        profile = LoadProfile.from_trace(Trace(), population=0)
        text = render_histogram(profile)
        assert "histogram" in text or "empty" in text
