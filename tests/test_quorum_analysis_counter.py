"""Tests for quorum load analysis and the quorum counter."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.lowerbound import check_hot_spot
from repro.quorum import (
    CrumblingWall,
    MaekawaGrid,
    QuorumCounter,
    RotatingMajorityQuorum,
    SingletonQuorum,
    TreePathQuorum,
    WheelQuorum,
    naor_wool_floor,
    optimal_load,
    uniform_load,
)
from repro.sim.network import Network
from repro.workloads import one_shot, run_sequence, shuffled


class TestLoadAnalysis:
    def test_singleton_load_is_one(self):
        system = SingletonQuorum(9)
        assert uniform_load(system).system_load == pytest.approx(1.0)
        assert optimal_load(system).system_load == pytest.approx(1.0)

    def test_majority_load_is_about_half(self):
        system = RotatingMajorityQuorum(9)
        assert uniform_load(system).system_load == pytest.approx(5 / 9)

    def test_maekawa_load_is_order_inverse_sqrt(self):
        system = MaekawaGrid(25)
        load = optimal_load(system).system_load
        assert load == pytest.approx(9 / 25, abs=0.02)  # (2√n-1)/n

    def test_optimal_never_exceeds_uniform(self):
        for system in (
            MaekawaGrid(16),
            WheelQuorum(10),
            CrumblingWall(12),
            TreePathQuorum(15),
        ):
            assert (
                optimal_load(system).system_load
                <= uniform_load(system).system_load + 1e-9
            )

    def test_naor_wool_floor_respected(self):
        for system in (
            SingletonQuorum(9),
            RotatingMajorityQuorum(9),
            MaekawaGrid(16),
            WheelQuorum(10),
            CrumblingWall(12),
            TreePathQuorum(15),
        ):
            floor = naor_wool_floor(system)
            assert floor >= 1.0 / math.sqrt(system.n) - 1e-9
            assert optimal_load(system).system_load >= floor - 1e-9

    def test_wheel_optimal_beats_uniform(self):
        system = WheelQuorum(10)
        assert (
            optimal_load(system).system_load
            < uniform_load(system).system_load - 0.05
        )

    def test_strategy_is_a_distribution(self):
        analysis = optimal_load(MaekawaGrid(9))
        assert sum(analysis.strategy) == pytest.approx(1.0)
        assert all(x >= -1e-9 for x in analysis.strategy)

    def test_hottest_element(self):
        system = TreePathQuorum(7)
        pid, load = uniform_load(system).hottest()
        assert pid == 1  # the root
        assert load == pytest.approx(1.0)


class TestQuorumCounter:
    @pytest.mark.parametrize(
        "system_factory,n",
        [
            (SingletonQuorum, 9),
            (RotatingMajorityQuorum, 8),
            (MaekawaGrid, 16),
            (TreePathQuorum, 15),
            (WheelQuorum, 9),
            (CrumblingWall, 12),
        ],
    )
    def test_sequential_values_correct(self, system_factory, n):
        network = Network()
        counter = QuorumCounter(network, n, system_factory(n))
        result = run_sequence(counter, one_shot(n))
        assert result.values() == list(range(n))

    def test_correct_under_shuffled_order(self):
        network = Network()
        counter = QuorumCounter(network, 16, MaekawaGrid(16))
        result = run_sequence(counter, shuffled(16, seed=7))
        assert result.values() == list(range(16))

    def test_hot_spot_lemma_holds(self):
        network = Network()
        counter = QuorumCounter(network, 16, MaekawaGrid(16))
        result = run_sequence(counter, one_shot(16))
        assert check_hot_spot(result).holds

    def test_mismatched_universe_rejected(self):
        with pytest.raises(ConfigurationError):
            QuorumCounter(Network(), 8, MaekawaGrid(9))

    def test_singleton_system_degenerates_to_central_shape(self):
        network = Network()
        counter = QuorumCounter(network, 9, SingletonQuorum(9))
        result = run_sequence(counter, one_shot(9))
        # Center is read (2 msgs) and written (1 msg) by every remote op.
        assert result.bottleneck_processor() == 1
        assert result.bottleneck_load() == 3 * 8

    def test_maekawa_bottleneck_scales_like_sqrt_n(self):
        bottlenecks = {}
        for n in (16, 64, 256):
            network = Network()
            counter = QuorumCounter(network, n, MaekawaGrid(n))
            result = run_sequence(counter, one_shot(n))
            bottlenecks[n] = result.bottleneck_load()
        # n×4 => bottleneck ×~2 (√n scaling), far from ×4 (Θ(n)).
        assert bottlenecks[64] < bottlenecks[16] * 3
        assert bottlenecks[256] < bottlenecks[64] * 3
        assert bottlenecks[256] > bottlenecks[64] * 1.5

    def test_member_state_versions_advance(self):
        network = Network()
        counter = QuorumCounter(network, 9, RotatingMajorityQuorum(9))
        run_sequence(counter, one_shot(9))
        versions = [counter.member(p).version for p in range(1, 10)]
        assert max(versions) == 9

    def test_per_op_message_cost(self):
        network = Network()
        counter = QuorumCounter(network, 9, MaekawaGrid(9))
        result = run_sequence(counter, one_shot(9))
        for outcome in result.outcomes:
            quorum = counter.system.quorum_for(outcome.op_index)
            remote = len(quorum - {outcome.initiator})
            assert outcome.messages == 3 * remote
