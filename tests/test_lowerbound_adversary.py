"""Tests for the greedy longest-list adversary (the §3 proof, played live)."""

from __future__ import annotations

import pytest

from repro.core import TreeCounter
from repro.counters import CentralCounter, StaticTreeCounter
from repro.lowerbound import (
    GreedyAdversary,
    am_gm_holds,
    check_hot_spot,
    evaluate_ledger,
    message_load_bound,
)


class TestAdversarialGame:
    def test_each_processor_chosen_exactly_once(self):
        run = GreedyAdversary(CentralCounter, 8).run()
        assert sorted(run.order) == list(range(1, 9))

    def test_values_still_sequential(self):
        run = GreedyAdversary(CentralCounter, 8).run()
        assert run.result.values() == list(range(8))

    def test_chosen_lengths_are_maxima(self):
        # For the central counter every remote inc has list length 2 and
        # the server's own inc has length 0; the adversary must postpone
        # the server to the very end.
        run = GreedyAdversary(CentralCounter, 6).run()
        assert run.order[-1] == 1  # the server
        assert run.chosen_lengths[:-1] == [2] * 5
        assert run.chosen_lengths[-1] == 0

    def test_ledger_tracks_q(self):
        run = GreedyAdversary(CentralCounter, 6).run()
        assert all(step.q == run.q for step in run.ledger)
        assert len(run.ledger) == 6

    def test_trials_do_not_perturb_the_real_run(self):
        adversarial = GreedyAdversary(CentralCounter, 8).run()
        # The real trace must contain exactly the committed operations.
        assert adversarial.result.total_messages == 2 * 7  # server last, free
        assert adversarial.result.trace.op_indices() == list(range(7))


class TestLowerBoundConclusion:
    @pytest.mark.parametrize(
        "factory,n",
        [
            (CentralCounter, 8),
            (CentralCounter, 16),
            (TreeCounter, 8),
            (StaticTreeCounter, 8),
        ],
    )
    def test_bottleneck_at_least_k(self, factory, n):
        run = GreedyAdversary(factory, n).run()
        assert run.bottleneck_load >= message_load_bound(n)

    def test_hot_spot_lemma_holds_under_the_adversary(self):
        run = GreedyAdversary(TreeCounter, 8).run()
        assert check_hot_spot(run.result).holds

    def test_weight_argument_pieces(self):
        run = GreedyAdversary(CentralCounter, 12).run()
        report = evaluate_ledger(run.ledger, base=run.bottleneck_load + 1)
        assert am_gm_holds(report)
        # The weight grows as operations load q's list (§3's engine).
        assert report.monotone


class TestSampling:
    def test_sampled_adversary_still_covers_everyone(self):
        run = GreedyAdversary(CentralCounter, 12, sample_size=3, seed=1).run()
        assert sorted(run.order) == list(range(1, 13))
        assert run.result.values() == list(range(12))

    def test_sampled_bound_still_holds(self):
        run = GreedyAdversary(TreeCounter, 8, sample_size=2, seed=0).run()
        assert run.bottleneck_load >= message_load_bound(8)

    def test_sampling_is_seeded(self):
        order_a = GreedyAdversary(CentralCounter, 10, sample_size=3, seed=5).run().order
        order_b = GreedyAdversary(CentralCounter, 10, sample_size=3, seed=5).run().order
        assert order_a == order_b
