"""The sweep runner: parallel == serial, and the cache is transparent."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.workloads import SweepOutcome, SweepPoint, SweepRunner, execute_point

E7_GRID = [
    SweepPoint(counter=counter, n=n)
    for counter in ("central", "static-tree", "ww-tree")
    for n in (8, 27)
]


class TestSweepPoint:
    def test_hash_is_stable_and_distinct(self):
        a = SweepPoint(counter="central", n=8)
        b = SweepPoint(counter="central", n=8)
        c = SweepPoint(counter="central", n=16)
        assert a.config_hash() == b.config_hash()
        assert a.config_hash() != c.config_hash()

    def test_unknown_counter_rejected(self):
        with pytest.raises(ConfigurationError):
            execute_point(SweepPoint(counter="nonesuch", n=8))

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigurationError):
            execute_point(SweepPoint(counter="central", n=8, workload="storm"))

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            execute_point(SweepPoint(counter="central", n=8, policy="warp"))

    def test_unknown_transport_rejected(self):
        with pytest.raises(ConfigurationError):
            execute_point(SweepPoint(counter="central", n=8, transport="udp"))

    @pytest.mark.faults
    def test_equivalent_fault_spellings_share_a_hash(self):
        a = SweepPoint(counter="central", n=8, faults="dup=0.01,drop=0.05")
        b = SweepPoint(counter="central", n=8, faults="drop=0.05, dup=0.01")
        c = SweepPoint(counter="central", n=8, faults="drop=0.1")
        assert a.config_hash() == b.config_hash()
        assert a.config_hash() != c.config_hash()
        assert a.config_hash() != SweepPoint(counter="central", n=8).config_hash()

    @pytest.mark.faults
    def test_faulty_point_reports_transport_extras(self):
        point = SweepPoint(
            counter="central",
            n=8,
            policy="random",
            faults="drop=0.1",
            transport="reliable",
        )
        outcome = execute_point(point)
        assert outcome.extras["transport"]["delivered"] > 0
        assert sum(outcome.extras["fault_counts"].values()) >= 0
        assert outcome.operations == 8


class TestSerialVsParallel:
    def test_e7_grid_identical(self):
        serial = SweepRunner(workers=1).run(E7_GRID)
        parallel = SweepRunner(workers=3).run(E7_GRID)
        assert serial == parallel

    def test_results_in_input_order(self):
        outcomes = SweepRunner(workers=2).run(E7_GRID)
        assert [o.point for o in outcomes] == E7_GRID

    def test_workers_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SweepRunner(workers=0)


class TestSerialFallback:
    def _spy_fan_out(self, monkeypatch):
        import repro.workloads.sweep as sweep_module

        calls = []
        original = sweep_module.fan_out

        def spy(fn, items, workers):
            calls.append(workers)
            return original(fn, items, workers)

        monkeypatch.setattr(sweep_module, "fan_out", spy)
        return calls

    def test_small_grid_runs_serially(self, monkeypatch):
        calls = self._spy_fan_out(monkeypatch)
        grid = E7_GRID[:3]  # below the default threshold of 8
        SweepRunner(workers=4).run(grid)
        assert calls == [1]

    def test_large_grid_keeps_requested_workers(self, monkeypatch):
        calls = self._spy_fan_out(monkeypatch)
        grid = [
            SweepPoint(counter="central", n=n) for n in (8, 9, 10, 11, 12, 13, 14, 15)
        ]
        SweepRunner(workers=4).run(grid)
        assert calls == [4]

    def test_threshold_zero_never_falls_back(self, monkeypatch):
        calls = self._spy_fan_out(monkeypatch)
        SweepRunner(workers=2, serial_threshold=0).run(E7_GRID[:1])
        assert calls == [2]

    def test_threshold_counts_uncached_points_only(self, tmp_path, monkeypatch):
        grid = [SweepPoint(counter="central", n=n) for n in range(8, 17)]
        SweepRunner(cache_dir=tmp_path).run(grid[:6])
        calls = self._spy_fan_out(monkeypatch)
        # 9 requested, 6 already cached: only 3 need computing → serial.
        SweepRunner(workers=4, cache_dir=tmp_path, serial_threshold=5).run(grid)
        assert calls == [1]

    def test_negative_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepRunner(serial_threshold=-1)

    def test_fallback_results_match_parallel(self):
        grid = E7_GRID[:4]
        fallback = SweepRunner(workers=3).run(grid)  # 4 < 8 → serial
        forced = SweepRunner(workers=3, serial_threshold=0).run(grid)
        assert fallback == forced


class TestOutcome:
    def test_central_counter_measurements(self):
        outcome = execute_point(SweepPoint(counter="central", n=8))
        # Sequential central counter: 2 messages per op, server load 2(n-1).
        assert outcome.operations == 8
        assert outcome.total_messages == 14
        assert outcome.bottleneck_load == 14
        assert outcome.messages_per_op == pytest.approx(14 / 8)

    def test_tree_extras_present(self):
        outcome = execute_point(SweepPoint(counter="ww-tree", n=8))
        assert set(outcome.extras) == {"retirements", "root_ids_used", "forwarded"}

    def test_json_round_trip(self):
        outcome = execute_point(SweepPoint(counter="central", n=8))
        restored = SweepOutcome.from_json(
            json.loads(json.dumps(outcome.to_json()))
        )
        assert restored == outcome
        assert all(isinstance(pid, int) for pid in restored.loads)

    def test_seeded_workload_changes_order_not_load_totals(self):
        base = execute_point(SweepPoint(counter="central", n=8))
        shuf = execute_point(
            SweepPoint(counter="central", n=8, workload="shuffled", seed=3)
        )
        assert base.total_messages == shuf.total_messages


class TestCache:
    def test_cache_hit_avoids_recompute(self, tmp_path, monkeypatch):
        runner = SweepRunner(cache_dir=tmp_path)
        first = runner.run(E7_GRID)
        assert len(list(tmp_path.glob("*.json"))) == len(E7_GRID)

        import repro.workloads.sweep as sweep_module

        def boom(point):
            raise AssertionError("cache miss on a cached point")

        monkeypatch.setattr(sweep_module, "execute_point", boom)
        second = SweepRunner(cache_dir=tmp_path).run(E7_GRID)
        assert second == first

    def test_corrupt_cache_entry_recomputed(self, tmp_path):
        runner = SweepRunner(cache_dir=tmp_path)
        point = SweepPoint(counter="central", n=8)
        (tmp_path / f"{point.config_hash()}.json").write_text("{not json")
        outcome = runner.run([point])[0]
        assert outcome.bottleneck_load == 14

    def test_cache_respects_trace_level_in_key(self, tmp_path):
        runner = SweepRunner(cache_dir=tmp_path)
        runner.run([SweepPoint(counter="central", n=8)])
        runner.run([SweepPoint(counter="central", n=8, trace_level="full")])
        assert len(list(tmp_path.glob("*.json"))) == 2
