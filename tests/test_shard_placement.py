"""Property tests for consistent-hash placement (`repro.shard.placement`).

Pins the two contracts the sharded keyspace builds on — determinism
(placement is a pure function of the topology operations applied) and
bounded key movement (a split moves only the split shard's upper-half
keys, a merge only the absorbed shard's keys) — plus uniform spread at
a 10k-key population and the partition invariants under arbitrary
split/merge histories.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.shard import HASH_SPACE, ShardRouter, hash_key

pytestmark = pytest.mark.shard

KEYS = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789_.:-",
    min_size=1,
    max_size=24,
)


def assert_partition(router: ShardRouter) -> None:
    """The ranges must tile [0, HASH_SPACE) exactly, in order."""
    ranges = router.ranges()
    assert ranges[0].start == 0
    assert ranges[-1].stop == HASH_SPACE
    for left, right in zip(ranges, ranges[1:]):
        assert left.stop == right.start
    assert len({r.shard_id for r in ranges}) == len(ranges)


class TestHashKey:
    def test_deterministic_and_pinned(self):
        # SHA-256 based: identical across processes and interpreters.
        assert hash_key("k00") == hash_key("k00")
        assert hash_key("k00") == 0xB74F89FABB88284C
        assert hash_key("") == 0xE3B0C44298FC1C14

    @given(KEYS)
    def test_in_space(self, key):
        assert 0 <= hash_key(key) < HASH_SPACE


class TestDeterminism:
    @given(st.lists(KEYS, min_size=1, max_size=50), st.integers(1, 9))
    def test_same_topology_same_placement(self, keys, shards):
        one, two = ShardRouter(shards), ShardRouter(shards)
        assert [one.locate(k) for k in keys] == [two.locate(k) for k in keys]

    @given(st.lists(KEYS, min_size=1, max_size=30), st.integers(1, 6))
    def test_placement_ignores_query_order(self, keys, shards):
        router = ShardRouter(shards)
        forward = {k: router.locate(k) for k in keys}
        backward = {k: router.locate(k) for k in reversed(keys)}
        assert forward == backward

    @given(st.integers(1, 12))
    def test_initial_ranges_tile_the_space(self, shards):
        router = ShardRouter(shards)
        assert_partition(router)
        widths = [r.width for r in router.ranges()]
        assert max(widths) - min(widths) <= 1

    def test_replayed_history_reproduces_placement(self):
        keys = [f"user{i}" for i in range(200)]

        def run_history():
            router = ShardRouter(4)
            router.split(2)
            router.split(0)
            survivor = router.shard_ids()[0]
            absorbed = router.shard_ids()[1]
            router.merge(survivor, absorbed)
            return {k: router.locate(k) for k in keys}

        assert run_history() == run_history()


class TestBoundedMovement:
    @given(st.lists(KEYS, min_size=1, max_size=80, unique=True),
           st.integers(1, 6), st.integers(0, 5))
    @settings(max_examples=60)
    def test_split_moves_only_upper_half_of_split_shard(
        self, keys, shards, which
    ):
        router = ShardRouter(shards)
        target = router.shard_ids()[which % router.shard_count]
        before = {k: router.locate(k) for k in keys}
        new_range = router.split(target)
        after = {k: router.locate(k) for k in keys}
        moved = {k for k in keys if before[k] != after[k]}
        for key in moved:
            assert before[key] == target
            assert after[key] == new_range.shard_id
            assert hash_key(key) in new_range
        # every key of the split shard hashing into the upper half
        # moved — no stragglers either
        for key in keys:
            if before[key] == target and hash_key(key) in new_range:
                assert key in moved
        assert_partition(router)

    @given(st.lists(KEYS, min_size=1, max_size=80, unique=True),
           st.integers(2, 6), st.integers(0, 5))
    @settings(max_examples=60)
    def test_merge_moves_only_absorbed_shard(self, keys, shards, which):
        router = ShardRouter(shards)
        ids = router.shard_ids()
        survivor = ids[which % (len(ids) - 1)]
        absorbed = ids[which % (len(ids) - 1) + 1]
        before = {k: router.locate(k) for k in keys}
        router.merge(survivor, absorbed)
        after = {k: router.locate(k) for k in keys}
        for key in keys:
            if before[key] == absorbed:
                assert after[key] == survivor
            else:
                assert after[key] == before[key]
        assert_partition(router)

    def test_split_then_merge_is_identity_for_placement(self):
        keys = [f"k{i:03d}" for i in range(300)]
        router = ShardRouter(3)
        before = {k: router.locate(k) for k in keys}
        new_range = router.split(1)
        router.merge(1, new_range.shard_id)
        assert {k: router.locate(k) for k in keys} == before


class TestSpread:
    def test_uniform_spread_at_10k_keys(self):
        # 10k SHA-256-hashed keys over 4 equal ranges: each shard's
        # share must be near 1/4 (binomial sd ~0.4%, bound is >10 sd).
        router = ShardRouter(4)
        keys = [f"key-{i}" for i in range(10_000)]
        spread = router.spread(keys)
        assert sum(spread.values()) == len(keys)
        for count in spread.values():
            assert 0.20 * len(keys) <= count <= 0.30 * len(keys), spread

    def test_spread_reports_empty_shards(self):
        router = ShardRouter(8)
        spread = router.spread(["solo"])
        assert sum(spread.values()) == 1
        assert set(spread) == set(router.shard_ids())


class TestMisuse:
    def test_bad_initial_count(self):
        with pytest.raises(ConfigurationError):
            ShardRouter(0)

    def test_unknown_shard_everywhere(self):
        router = ShardRouter(2)
        for call in (
            lambda: router.range_of(99),
            lambda: router.split(99),
            lambda: router.merge(0, 99),
            lambda: router.neighbors(99),
        ):
            with pytest.raises(ConfigurationError):
                call()

    def test_merge_requires_adjacency(self):
        router = ShardRouter(4)
        with pytest.raises(ConfigurationError, match="not adjacent"):
            router.merge(0, 2)
        with pytest.raises(ConfigurationError, match="itself"):
            router.merge(1, 1)

    def test_point_outside_space_rejected(self):
        router = ShardRouter(2)
        with pytest.raises(ConfigurationError):
            router.locate_point(HASH_SPACE)
        with pytest.raises(ConfigurationError):
            router.locate_point(-1)
