"""Unit tests for the diffracting tree counter."""

from __future__ import annotations

import pytest

from repro.counters import DiffractingTreeCounter
from repro.errors import ConfigurationError
from repro.sim.network import Network
from repro.sim.policies import RandomDelay
from repro.workloads import one_shot, run_concurrent, run_sequence, shuffled


class TestCorrectness:
    @pytest.mark.parametrize("n", [2, 8, 20, 64])
    def test_sequential_values(self, n):
        network = Network()
        counter = DiffractingTreeCounter(network, n)
        result = run_sequence(counter, one_shot(n))
        assert result.values() == list(range(n))

    def test_shuffled_order(self):
        network = Network()
        counter = DiffractingTreeCounter(network, 16)
        result = run_sequence(counter, shuffled(16, seed=8))
        assert result.values() == list(range(16))

    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_depths(self, depth):
        network = Network()
        counter = DiffractingTreeCounter(network, 16, depth=depth)
        result = run_sequence(counter, one_shot(16))
        assert result.values() == list(range(16))
        assert counter.leaf_count == 2**depth

    def test_concurrent_unique_values(self):
        network = Network()
        counter = DiffractingTreeCounter(network, 32, depth=3)
        result = run_concurrent(counter, [one_shot(32)])
        assert sorted(result.values()) == list(range(32))

    def test_concurrent_under_random_delays(self):
        network = Network(policy=RandomDelay(seed=6, low=0.5, high=2.0))
        counter = DiffractingTreeCounter(network, 24, depth=2)
        result = run_concurrent(counter, [one_shot(24), one_shot(24)])
        assert sorted(result.values()) == list(range(48))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            DiffractingTreeCounter(Network(), 8, depth=0)
        with pytest.raises(ConfigurationError):
            DiffractingTreeCounter(Network(), 8, prism_size=0)

    def test_seeded_slot_choice_reproducible(self):
        def run(seed):
            network = Network()
            counter = DiffractingTreeCounter(network, 16, seed=seed)
            run_sequence(counter, one_shot(16))
            return network.trace.loads()

        assert run(3) == run(3)


class TestExitNumbering:
    def test_exit_rank_is_bit_reversal(self):
        counter = DiffractingTreeCounter(Network(), 16, depth=3)
        # depth 3: leaf b2b1b0 -> rank b0b1b2.
        assert counter.exit_rank(0) == 0
        assert counter.exit_rank(1) == 4
        assert counter.exit_rank(2) == 2
        assert counter.exit_rank(3) == 6
        assert counter.exit_rank(4) == 1

    def test_exit_ranks_are_a_permutation(self):
        counter = DiffractingTreeCounter(Network(), 16, depth=4)
        ranks = [counter.exit_rank(leaf) for leaf in range(16)]
        assert sorted(ranks) == list(range(16))


class TestDiffractionBehaviour:
    def test_sequential_tokens_all_hit_the_root_toggle(self):
        network = Network()
        counter = DiffractingTreeCounter(network, 32, depth=2, seed=0)
        run_sequence(counter, one_shot(32))
        toggle_messages = [
            r for r in network.trace.records if r.kind == "dt-toggle"
        ]
        root_toggles = [r for r in toggle_messages if True]
        # Every token falls through every toggle on its path when alone.
        assert len([r for r in toggle_messages]) >= 32

    def test_concurrency_diffARCTS_and_unloads_the_root_toggle(self):
        n = 64
        seq_network = Network()
        seq = DiffractingTreeCounter(seq_network, n, depth=3, seed=1)
        seq_result = run_sequence(seq, one_shot(n))
        conc_network = Network()
        conc = DiffractingTreeCounter(conc_network, n, depth=3, seed=1)
        conc_result = run_concurrent(conc, [one_shot(n)])
        assert conc_result.bottleneck_load() < seq_result.bottleneck_load()

    def test_concurrent_runs_do_diffract(self):
        network = Network()
        counter = DiffractingTreeCounter(network, 64, depth=3, seed=2)
        run_concurrent(counter, [one_shot(64)])
        toggles = sum(1 for r in network.trace.records if r.kind == "dt-toggle")
        # With 64 concurrent tokens many pair up: far fewer toggle visits
        # than the sequential 64·(per-path toggles).
        assert toggles < 64 * 3

    def test_exit_counts_sum_to_operations(self):
        network = Network()
        counter = DiffractingTreeCounter(network, 32, depth=2)
        run_concurrent(counter, [one_shot(32)])
        assert sum(counter.exit_counts) == 32
