"""Tests for message-size accounting (the O(log n)-bit claim)."""

from __future__ import annotations

import math

import pytest

from repro.analysis.bits import BitLoadAnalyzer, value_bits
from repro.core import TreeCounter
from repro.counters import CentralCounter
from repro.sim.network import Network
from repro.workloads import one_shot, run_sequence


class TestValueBits:
    def test_small_ints(self):
        assert value_bits(0) == 2  # 1 magnitude + 1 sign
        assert value_bits(1) == 2
        assert value_bits(255) == 9

    def test_int_grows_logarithmically(self):
        assert value_bits(2**40) == 42

    def test_negative_int(self):
        assert value_bits(-5) == value_bits(5)

    def test_bool_and_none(self):
        assert value_bits(True) == 1
        assert value_bits(None) == 1

    def test_float(self):
        assert value_bits(1.5) == 64

    def test_string_utf8(self):
        assert value_bits("inc") == 24

    def test_containers_sum(self):
        assert value_bits([1, 2]) == value_bits(1) + value_bits(2) + 4
        assert value_bits({"a": 1}) == value_bits("a") + value_bits(1) + 2

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            value_bits(object())


class TestBitLoadAnalyzer:
    def _analyze(self, factory, n):
        network = Network()
        analyzer = BitLoadAnalyzer(n)
        analyzer.attach(network)
        counter = factory(network, n)
        result = run_sequence(counter, one_shot(n))
        return analyzer, result

    def test_observes_every_message(self):
        analyzer, result = self._analyze(CentralCounter, 16)
        assert analyzer.message_count == result.total_messages

    def test_bit_bottleneck_matches_message_bottleneck_for_central(self):
        analyzer, result = self._analyze(CentralCounter, 16)
        assert analyzer.bit_bottleneck()[0] == result.bottleneck_processor()

    def test_tree_messages_are_logarithmic(self):
        """The paper's claim: every tree message is O(log n) bits."""
        for n in (81, 1024):
            analyzer, _ = self._analyze(TreeCounter, n)
            # Generous constant: kind tag + addressing + a few ids.
            assert analyzer.max_message_bits <= 60 * math.log2(n)

    def test_max_message_size_grows_sublinearly(self):
        small, _ = self._analyze(TreeCounter, 81)
        large, _ = self._analyze(TreeCounter, 1024)
        # n grew 12.6x; message size must grow far slower.
        assert large.max_message_bits <= 2 * small.max_message_bits

    def test_mean_message_bits_positive(self):
        analyzer, _ = self._analyze(CentralCounter, 8)
        assert analyzer.mean_message_bits() > 0

    def test_empty_analyzer(self):
        analyzer = BitLoadAnalyzer(8)
        assert analyzer.bit_bottleneck() == (0, 0)
        assert analyzer.mean_message_bits() == 0.0
