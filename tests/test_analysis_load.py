"""Unit tests for load profiles."""

from __future__ import annotations

import pytest

from repro.analysis import LoadProfile
from repro.sim.messages import MessageRecord
from repro.sim.trace import Trace


def _trace(edges):
    trace = Trace()
    for uid, (sender, receiver) in enumerate(edges):
        trace.record(
            MessageRecord(
                sender=sender, receiver=receiver, kind="m", op_index=0,
                uid=uid, send_time=0.0, deliver_time=1.0,
            )
        )
    return trace


class TestHeadlineNumbers:
    def test_bottleneck_and_processor(self):
        profile = LoadProfile.from_trace(_trace([(1, 9), (2, 9), (3, 9)]))
        assert profile.bottleneck_load == 3
        assert profile.bottleneck_processor == 9

    def test_total_load_is_twice_messages(self):
        profile = LoadProfile.from_trace(_trace([(1, 2), (3, 4), (1, 4)]))
        assert profile.total_load == 6

    def test_mean_uses_population(self):
        profile = LoadProfile.from_trace(_trace([(1, 2)]), population=10)
        assert profile.mean_load == pytest.approx(0.2)

    def test_population_never_below_observed(self):
        profile = LoadProfile.from_trace(_trace([(1, 2), (3, 4)]), population=1)
        assert profile.population == 4

    def test_concentration_even_distribution(self):
        profile = LoadProfile.from_trace(_trace([(1, 2), (3, 4)]), population=4)
        assert profile.concentration == pytest.approx(1.0)

    def test_concentration_hotspot(self):
        profile = LoadProfile.from_trace(
            _trace([(1, 9), (2, 9), (3, 9), (4, 9)]), population=5
        )
        # Bottleneck 4, mean 8/5.
        assert profile.concentration == pytest.approx(4 / 1.6)

    def test_empty_profile(self):
        profile = LoadProfile.from_trace(Trace())
        assert profile.bottleneck_load == 0
        assert profile.bottleneck_processor == 0
        assert profile.gini() == 0.0
        assert profile.concentration == 0.0


class TestDistributionShape:
    def test_gini_zero_for_even_loads(self):
        profile = LoadProfile.from_trace(_trace([(1, 2), (3, 4)]), population=4)
        assert profile.gini() == pytest.approx(0.0, abs=1e-9)

    def test_gini_grows_with_concentration(self):
        even = LoadProfile.from_trace(_trace([(1, 2), (3, 4)]), population=4)
        skewed = LoadProfile.from_trace(
            _trace([(1, 9), (2, 9), (3, 9), (4, 9)]), population=9
        )
        assert skewed.gini() > even.gini()

    def test_gini_bounded(self):
        profile = LoadProfile.from_trace(
            _trace([(1, 9)] * 50), population=100
        )
        assert 0.0 <= profile.gini() <= 1.0

    def test_percentile_extremes(self):
        profile = LoadProfile.from_trace(
            _trace([(1, 9), (2, 9), (3, 9)]), population=9
        )
        assert profile.percentile(1.0) == 3
        assert profile.percentile(0.0) == 0

    def test_percentile_validates_input(self):
        profile = LoadProfile.from_trace(_trace([(1, 2)]))
        with pytest.raises(ValueError):
            profile.percentile(1.5)

    def test_top_ranks_by_load_then_pid(self):
        profile = LoadProfile.from_trace(_trace([(1, 9), (2, 9), (1, 3)]))
        # Loads: pid1=2, pid9=2, pid2=1, pid3=1; ties break to smaller pid.
        assert profile.top(2) == [(1, 2), (9, 2)]
        assert profile.top(4) == [(1, 2), (9, 2), (2, 1), (3, 1)]

    def test_histogram_counts_population(self):
        profile = LoadProfile.from_trace(
            _trace([(1, 9), (2, 9), (3, 9)]), population=10
        )
        bins = profile.histogram(bins=4)
        assert sum(count for _, _, count in bins) == 10

    def test_histogram_of_empty_profile(self):
        profile = LoadProfile.from_trace(Trace(), population=3)
        assert profile.histogram() == [(0, 0, 3)]

    def test_histogram_validates_bins(self):
        profile = LoadProfile.from_trace(_trace([(1, 2)]))
        with pytest.raises(ValueError):
            profile.histogram(bins=0)

    def test_describe_mentions_key_stats(self):
        profile = LoadProfile.from_trace(_trace([(1, 2)]), population=4)
        text = profile.describe()
        assert "bottleneck=1" in text
        assert "population=4" in text
