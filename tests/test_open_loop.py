"""Tests for open-loop driving: arrivals, the driver, knee detection.

Open-loop means arrivals are fixed before the run and injected on
schedule no matter how far behind the counter is — the regime where the
paper's bottleneck shows up as a latency knee rather than a polite
slowdown.
"""

from __future__ import annotations

import pytest

from repro.analysis.latency import detect_knee
from repro.counters import CentralCounter
from repro.errors import CapabilityError, ConfigurationError, ProtocolError
from repro.registry import RunSession
from repro.sim.network import Network
from repro.workloads import (
    ARRIVAL_PROCESSES,
    OpenLoopResult,
    arrival_times,
    bursty_arrivals,
    poisson_arrivals,
    run_open_loop,
)


class TestArrivalProcesses:
    def test_poisson_basic_shape(self):
        offsets = poisson_arrivals(200, rate=5.0, seed=1)
        assert len(offsets) == 200
        assert offsets == sorted(offsets)
        assert offsets[0] >= 0.0
        # mean inter-arrival ~ 1/rate: the 200th arrival lands near 40
        assert 20.0 < offsets[-1] < 80.0

    def test_poisson_deterministic_per_seed(self):
        assert poisson_arrivals(50, 2.0, seed=7) == poisson_arrivals(
            50, 2.0, seed=7
        )
        assert poisson_arrivals(50, 2.0, seed=7) != poisson_arrivals(
            50, 2.0, seed=8
        )

    def test_bursty_same_mean_heavier_tail(self):
        rate = 4.0
        poisson = poisson_arrivals(4000, rate, seed=3)
        bursty = bursty_arrivals(4000, rate, seed=3)
        poisson_mean = poisson[-1] / len(poisson)
        bursty_mean = bursty[-1] / len(bursty)
        # Pareto inter-arrivals are scaled to the same mean rate...
        assert bursty_mean == pytest.approx(poisson_mean, rel=0.35)
        # ...but the largest single gap is burstier than exponential's
        gaps = lambda xs: [b - a for a, b in zip(xs, xs[1:])]  # noqa: E731
        assert max(gaps(bursty)) > max(gaps(poisson))

    def test_dispatcher_covers_registered_processes(self):
        assert set(ARRIVAL_PROCESSES) == {"poisson", "bursty"}
        for process in ARRIVAL_PROCESSES:
            offsets = arrival_times(process, 10, 2.0, seed=1)
            assert len(offsets) == 10
        with pytest.raises(ConfigurationError, match="arrival process"):
            arrival_times("uniform", 10, 2.0)

    @pytest.mark.parametrize("bad", [0, -3])
    def test_ops_must_be_positive(self, bad):
        with pytest.raises(ConfigurationError):
            poisson_arrivals(bad, 1.0)

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_rate_must_be_positive(self, bad):
        with pytest.raises(ConfigurationError):
            bursty_arrivals(10, bad)


class TestKneeDetection:
    def test_finds_first_rate_past_threshold(self):
        rates = [1.0, 2.0, 4.0, 8.0]
        latencies = [2.0, 2.2, 7.0, 40.0]
        assert detect_knee(rates, latencies) == 4.0

    def test_none_when_flat(self):
        assert detect_knee([1.0, 2.0, 4.0], [2.0, 2.1, 2.3]) is None

    def test_zero_baseline_uses_first_nonzero(self):
        assert detect_knee([1.0, 2.0, 4.0], [0.0, 0.0, 3.0]) == 4.0

    def test_validation(self):
        with pytest.raises(ValueError):
            detect_knee([1.0, 2.0], [1.0])
        with pytest.raises(ValueError):
            detect_knee([2.0, 1.0], [1.0, 1.0])
        with pytest.raises(ValueError):
            detect_knee([1.0, 2.0], [1.0, 1.0], threshold=1.0)


class TestOpenLoopDriver:
    def test_values_are_a_permutation(self):
        network = Network()
        counter = CentralCounter(network, 8)
        result = run_open_loop(counter, poisson_arrivals(24, 2.0, seed=1))
        assert isinstance(result, OpenLoopResult)
        assert sorted(result.values()) == list(range(24))
        assert result.operation_count == 24

    def test_latency_includes_queueing(self):
        network = Network()
        counter = CentralCounter(network, 2)
        # 8 simultaneous arrivals onto 2 clients: later ops queue
        result = run_open_loop(counter, [0.0] * 8)
        waits = [o.queueing_delay for o in result.outcomes]
        assert min(waits) == 0.0
        assert max(waits) > 0.0
        for outcome in result.outcomes:
            assert outcome.latency == pytest.approx(
                outcome.queueing_delay + outcome.service_time
            )

    def test_turnaround_zero_allows_immediate_reuse(self):
        network = Network()
        counter = CentralCounter(network, 2)
        result = run_open_loop(counter, [0.0] * 6, turnaround=0.0)
        assert sorted(result.values()) == list(range(6))

    def test_turnaround_must_be_nonnegative(self):
        counter = CentralCounter(Network(), 2)
        with pytest.raises(ValueError, match="turnaround"):
            run_open_loop(counter, [0.0], turnaround=-1.0)

    def test_arrivals_must_be_ascending(self):
        counter = CentralCounter(Network(), 2)
        with pytest.raises(ValueError, match="ascending"):
            run_open_loop(counter, [1.0, 0.5])

    def test_result_hook_restored_after_run(self):
        network = Network()
        counter = CentralCounter(network, 4)
        run_open_loop(counter, poisson_arrivals(8, 2.0, seed=2))
        assert "deliver_result" not in counter.__dict__

    def test_percentiles_and_throughput(self):
        network = Network()
        counter = CentralCounter(network, 8)
        result = run_open_loop(counter, poisson_arrivals(40, 4.0, seed=5))
        lats = sorted(result.latencies())
        assert result.latency_percentile(0.0) == lats[0]
        assert result.latency_percentile(1.0) == lats[-1]
        assert lats[0] <= result.latency_percentile(0.5) <= lats[-1]
        assert result.throughput > 0.0
        assert result.mean_latency == pytest.approx(
            sum(lats) / len(lats)
        )

    def test_sequential_only_counter_rejected(self):
        session = RunSession("arrow", 8)
        with pytest.raises(CapabilityError):
            run_open_loop(session.counter, [0.0, 1.0])

    def test_strict_ww_tree_interval_exhaustion_is_loud(self):
        """Strict mode enforces one-shot ids; repeated load must say so."""
        session = RunSession("ww-tree", 8)
        with pytest.raises(ProtocolError, match="IntervalMode.WRAP"):
            session.run_open_loop(ops=64, rate=8.0)


class TestSessionOpenLoop:
    def test_defaults_to_two_ops_per_client(self):
        session = RunSession("central", 8)
        result = session.run_open_loop(rate=2.0)
        assert result.operation_count == 16
        assert sorted(result.values()) == list(range(16))
        assert result.counter_name == "central"
        assert result.n == 8

    def test_bursty_process_supported(self):
        session = RunSession("central", 8)
        result = session.run_open_loop(ops=12, rate=2.0, process="bursty")
        assert sorted(result.values()) == list(range(12))

    def test_wrap_mode_ww_tree_sustains_repeated_load(self):
        session = RunSession("ww-tree?interval_mode=wrap", 27)
        result = session.run_open_loop(ops=108, rate=10.0)
        assert sorted(result.values()) == list(range(108))

    def test_asyncio_runtime_produces_identical_outcomes(self):
        sim = RunSession("central", 8)
        aio = RunSession("central", 8, runtime="asyncio")
        sim_result = sim.run_open_loop(ops=24, rate=3.0)
        aio_result = aio.run_open_loop(ops=24, rate=3.0)
        assert [
            (o.op_index, o.initiator, o.value, o.completion_time)
            for o in sim_result.outcomes
        ] == [
            (o.op_index, o.initiator, o.value, o.completion_time)
            for o in aio_result.outcomes
        ]
        assert (
            sim.network.trace.fingerprint()
            == aio.network.trace.fingerprint()
        )

    def test_saturation_raises_latency(self):
        """Offered load far past capacity must show up in mean latency."""
        low = RunSession("central", 8).run_open_loop(ops=40, rate=0.5)
        high = RunSession("central", 8).run_open_loop(ops=40, rate=50.0)
        assert high.mean_latency > 3.0 * low.mean_latency

    def test_knee_detected_across_a_sweep(self):
        rates = [0.5, 1.0, 2.0, 4.0, 8.0, 16.0]
        means = []
        for rate in rates:
            session = RunSession("central", 8)
            means.append(
                session.run_open_loop(ops=48, rate=rate).mean_latency
            )
        knee = detect_knee(rates, means)
        assert knee is not None
        # capacity ~ n / (service + turnaround) = 8/3: knee lands past it
        assert knee >= 2.0
