"""Mutation tests: break one protocol mechanism, watch the right thing fail.

Each mutant disables exactly one piece of the tree counter's machinery.
The suite asserts the precise consequence — either another mechanism
compensates (and we measure its extra cost) or the failure is loud.
This pins down *why* each mechanism exists, not just that the whole
works.
"""

from __future__ import annotations

import pytest

from repro.core import TreeCounter
from repro.core.tree.protocol import KIND_ID_UPDATE, node_key
from repro.core.tree.worker import TreeWorker
from repro.errors import ProtocolError, ReproError, SimulationLimitError
from repro.sim.network import Network
from repro.workloads import one_shot, run_sequence


class _NoChildUpdatesWorker(TreeWorker):
    """Mutant: a retiring worker never tells its children where it went."""

    def send(self, receiver, kind, payload=None):
        payload = payload or {}
        if kind == KIND_ID_UPDATE:
            target_role = payload.get("role", ())
            changed = payload.get("node", ())
            # Drop updates flowing DOWN (to children): the changed node
            # is the target's parent.
            if tuple(changed) != tuple(target_role) and not self._is_parent_update(
                payload
            ):
                return  # swallowed
        super().send(receiver, kind, payload)

    def _is_parent_update(self, payload) -> bool:
        # An update TO the parent names the child as changed; the parent
        # stores it among children_workers.  Updates to children name
        # the parent as changed.  We detect direction via the registry.
        changed = tuple(payload["node"])
        target = tuple(payload["role"])
        if target[0] == "leaf":
            return False
        # target is a node; if the changed node is the target's child,
        # this is an upward (to-parent) update -> keep it.
        changed_level = changed[1]
        target_level = target[1]
        return changed_level > target_level


class _NoChildUpdatesCounter(TreeCounter):
    """Tree counter built from the child-update-dropping mutant."""

    name = "mutant-no-child-updates"

    def _build_workers(self):
        requirement = self.geometry.processor_requirement()
        for pid in range(1, requirement + 1):
            worker = _NoChildUpdatesWorker(pid, self)
            self.network.register(worker)
            self._workers[pid] = worker
        for role in self.registry.all_roles():
            self._workers[role.worker].adopt_role(role)
        for leaf_pid in range(1, self.geometry.leaf_count + 1):
            parent_role = self.registry.role(self.geometry.leaf_parent(leaf_pid))
            self._workers[leaf_pid].set_leaf_parent(parent_role.worker)


class TestChildUpdateMutant:
    def test_forwarding_pointers_compensate(self):
        """Without downward id-updates the counter STILL counts — every
        stale-addressed message rides the forwarding chain instead."""
        n = 81
        network = Network()
        counter = _NoChildUpdatesCounter(network, n)
        result = run_sequence(counter, one_shot(n))
        assert result.values() == list(range(n))

    def test_but_forwarding_traffic_explodes(self):
        n = 81
        mutant_network = Network()
        mutant = _NoChildUpdatesCounter(mutant_network, n)
        run_sequence(mutant, one_shot(n))
        healthy_network = Network()
        healthy = TreeCounter(healthy_network, n)
        run_sequence(healthy, one_shot(n))
        # The id-updates exist precisely to keep forwarding rare.
        assert mutant.total_forwarded() > 4 * healthy.total_forwarded()


class _NoForwardingWorker(TreeWorker):
    """Mutant: retired workers drop stale-addressed messages instead of
    forwarding them."""

    def on_message(self, message):
        role_key = (
            tuple(message.payload.get("role", ()))
            if message.kind != "value"
            else None
        )
        if (
            role_key
            and role_key in self._forward
            and role_key not in self._roles
        ):
            return  # drop: the handshake's forwarding is disabled
        super().on_message(message)


class _NoForwardingCounter(TreeCounter):
    """Tree counter built from the forwarding-dropping mutant."""

    name = "mutant-no-forwarding"

    def _build_workers(self):
        requirement = self.geometry.processor_requirement()
        for pid in range(1, requirement + 1):
            worker = _NoForwardingWorker(pid, self)
            self.network.register(worker)
            self._workers[pid] = worker
        for role in self.registry.all_roles():
            self._workers[role.worker].adopt_role(role)
        for leaf_pid in range(1, self.geometry.leaf_count + 1):
            parent_role = self.registry.role(self.geometry.leaf_parent(leaf_pid))
            self._workers[leaf_pid].set_leaf_parent(parent_role.worker)


class TestForwardingMutant:
    def test_dropped_messages_lose_operations_loudly(self):
        """Without forwarding, some message eventually dies at a retired
        worker and the damage is loud: a missing result or a wrong value
        (never a silent pass at full scale)."""
        n = 1024  # enough retirements that staleness is guaranteed
        network = Network()
        counter = _NoForwardingCounter(network, n)
        with pytest.raises(ReproError):
            run_sequence(counter, one_shot(n))


class TestMutantsAreMutants:
    def test_mutants_share_the_public_interface(self):
        for mutant_cls in (_NoChildUpdatesCounter, _NoForwardingCounter):
            network = Network()
            counter = mutant_cls(network, 8)
            assert isinstance(counter, TreeCounter)
            assert counter.k == 2
