"""Tests for the Hot Spot Lemma checker — positive and negative."""

from __future__ import annotations

import pytest

from repro.api import DistributedCounter
from repro.core import TreeCounter
from repro.counters import CentralCounter
from repro.errors import InvariantViolationError
from repro.lowerbound import check_hot_spot, effective_footprint
from repro.sim.messages import Message
from repro.sim.network import Network
from repro.sim.processor import Processor
from repro.workloads import one_shot, run_sequence, shuffled

from conftest import ALL_FACTORIES


class _GossiplessClient(Processor):
    """Client of the deliberately broken counter below."""

    def __init__(self, pid, counter):
        super().__init__(pid)
        self._counter = counter

    def request_inc(self) -> None:
        # Each processor keeps its own private count and tells nobody:
        # successive operations by different processors have disjoint
        # footprints (in fact empty ones) and return wrong values.
        value = self._counter.bump_local(self.pid)
        self._counter.deliver_result(self.pid, value)

    def on_message(self, message: Message) -> None:  # pragma: no cover
        raise AssertionError("the broken counter never communicates")


class BrokenLocalCounter(DistributedCounter):
    """A 'counter' that violates the Hot Spot Lemma (and correctness)."""

    name = "broken-local"

    def __init__(self, network: Network, n: int) -> None:
        super().__init__(network, n)
        self._locals: dict[int, int] = {}
        self._clients = {}
        for pid in self.client_ids():
            client = _GossiplessClient(pid, self)
            network.register(client)
            self._clients[pid] = client

    def bump_local(self, pid: int) -> int:
        value = self._locals.get(pid, 0)
        self._locals[pid] = value + 1
        return value

    def begin_inc(self, pid, op_index) -> None:
        self.network.inject(self._clients[pid].request_inc, op_index=op_index)


class TestLemmaHoldsOnRealCounters:
    @pytest.mark.parametrize("name", sorted(ALL_FACTORIES))
    def test_holds_on_one_shot(self, name):
        factory = ALL_FACTORIES[name]
        network = Network()
        counter = factory(network, 16)
        result = run_sequence(counter, one_shot(16))
        report = check_hot_spot(result)
        assert report.holds
        assert report.pairs_checked == 15
        assert report.min_intersection >= 1

    def test_holds_on_shuffled_tree_run(self):
        network = Network()
        counter = TreeCounter(network, 81)
        result = run_sequence(counter, shuffled(81, seed=4))
        assert check_hot_spot(result).holds


class TestLemmaCatchesBrokenCounter:
    def test_violations_reported(self):
        network = Network()
        counter = BrokenLocalCounter(network, 6)
        result = run_sequence(counter, one_shot(6), check_values=False)
        report = check_hot_spot(result)
        assert not report.holds
        assert report.min_intersection == 0
        assert len(report.violations) == 5

    def test_strict_mode_raises(self):
        network = Network()
        counter = BrokenLocalCounter(network, 4)
        result = run_sequence(counter, one_shot(4), check_values=False)
        with pytest.raises(InvariantViolationError, match="Hot Spot"):
            check_hot_spot(result, strict=True)

    def test_violation_str_names_the_ops(self):
        network = Network()
        counter = BrokenLocalCounter(network, 3)
        result = run_sequence(counter, one_shot(3), check_values=False)
        report = check_hot_spot(result)
        assert "ops 0 and 1" in str(report.violations[0])

    def test_broken_counter_also_returns_wrong_values(self):
        # The lemma's contrapositive: disjoint footprints => stale value.
        network = Network()
        counter = BrokenLocalCounter(network, 5)
        result = run_sequence(counter, one_shot(5), check_values=False)
        assert result.values() == [0, 0, 0, 0, 0]


class TestEffectiveFootprint:
    def test_includes_initiator_even_without_messages(self):
        network = Network()
        counter = CentralCounter(network, 4)  # server pid 1 incs locally
        result = run_sequence(counter, one_shot(4))
        footprint = effective_footprint(result, 0)
        assert footprint == frozenset({1})

    def test_includes_message_endpoints(self):
        network = Network()
        counter = CentralCounter(network, 4)
        result = run_sequence(counter, one_shot(4))
        footprint = effective_footprint(result, 2)  # pid 3's op
        assert footprint == frozenset({1, 3})

    def test_single_op_run_has_no_pairs(self):
        network = Network()
        counter = CentralCounter(network, 2)
        result = run_sequence(counter, [1])
        report = check_hot_spot(result)
        assert report.holds
        assert report.pairs_checked == 0
