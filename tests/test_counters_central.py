"""Unit tests for the central counter (the §1 strawman)."""

from __future__ import annotations

import pytest

from repro.counters import CentralCounter
from repro.errors import ConfigurationError
from repro.sim.network import Network
from repro.workloads import one_shot, run_concurrent, run_sequence, shuffled


class TestCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 10, 100])
    def test_sequential_values(self, n):
        network = Network()
        counter = CentralCounter(network, n)
        result = run_sequence(counter, one_shot(n))
        assert result.values() == list(range(n))

    def test_any_order(self):
        network = Network()
        counter = CentralCounter(network, 20)
        result = run_sequence(counter, shuffled(20, seed=5))
        assert result.values() == list(range(20))

    def test_concurrent_hands_out_unique_values(self):
        network = Network()
        counter = CentralCounter(network, 30)
        result = run_concurrent(counter, [one_shot(30)])
        assert sorted(result.values()) == list(range(30))

    def test_value_property_tracks_increments(self):
        network = Network()
        counter = CentralCounter(network, 5)
        run_sequence(counter, one_shot(5))
        assert counter.value == 5


class TestMessageEconomy:
    def test_two_messages_per_remote_inc(self):
        network = Network()
        counter = CentralCounter(network, 10)
        result = run_sequence(counter, one_shot(10))
        for outcome in result.outcomes:
            expected = 0 if outcome.initiator == counter.server_id else 2
            assert outcome.messages == expected

    def test_server_is_the_bottleneck(self):
        network = Network()
        counter = CentralCounter(network, 50)
        result = run_sequence(counter, one_shot(50))
        assert result.bottleneck_processor() == counter.server_id
        assert result.bottleneck_load() == 2 * 49

    def test_bottleneck_is_theta_n(self):
        loads = {}
        for n in (16, 64, 256):
            network = Network()
            counter = CentralCounter(network, n)
            result = run_sequence(counter, one_shot(n))
            loads[n] = result.bottleneck_load()
        assert loads[64] == pytest.approx(4 * loads[16], rel=0.1)
        assert loads[256] == pytest.approx(4 * loads[64], rel=0.05)

    def test_non_server_clients_have_constant_load(self):
        network = Network()
        counter = CentralCounter(network, 40)
        result = run_sequence(counter, one_shot(40))
        for pid in range(2, 41):
            assert result.trace.load(pid) == 2


class TestConfiguration:
    def test_custom_server_id(self):
        network = Network()
        counter = CentralCounter(network, 8, server_id=5)
        result = run_sequence(counter, one_shot(8))
        assert result.bottleneck_processor() == 5

    def test_invalid_server_rejected(self):
        with pytest.raises(ConfigurationError):
            CentralCounter(Network(), 8, server_id=9)

    def test_invalid_n_rejected(self):
        with pytest.raises(ConfigurationError):
            CentralCounter(Network(), 0)

    def test_non_client_cannot_inc(self):
        network = Network()
        counter = CentralCounter(network, 4)
        with pytest.raises(ConfigurationError):
            counter.begin_inc(5, 0)
