"""Tests for the runtime seam: one protocol, pluggable schedulers.

The contract under test: a :class:`~repro.runtime.Runtime` decides *how*
the network's pending events execute, never *what* they do — so every
registered counter spec must produce fingerprint-identical traces under
the discrete-event scheduler and the asyncio scheduler.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.registry import RunSession, registered_names
from repro.runtime import (
    RUNTIME_NAMES,
    AsyncioRuntime,
    Runtime,
    SimulatedRuntime,
    make_runtime,
)
from repro.sim.network import Network
from repro.sim.processor import InertProcessor

ALL_SPECS = registered_names()


def _n_for(spec: str) -> int:
    # quorum[maekawa] needs a perfect square.
    return 9 if spec == "quorum[maekawa]" else 8


def _loaded_network(messages: int = 10) -> Network:
    network = Network()
    network.register_all([InertProcessor(pid) for pid in range(1, 5)])
    for index in range(messages):
        network.send((index % 4) + 1, ((index + 1) % 4) + 1, "m", {})
    return network


class TestFactory:
    @pytest.mark.parametrize("name", RUNTIME_NAMES)
    def test_every_registered_name_resolves(self, name):
        runtime = make_runtime(name, Network())
        assert isinstance(runtime, Runtime)

    def test_sim_names_map_to_simulated(self):
        assert isinstance(make_runtime("sim", Network()), SimulatedRuntime)
        assert isinstance(
            make_runtime("sim-compat", Network()), SimulatedRuntime
        )

    def test_asyncio_name_maps_to_asyncio(self):
        runtime = make_runtime(
            "asyncio", Network(), time_scale=0.5, yield_every=7
        )
        assert isinstance(runtime, AsyncioRuntime)
        assert runtime.time_scale == 0.5
        assert runtime.yield_every == 7

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown runtime"):
            make_runtime("threads", Network())


class TestSimulatedRuntime:
    def test_until_quiescent_matches_network(self):
        runtime = SimulatedRuntime(_loaded_network())
        executed = runtime.until_quiescent()
        assert executed == 10
        assert runtime.network.events_executed == 10

    def test_step_executes_one_event(self):
        runtime = SimulatedRuntime(_loaded_network(3))
        assert runtime.step() is True
        assert runtime.network.events_executed == 1
        runtime.until_quiescent()
        assert runtime.step() is False

    def test_drain_is_awaitable_veneer(self):
        runtime = SimulatedRuntime(_loaded_network())
        assert asyncio.run(runtime.drain()) == 10

    def test_exposes_substrate(self):
        network = _loaded_network()
        runtime = SimulatedRuntime(network)
        assert runtime.network is network
        assert runtime.trace is network.trace
        assert runtime.now == network.now
        assert runtime.core == network.core
        assert not runtime.is_async


class TestAsyncioRuntime:
    def test_drain_executes_everything(self):
        runtime = AsyncioRuntime(_loaded_network())
        assert asyncio.run(runtime.drain()) == 10
        assert runtime.network.events_executed == 10

    def test_until_quiescent_blocks_outside_a_loop(self):
        runtime = AsyncioRuntime(_loaded_network())
        assert runtime.until_quiescent() == 10

    def test_until_quiescent_refuses_inside_a_loop(self):
        runtime = AsyncioRuntime(_loaded_network())

        async def go():
            runtime.until_quiescent()

        with pytest.raises(SimulationError, match="await drain"):
            asyncio.run(go())

    def test_step_works_without_a_loop(self):
        runtime = AsyncioRuntime(_loaded_network(2))
        assert runtime.step() is True
        assert runtime.network.events_executed == 1

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="time_scale"):
            AsyncioRuntime(Network(), time_scale=-0.1)
        with pytest.raises(ValueError, match="yield_every"):
            AsyncioRuntime(Network(), yield_every=0)

    def test_time_scale_sleeps_simulated_gaps(self, monkeypatch):
        """Every simulated-time gap becomes one scaled real sleep."""
        sleeps: list[float] = []
        real_sleep = asyncio.sleep

        async def recording_sleep(delay):
            sleeps.append(delay)
            await real_sleep(0)

        monkeypatch.setattr(
            "repro.runtime.asyncio.sleep", recording_sleep
        )
        network = Network()
        network.register_all([InertProcessor(pid) for pid in (1, 2)])
        network.send(1, 2, "a", {})  # delivered at t=1
        network.inject(lambda: None, delay=3.0)  # local action at t=3
        runtime = AsyncioRuntime(network, time_scale=0.5)
        assert asyncio.run(runtime.drain()) == 2
        # gap 0->1 scaled by 0.5, then gap 1->3 scaled by 0.5
        assert sleeps == [0.5, 1.0]

    def test_zero_scale_yields_every_n_events(self, monkeypatch):
        """With no time scale the loop still yields every yield_every."""
        yields = 0
        real_sleep = asyncio.sleep

        async def counting_sleep(delay):
            nonlocal yields
            assert delay == 0
            yields += 1
            await real_sleep(0)

        monkeypatch.setattr(
            "repro.runtime.asyncio.sleep", counting_sleep
        )
        runtime = AsyncioRuntime(_loaded_network(10), yield_every=3)
        assert asyncio.run(runtime.drain()) == 10
        assert yields == 10 // 3

    def test_drain_picks_up_midstream_injections(self):
        """Work injected while draining runs in the same pass."""
        network = Network()
        network.register_all([InertProcessor(pid) for pid in (1, 2)])

        def inject_more():
            network.send(1, 2, "late", {})

        network.inject(inject_more)
        runtime = AsyncioRuntime(network)
        # the injected action plus the message it sends
        assert asyncio.run(runtime.drain()) == 2


class TestRunSessionSelection:
    def test_default_runtime_is_sim(self):
        session = RunSession("central", 4)
        assert isinstance(session.runtime, SimulatedRuntime)
        assert session.runtime.core == "fast"

    def test_sim_compat_forces_compat_core(self):
        session = RunSession("central", 4, runtime="sim-compat")
        assert isinstance(session.runtime, SimulatedRuntime)
        assert session.network.core == "compat"

    def test_sim_compat_conflicts_with_fast_core(self):
        with pytest.raises(ConfigurationError, match="sim-compat"):
            RunSession("central", 4, runtime="sim-compat", core="fast")

    def test_unknown_runtime_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown runtime"):
            RunSession("central", 4, runtime="turbo")

    def test_asyncio_runtime_selected(self):
        session = RunSession("central", 4, runtime="asyncio", time_scale=0.0)
        assert isinstance(session.runtime, AsyncioRuntime)
        assert session.runtime.network is session.network


class TestEverySpecTraceIdenticalAcrossRuntimes:
    """The acceptance bar: same protocol, same accounting, any scheduler."""

    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_one_shot_sync_vs_asyncio(self, spec):
        n = _n_for(spec)
        sim = RunSession(spec, n, trace_level="FULL")
        sim_result = sim.run_sequence()
        aio = RunSession(spec, n, trace_level="FULL", runtime="asyncio")
        aio_result = aio.run_sequence()
        assert (
            sim.network.trace.fingerprint()
            == aio.network.trace.fingerprint()
        )
        assert sim.network.trace.records == aio.network.trace.records
        assert sim.network.trace.loads() == aio.network.trace.loads()
        assert sim_result.values() == aio_result.values()
        assert sim.network.now == aio.network.now

    @pytest.mark.parametrize(
        "spec", ("central", "combining-tree", "counting-network")
    )
    def test_concurrent_sync_vs_asyncio(self, spec):
        sim = RunSession(spec, 8, trace_level="FULL")
        sim_result = sim.run_concurrent()
        aio = RunSession(spec, 8, trace_level="FULL", runtime="asyncio")
        aio_result = aio.run_concurrent()
        assert (
            sim.network.trace.fingerprint()
            == aio.network.trace.fingerprint()
        )
        assert sorted(sim_result.values()) == sorted(aio_result.values())

    def test_random_policy_sync_vs_asyncio(self):
        sim = RunSession("ww-tree", 27, policy="random", seed=11)
        sim.run_sequence()
        aio = RunSession(
            "ww-tree", 27, policy="random", seed=11, runtime="asyncio"
        )
        aio.run_sequence()
        assert (
            sim.network.trace.fingerprint()
            == aio.network.trace.fingerprint()
        )
