"""Crash recovery: checkpoints, failover, and the recoverable counters.

Covers the RecoveryManager lifecycle (checkpoint store, recovery-point
scheduling, failover-latency measurement), the two crash-tolerant
counter variants — ``central[standby]`` and ``combining-tree[bypass]``
— under primary/host crashes, and the RunSession capability gate and
auto-assembly.
"""

from __future__ import annotations

import pytest

from repro.analysis.linearizability import check_linearizable_counting
from repro.errors import CapabilityError, ConfigurationError
from repro.registry import RunSession, parse_spec
from repro.sim.faults import CrashRule, FaultPlan, parse_fault_spec
from repro.sim.network import Network
from repro.sim.processor import InertProcessor
from repro.sim.recovery import Recoverable, RecoveryManager

pytestmark = pytest.mark.recovery


class _StubCounter(Recoverable):
    """Minimal Recoverable for manager-level tests."""

    def __init__(self, pids=(1, 2)):
        self.pids = tuple(pids)
        self.suspected: list[int] = []
        self.restored: list[int] = []
        self.recovered: list[tuple[int, object]] = []

    def critical_pids(self):
        return self.pids

    def on_processor_suspected(self, pid, time):
        self.suspected.append(pid)

    def on_processor_restored(self, pid, time):
        self.restored.append(pid)

    def on_processor_recovered(self, pid, time, checkpoint):
        self.recovered.append((pid, checkpoint))


def _manager(plan, counter=None, **kwargs):
    network = Network(fault_plan=plan)
    network.register_all([InertProcessor(pid) for pid in (1, 2, 3)])
    counter = counter or _StubCounter()
    return network, counter, RecoveryManager(network, counter, plan, **kwargs)


class TestRecoveryManager:
    def test_rejects_non_recoverable_counters(self):
        plan = FaultPlan([CrashRule(1, start=5.0)])
        with pytest.raises(ConfigurationError):
            RecoveryManager(Network(fault_plan=plan), object(), plan)

    def test_derive_horizon_covers_crashes_and_recoveries(self):
        plan = parse_fault_spec("crash=1@t40-t80,recover=1@t90", seed=0)
        horizon = RecoveryManager.derive_horizon(plan, period=5.0, timeout=15.0)
        assert horizon == 90.0 + 15.0 + 10.0

    def test_checkpoints_are_deep_copied_both_ways(self):
        plan = FaultPlan([CrashRule(1, start=5.0)])
        _, _, manager = _manager(plan)
        state = {"values": [1, 2]}
        manager.save_checkpoint(1, state)
        state["values"].append(3)  # mutating the original must not leak in
        restored = manager.checkpoint_for(1)
        assert restored == {"values": [1, 2]}
        restored["values"].append(4)  # nor mutating the copy leak back
        assert manager.checkpoint_for(1) == {"values": [1, 2]}

    def test_checkpoint_for_unknown_pid_is_none(self):
        plan = FaultPlan([CrashRule(1, start=5.0)])
        _, _, manager = _manager(plan)
        assert manager.checkpoint_for(9) is None

    def test_recovery_point_redelivers_the_last_checkpoint(self):
        plan = parse_fault_spec("crash=2@t10,recover=2@t50", seed=0)
        network, counter, manager = _manager(plan)
        manager.start()
        manager.save_checkpoint(2, {"epoch": 7})
        network.run_until_quiescent()
        assert counter.recovered == [(2, {"epoch": 7})]
        assert manager.recovery_count() == 1
        kinds = [event.kind for event in manager.events]
        assert "recover" in kinds

    def test_failover_latency_is_measured_from_crash_start(self):
        plan = FaultPlan([CrashRule(2, start=20.0)])
        network, counter, manager = _manager(plan)
        manager.start()
        network.run_until_quiescent()
        assert counter.suspected == [2]
        # The counter would call note_failover from its suspect hook;
        # simulate the handoff at the current (post-run) time.
        manager.note_failover(2, 1)
        latency = manager.failover_latency()
        assert latency is not None and latency == network.now - 20.0
        assert manager.failover_count() == 1

    def test_start_twice_raises(self):
        plan = FaultPlan([CrashRule(1, start=5.0)])
        _, _, manager = _manager(plan)
        manager.start()
        with pytest.raises(ConfigurationError):
            manager.start()


class TestStandbyCentral:
    def test_needs_two_processors(self):
        with pytest.raises(ConfigurationError):
            parse_spec("central[standby]").build(Network(), 1)

    def test_clean_run_counts_exactly(self):
        session = RunSession("central[standby]", 8, policy="random", seed=1)
        ops = session.run_staggered(gap=3.0)
        assert sorted(op.value for op in ops) == list(range(8))
        assert check_linearizable_counting(ops).linearizable

    def test_primary_crash_fails_over_linearizably(self):
        session = RunSession(
            "central[standby]", 16, policy="random", seed=3,
            faults="crash=1@t18",
        )
        ops = session.run_staggered(gap=4.0)
        report = check_linearizable_counting(ops)
        assert report.linearizable
        manager = session.recovery
        assert manager is not None
        assert manager.failover_count() == 1
        assert manager.failover_latency() > 0
        counter = session.counter
        assert counter.current_primary == 2  # the standby took over

    def test_standby_crash_primary_goes_solo(self):
        session = RunSession(
            "central[standby]", 8, policy="random", seed=5,
            faults="crash=2@t15",
        )
        ops = session.run_staggered(gap=4.0)
        assert check_linearizable_counting(ops).linearizable
        counter = session.counter
        assert counter.current_primary == 1
        assert counter.current_standby is None

    def test_recovered_ex_primary_is_demoted_not_split_brained(self):
        # Primary 1 dies at t18, the standby promotes; 1's links heal at
        # t60 and its checkpoint is re-delivered at t70 — it must rejoin
        # as a client, never as a second primary.
        session = RunSession(
            "central[standby]", 16, policy="random", seed=3,
            faults="crash=1@t18-t60,recover=1@t70",
        )
        ops = session.run_staggered(gap=4.0)
        report = check_linearizable_counting(ops)
        assert report.linearizable  # uniqueness would fail on split-brain
        assert len(ops) == 16  # pid 1's own op completes after recovery
        counter = session.counter
        assert counter.current_primary == 2
        assert session.recovery.recovery_count() == 1

    def test_tunable_seats(self):
        session = RunSession(
            "central[standby]?primary_id=3&standby_id=4", 8,
            policy="random", seed=1, faults="crash=3@t15",
        )
        ops = session.run_staggered(gap=4.0)
        assert check_linearizable_counting(ops).linearizable
        assert session.counter.current_primary == 4


class TestBypassCombiningTree:
    def test_clean_sequential_run_counts_exactly(self):
        session = RunSession("combining-tree[bypass]", 8, policy="random", seed=1)
        result = session.run_sequence()
        assert sorted(result.values()) == list(range(8))

    def test_host_crash_burns_values_but_never_duplicates(self):
        session = RunSession(
            "combining-tree[bypass]", 16, policy="random", seed=3,
            faults="crash=3@t20",
        )
        ops = session.run_staggered(gap=4.0)
        values = [op.value for op in ops]
        assert len(set(values)) == len(values)  # at-most-once
        assert len(ops) == 15  # everyone but the dead client finishes
        counter = session.counter
        assert counter.burned_values >= 0
        assert check_linearizable_counting(ops).linearizable

    def test_root_host_crash_migrates_the_root_role(self):
        probe = RunSession("combining-tree[bypass]", 16).counter
        root_host = probe.root_host
        session = RunSession(
            "combining-tree[bypass]", 16, policy="random", seed=3,
            faults=f"crash={root_host}@t20",
        )
        ops = session.run_staggered(gap=4.0)
        values = [op.value for op in ops]
        assert len(set(values)) == len(values)
        assert len(ops) == 15
        assert session.recovery.failover_count() == 1
        assert session.counter.root_host != root_host

    def test_recovery_point_reintegrates_the_host(self):
        session = RunSession(
            "combining-tree[bypass]", 16, policy="random", seed=7,
            faults="crash=3@t20-t50,recover=3@t60",
        )
        ops = session.run_staggered(gap=4.0)
        values = [op.value for op in ops]
        assert len(ops) == 16  # the healed client's op completes too
        assert len(set(values)) == len(values)
        assert session.recovery.recovery_count() == 1


class TestSessionIntegration:
    def test_bare_central_refuses_permanent_crash_even_with_reliable(self):
        with pytest.raises(CapabilityError) as excinfo:
            RunSession(
                "central", 16, faults="crash=1@t18", reliable=True,
            )
        assert "tolerate crashes" in str(excinfo.value)

    def test_finite_crash_window_passes_with_reliable_transport(self):
        session = RunSession(
            "central", 16, policy="random", seed=3,
            faults="crash=2@t10-t40", reliable=True,
        )
        result = session.run_sequence()
        assert sorted(result.values()) == list(range(16))
        assert session.recovery is None  # central is not Recoverable

    def test_recovery_manager_is_auto_assembled(self):
        session = RunSession(
            "central[standby]", 8, faults="crash=1@t18",
        )
        assert session.recovery is not None
        assert session.failure_detector is not None
        assert session.failure_detector.monitored == (1, 2)
        assert session.capabilities.tolerates_crash

    def test_no_faults_means_no_recovery_manager(self):
        session = RunSession("central[standby]", 8)
        assert session.recovery is None
        assert session.failure_detector is None

    def test_capability_flags_include_crash_tolerant(self):
        spec = parse_spec("central[standby]").spec
        assert "crash-tolerant" in spec.capabilities.flags()
        bypass = parse_spec("combining-tree[bypass]").spec
        assert "crash-tolerant" in bypass.capabilities.flags()

    def test_recover_clause_requires_a_matching_crash(self):
        with pytest.raises(ConfigurationError):
            RunSession("central[standby]", 8, faults="recover=1@t50")
