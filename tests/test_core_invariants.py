"""Tests for the §4 lemma checkers — both that they pass on correct runs
and that they catch deliberately broken configurations."""

from __future__ import annotations

import pytest

from repro.core import IntervalMode, TreeCounter, TreeGeometry, TreePolicy
from repro.core.invariants import (
    check_all,
    check_bottleneck_theorem,
    check_leaf_work,
    check_number_of_retirements,
    check_retirement_lemma,
    check_tenure_bound,
    pure_leaves,
    require_all,
)
from repro.errors import InvariantViolationError
from repro.sim.network import Network
from repro.sim.policies import RandomDelay
from repro.workloads import one_shot, run_sequence, shuffled


def _run(n, policy=None, delivery=None, order=None):
    network = Network(policy=delivery)
    counter = TreeCounter(network, n, policy=policy)
    result = run_sequence(counter, order if order is not None else one_shot(n))
    return counter, result


class TestLemmasHoldOnPaperRuns:
    @pytest.mark.parametrize("n", [8, 81, 1024])
    def test_all_lemmas_hold(self, n):
        counter, result = _run(n)
        reports = check_all(counter, result)
        assert len(reports) == 5
        failing = [r for r in reports if not r.holds]
        assert not failing, failing

    def test_require_all_passes(self):
        counter, result = _run(81)
        require_all(counter, result)  # must not raise

    @pytest.mark.parametrize("seed", [0, 7])
    def test_lemmas_hold_under_shuffled_order(self, seed):
        counter, result = _run(81, order=shuffled(81, seed=seed))
        require_all(counter, result)

    def test_lemmas_hold_under_random_delivery(self):
        counter, result = _run(81, delivery=RandomDelay(seed=2))
        require_all(counter, result)


class TestRetirementLemma:
    def test_passes_on_paper_policy(self):
        counter, _ = _run(81)
        assert check_retirement_lemma(counter).holds

    def test_catches_double_retirement_with_supercritical_threshold(self):
        # A retirement distributes arity+1 age points to neighbours and a
        # threshold <= arity+1 consumes at most that many per retirement,
        # so retirements multiply: nodes retire repeatedly within one
        # operation (and the cascade eventually trips the event limit).
        # Both facets are asserted: the lemma checker flags the partial
        # log, and the run itself explodes.
        from repro.errors import SimulationLimitError

        network = Network(event_limit=20_000)
        geometry = TreeGeometry.paper_shape(2)
        policy = TreePolicy(retire_threshold=2, interval_mode=IntervalMode.WRAP)
        counter = TreeCounter(network, 8, geometry=geometry, policy=policy)
        with pytest.raises(SimulationLimitError):
            run_sequence(counter, one_shot(8))
        report = check_retirement_lemma(counter)
        assert not report.holds
        with pytest.raises(InvariantViolationError):
            report.require()


class TestTenureBound:
    def test_ages_at_retirement_near_threshold(self):
        counter, _ = _run(81)
        assert check_tenure_bound(counter).holds

    def test_never_retire_policy_is_trivially_fine(self):
        counter, result = _run(8, policy=TreePolicy.never_retire())
        report = check_tenure_bound(counter)
        assert report.holds
        assert "disabled" in report.detail


class TestNumberOfRetirements:
    def test_within_interval_budgets(self):
        counter, _ = _run(1024)
        assert check_number_of_retirements(counter).holds

    def test_wrap_mode_overrun_detected(self):
        # Threshold 5 is subcritical (no cascade explosion at arity 2)
        # but still aggressive enough that width-1 bottom intervals are
        # overrun in wrap mode; the checker must notice.
        network = Network()
        geometry = TreeGeometry.paper_shape(2)
        policy = TreePolicy(retire_threshold=5, interval_mode=IntervalMode.WRAP)
        counter = TreeCounter(network, 8, geometry=geometry, policy=policy)
        run_sequence(counter, one_shot(8))
        report = check_number_of_retirements(counter)
        assert not report.holds


class TestLeafWork:
    def test_pure_leaves_exist_and_are_lightly_loaded(self):
        counter, result = _run(1024)
        leaves = pure_leaves(counter)
        assert leaves  # most processors never do inner work
        assert check_leaf_work(counter, result).holds

    def test_pure_leaves_excludes_initial_workers(self):
        counter, _ = _run(8)
        leaves = pure_leaves(counter)
        for role in counter.registry.all_roles():
            assert counter.geometry.initial_worker(role.addr) not in leaves


class TestBottleneckTheorem:
    def test_holds_with_default_constant(self):
        counter, result = _run(1024)
        assert check_bottleneck_theorem(counter, result).holds

    def test_fails_with_unreasonable_constant(self):
        counter, result = _run(81)
        report = check_bottleneck_theorem(counter, result, constant=0.5)
        assert not report.holds

    def test_static_tree_fails_the_theorem(self):
        # Without retirement the bound is genuinely broken at k=3 — the
        # checker is not a tautology.
        counter, result = _run(81, policy=TreePolicy.never_retire())
        report = check_bottleneck_theorem(counter, result)
        assert not report.holds
