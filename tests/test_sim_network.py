"""Unit tests for the network simulator."""

from __future__ import annotations

import pytest

from repro.errors import (
    DuplicateProcessorError,
    SimulationError,
    SimulationLimitError,
    UnknownProcessorError,
)
from repro.sim.messages import NO_OP, Message
from repro.sim.network import Network
from repro.sim.policies import RandomDelay
from repro.sim.processor import InertProcessor, Processor


class Echo(Processor):
    """Replies once to every 'ping' with a 'pong'."""

    def on_message(self, message: Message) -> None:
        if message.kind == "ping":
            self.send(message.sender, "pong", {})


class Collector(Processor):
    """Remembers everything it receives."""

    def __init__(self, pid):
        super().__init__(pid)
        self.inbox: list[Message] = []

    def on_message(self, message: Message) -> None:
        self.inbox.append(message)


class Flooder(Processor):
    """Bounces a message back and forth forever (for the limit test)."""

    def on_message(self, message: Message) -> None:
        self.send(message.sender, "flood", {})


class TestRegistration:
    def test_register_and_lookup(self, network):
        processor = InertProcessor(1)
        network.register(processor)
        assert network.processor(1) is processor
        assert network.has_processor(1)
        assert network.processor_count == 1

    def test_duplicate_id_rejected(self, network):
        network.register(InertProcessor(1))
        with pytest.raises(DuplicateProcessorError):
            network.register(InertProcessor(1))

    def test_unknown_lookup_raises(self, network):
        with pytest.raises(UnknownProcessorError):
            network.processor(99)

    def test_register_all(self, network):
        network.register_all([InertProcessor(1), InertProcessor(2)])
        assert network.processor_count == 2

    def test_processor_requires_attachment(self):
        lonely = InertProcessor(1)
        with pytest.raises(SimulationError):
            lonely.network  # noqa: B018

    def test_reattach_to_other_network_rejected(self, network):
        processor = InertProcessor(1)
        network.register(processor)
        other = Network()
        with pytest.raises(SimulationError):
            other.register(processor)

    def test_nonpositive_pid_rejected(self):
        with pytest.raises(ValueError):
            InertProcessor(0)


class TestMessaging:
    def test_send_to_unknown_receiver_raises(self, network):
        network.register(InertProcessor(1))
        with pytest.raises(UnknownProcessorError):
            network.send(1, 2, "x", {})

    def test_message_delivered_and_traced(self, network):
        collector = Collector(2)
        network.register_all([InertProcessor(1), collector])
        network.send(1, 2, "hello", {"data": 7})
        network.run_until_quiescent()
        assert len(collector.inbox) == 1
        assert collector.inbox[0].payload == {"data": 7}
        assert network.trace.total_messages == 1
        assert network.trace.load(1) == 1
        assert network.trace.load(2) == 1

    def test_request_reply_round_trip(self, network):
        collector = Collector(1)
        network.register_all([collector, Echo(2)])
        network.send(1, 2, "ping", {})
        network.run_until_quiescent()
        assert [m.kind for m in collector.inbox] == ["pong"]
        assert network.trace.total_messages == 2

    def test_uids_unique_and_increasing(self, network):
        network.register_all([InertProcessor(1), InertProcessor(2)])
        uids = [network.send(1, 2, "x", {}).uid for _ in range(5)]
        assert uids == sorted(set(uids))

    def test_in_flight_tracking(self, network):
        network.register_all([InertProcessor(1), InertProcessor(2)])
        network.send(1, 2, "x", {})
        assert network.in_flight == 1
        network.run_until_quiescent()
        assert network.in_flight == 0


class TestOperationAttribution:
    def test_inject_sets_op_for_caused_messages(self, network):
        network.register_all([Echo(1), Echo(2)])
        network.inject(lambda: network.processor(1).send(2, "ping", {}), op_index=5)
        network.run_until_quiescent()
        assert all(r.op_index == 5 for r in network.trace.records)
        assert network.trace.footprint(5) == frozenset({1, 2})

    def test_messages_outside_ops_are_untracked(self, network):
        network.register_all([InertProcessor(1), InertProcessor(2)])
        network.send(1, 2, "x", {})
        network.run_until_quiescent()
        assert network.trace.op_indices() == []
        assert network.trace.records[0].op_index == NO_OP

    def test_interleaved_ops_attribute_causally(self, network):
        network.register_all([Echo(1), Echo(2), Echo(3), Echo(4)])
        network.inject(lambda: network.processor(1).send(2, "ping", {}), op_index=0)
        network.inject(lambda: network.processor(3).send(4, "ping", {}), op_index=1)
        network.run_until_quiescent()
        assert network.trace.footprint(0) == frozenset({1, 2})
        assert network.trace.footprint(1) == frozenset({3, 4})

    def test_active_op_restored_after_delivery(self, network):
        network.register_all([Echo(1), Echo(2)])
        network.inject(lambda: network.processor(1).send(2, "ping", {}), op_index=3)
        network.run_until_quiescent()
        assert network.active_op == NO_OP


class TestExecution:
    def test_quiescence_on_empty_network(self, network):
        assert network.is_quiescent()
        assert network.run_until_quiescent() == 0

    def test_event_limit_detects_livelock(self):
        network = Network(event_limit=100)
        network.register_all([Flooder(1), Flooder(2)])
        network.send(1, 2, "flood", {})
        with pytest.raises(SimulationLimitError):
            network.run_until_quiescent()

    def test_events_executed_accumulates(self, network):
        network.register_all([InertProcessor(1), InertProcessor(2)])
        network.send(1, 2, "x", {})
        network.run_until_quiescent()
        network.send(2, 1, "y", {})
        network.run_until_quiescent()
        assert network.events_executed == 2

    def test_time_advances_with_delays(self):
        network = Network(policy=RandomDelay(seed=1, low=2.0, high=4.0))
        network.register_all([InertProcessor(1), InertProcessor(2)])
        network.send(1, 2, "x", {})
        network.run_until_quiescent()
        assert 2.0 <= network.now <= 4.0


class TestDeterminism:
    def _run(self, seed: int) -> list[tuple[int, int, str]]:
        network = Network(policy=RandomDelay(seed=seed))
        network.register_all([Echo(pid) for pid in range(1, 6)])
        for sender in range(1, 5):
            network.inject(
                lambda s=sender: network.processor(s).send(s + 1, "ping", {}),
                op_index=sender,
            )
        network.run_until_quiescent()
        return [(r.sender, r.receiver, r.kind) for r in network.trace.records]

    def test_same_seed_same_trace(self):
        assert self._run(11) == self._run(11)

    def test_different_seed_may_reorder(self):
        # Loads must match even when delivery order differs.
        def loads(seed):
            network = Network(policy=RandomDelay(seed=seed))
            network.register_all([Echo(pid) for pid in range(1, 6)])
            for sender in range(1, 5):
                network.inject(
                    lambda s=sender: network.processor(s).send(s + 1, "ping", {}),
                    op_index=sender,
                )
            network.run_until_quiescent()
            return network.trace.loads()

        assert loads(1) == loads(2)
