"""The invariant-oracle suite, judged against synthetic executions.

Each oracle is fed hand-built :class:`OracleContext` evidence — timed
operations with known inversions, duplicate values, fabricated
retirement ledgers — so every pass/fail/skip branch is pinned without
running the exploration engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.analysis.linearizability import TimedOp
from repro.analysis.oracles import (
    HotSpotOracle,
    LinearizabilityOracle,
    NoLostIncrementOracle,
    OracleContext,
    OracleVerdict,
    RetirementMonotonicityOracle,
    RuntimeOracle,
    default_oracles,
    first_failure,
    run_oracles,
)
from repro.counters import CentralCounter
from repro.errors import SimulationLimitError
from repro.sim.network import Network
from repro.workloads import one_shot, run_sequence

pytestmark = pytest.mark.explore


def _op(index, value, start, end, pid=1):
    return TimedOp(
        op_index=index,
        initiator=pid,
        value=value,
        request_time=start,
        response_time=end,
    )


def _context(**kwargs):
    kwargs.setdefault("counter", object())
    return OracleContext(**kwargs)


class TestRuntimeOracle:
    def test_clean_run_passes(self):
        assert RuntimeOracle().check(_context()).ok

    def test_exception_fails_with_type_and_message(self):
        verdict = RuntimeOracle().check(
            _context(exception=SimulationLimitError("livelocked at 500000"))
        )
        assert verdict.failed
        assert "SimulationLimitError" in verdict.message
        assert "livelocked" in verdict.message


class TestLinearizabilityOracle:
    def test_skips_sequential_episodes(self):
        verdict = LinearizabilityOracle().check(_context(ops=None))
        assert verdict.skipped and not verdict.failed

    def test_skips_when_no_ops_completed(self):
        assert LinearizabilityOracle().check(_context(ops=[])).skipped

    def test_ordered_ops_pass(self):
        ops = [_op(0, 0, 0.0, 1.0), _op(1, 1, 2.0, 3.0)]
        assert LinearizabilityOracle().check(_context(ops=ops)).ok

    def test_real_time_inversion_fails(self):
        # Op finishing first got the *larger* value: order inverted.
        ops = [_op(0, 1, 0.0, 1.0), _op(1, 0, 2.0, 3.0)]
        verdict = LinearizabilityOracle().check(_context(ops=ops))
        assert verdict.failed

    def test_duplicate_values_fail_instead_of_raising(self):
        ops = [_op(0, 0, 0.0, 1.0), _op(1, 0, 2.0, 3.0)]
        verdict = LinearizabilityOracle().check(_context(ops=ops))
        assert verdict.failed
        assert "unique" in verdict.message


class TestHotSpotOracle:
    def test_skips_staggered_episodes(self):
        assert HotSpotOracle().check(_context(result=None)).skipped

    def test_passes_on_a_real_sequential_run(self):
        network = Network()
        counter = CentralCounter(network, 4)
        result = run_sequence(counter, one_shot(4))
        verdict = HotSpotOracle().check(_context(counter=counter, result=result))
        assert verdict.ok and not verdict.skipped

    def test_skips_single_operation_runs(self):
        network = Network()
        counter = CentralCounter(network, 1)
        result = run_sequence(counter, one_shot(1))
        verdict = HotSpotOracle().check(_context(counter=counter, result=result))
        assert verdict.skipped


class TestNoLostIncrementOracle:
    def test_dense_prefix_passes(self):
        ops = [_op(i, v, i * 2.0, i * 2.0 + 1) for i, v in enumerate((2, 0, 1))]
        assert NoLostIncrementOracle().check(_context(ops=ops)).ok

    def test_duplicates_always_fail(self):
        ops = [_op(0, 1, 0.0, 1.0), _op(1, 1, 2.0, 3.0)]
        for at_most_once in (False, True):
            verdict = NoLostIncrementOracle().check(
                _context(ops=ops, at_most_once=at_most_once)
            )
            assert verdict.failed
            assert "more than once" in verdict.message

    def test_gaps_fail_exactly_once_runs(self):
        ops = [_op(0, 0, 0.0, 1.0), _op(1, 5, 2.0, 3.0)]
        verdict = NoLostIncrementOracle().check(_context(ops=ops))
        assert verdict.failed
        assert "dense prefix" in verdict.message

    def test_gaps_are_legal_under_at_most_once(self):
        # A fault plan may burn values: {0, 5} is fine, duplicates not.
        ops = [_op(0, 0, 0.0, 1.0), _op(1, 5, 2.0, 3.0)]
        verdict = NoLostIncrementOracle().check(
            _context(ops=ops, at_most_once=True)
        )
        assert verdict.ok

    def test_skips_without_any_value_record(self):
        assert NoLostIncrementOracle().check(_context()).skipped


@dataclass
class _Retirement:
    addr: int
    time: float
    age_at_retirement: int
    old_worker: int
    new_worker: int


class _LedgeredCounter:
    def __init__(self, events):
        self.retirements = list(events)


class TestRetirementMonotonicityOracle:
    def test_skips_counters_without_a_ledger(self):
        assert RetirementMonotonicityOracle().check(_context()).skipped

    def test_well_formed_ledger_passes(self):
        counter = _LedgeredCounter(
            [
                _Retirement(0, 1.0, 8, old_worker=1, new_worker=2),
                _Retirement(1, 4.0, 8, old_worker=3, new_worker=4),
            ]
        )
        assert RetirementMonotonicityOracle().check(
            _context(counter=counter)
        ).ok

    def test_time_going_backwards_fails(self):
        counter = _LedgeredCounter(
            [
                _Retirement(0, 5.0, 8, old_worker=1, new_worker=2),
                _Retirement(1, 3.0, 8, old_worker=3, new_worker=4),
            ]
        )
        verdict = RetirementMonotonicityOracle().check(_context(counter=counter))
        assert verdict.failed and "precedes" in verdict.message

    def test_negative_age_fails(self):
        counter = _LedgeredCounter(
            [_Retirement(0, 1.0, -1, old_worker=1, new_worker=2)]
        )
        verdict = RetirementMonotonicityOracle().check(_context(counter=counter))
        assert verdict.failed and "negative age" in verdict.message

    def test_self_retirement_fails(self):
        counter = _LedgeredCounter(
            [_Retirement(0, 1.0, 8, old_worker=2, new_worker=2)]
        )
        verdict = RetirementMonotonicityOracle().check(_context(counter=counter))
        assert verdict.failed and "role must move" in verdict.message


class TestSuitePlumbing:
    def test_default_suite_order_and_names(self):
        names = [oracle.name for oracle in default_oracles()]
        assert names == [
            "runtime",
            "linearizability",
            "hot-spot",
            "agreement",
            "validity",
            "no-lost-increment",
            "retirement-monotonicity",
        ]

    def test_run_oracles_reports_in_suite_order(self):
        verdicts = run_oracles(_context())
        assert [v.oracle for v in verdicts] == [
            oracle.name for oracle in default_oracles()
        ]

    def test_first_failure_skips_skipped_verdicts(self):
        verdicts = [
            OracleVerdict(oracle="a", ok=True, skipped=True),
            OracleVerdict(oracle="b", ok=True),
            OracleVerdict(oracle="c", ok=False, message="boom"),
            OracleVerdict(oracle="d", ok=False, message="later"),
        ]
        failure = first_failure(verdicts)
        assert failure is not None and failure.oracle == "c"
        assert first_failure(verdicts[:2]) is None
