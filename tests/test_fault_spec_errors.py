"""Fault-spec parser error paths and canonical round-trips.

The fault-spec grammar is the naming layer every other subsystem leans
on (CLI flags, sweep cache keys, exploration repro files), so malformed
strings must die loudly at parse time with
:class:`~repro.errors.ConfigurationError` — never as a ValueError deep
inside a run — and every canonical spelling must survive a
parse → spec → parse round trip unchanged.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.sim.faults import (
    CrashRule,
    PartitionRule,
    canonical_fault_spec,
    parse_fault_spec,
)

pytestmark = pytest.mark.faults


def _rejects(spec, match):
    with pytest.raises(ConfigurationError, match=match):
        parse_fault_spec(spec)


class TestMalformedSpecs:
    def test_empty_and_whitespace_specs(self):
        _rejects("", "empty fault spec")
        _rejects("   ", "empty fault spec")

    @pytest.mark.parametrize("spec", ["drop", "=0.1", "drop=", "drop=0.1,,"])
    def test_fields_need_key_equals_value(self, spec):
        _rejects(spec, "expected key=value")

    def test_unknown_field_lists_the_vocabulary(self):
        _rejects("lose=0.1", "unknown fault spec field 'lose'")

    def test_duplicate_probability_fields(self):
        _rejects("drop=0.1,drop=0.2", "duplicate fault spec field 'drop'")

    def test_non_numeric_probability(self):
        _rejects("drop=lots", "expects a number")

    def test_out_of_range_probability(self):
        _rejects("drop=1.5", r"probability must be in \[0, 1\]")

    def test_dup_bad_copy_count(self):
        _rejects("dup=0.1xmany", "bad copy count")

    def test_crash_requires_a_window(self):
        _rejects("crash=3", "needs a window")

    def test_crash_bad_pid(self):
        _rejects("crash=primary@t10", "bad processor id")

    def test_crash_window_needs_t_prefix(self):
        _rejects("crash=3@10", "expects a window like 't50'")
        _rejects("crash=3@t10-80", "window end must look like 't80'")

    def test_crash_window_must_be_ordered(self):
        _rejects("crash=3@t50-t20", "start < end")


class TestMalformedRecoverSpecs:
    def test_recover_bad_pid(self):
        _rejects("crash=x@t10,recover=x@t90", "bad processor id")
        _rejects("crash=3@t10,recover=three@t90", "bad processor id")

    def test_recover_needs_a_time(self):
        _rejects("crash=3@t10,recover=3", "needs a time")
        _rejects("crash=3@t10,recover=3@90", "needs a time")

    def test_recover_non_numeric_time(self):
        _rejects("crash=3@t10,recover=3@tlate", "expects a number")

    def test_recover_without_matching_crash(self):
        _rejects("recover=3@t90", "no matching")
        # A crash for a different pid does not satisfy the pairing.
        _rejects("crash=2@t10,recover=3@t90", "no matching")

    def test_recover_before_the_crash_starts(self):
        _rejects("crash=3@t50,recover=3@t40", "no matching")

    def test_duplicate_recover_for_one_pid(self):
        _rejects(
            "crash=3@t10,recover=3@t50,recover=3@t90",
            "duplicate recovery",
        )


class TestMalformedPartitionSpecs:
    def test_partition_needs_two_groups(self):
        _rejects("partition=1..4@t10-t50", "needs two groups")

    def test_partition_bad_range(self):
        _rejects("partition=a..4|5..8", "bad id range")

    def test_partition_empty_range(self):
        _rejects("partition=4..1|5..8", "empty id range")

    def test_partition_bad_id_list(self):
        _rejects("partition=1+two|5..8", "bad id list")

    def test_partition_groups_must_be_disjoint(self):
        _rejects("partition=1..4|4..8", "disjoint")

    def test_partition_window_must_be_ordered(self):
        _rejects("partition=1..4|5..8@t50-t10", "start < end")


@pytest.mark.byzantine
class TestMalformedByzantineSpecs:
    def test_byz_needs_a_strategy(self):
        _rejects("byz=1", "needs a strategy")
        _rejects("byz=1@", "needs a strategy")

    def test_byz_unknown_strategy_lists_the_vocabulary(self):
        _rejects(
            "byz=1@gossip",
            "unknown byzantine strategy 'gossip'.*corrupt.*equivocate"
            ".*silence.*mixed",
        )

    @pytest.mark.parametrize("budget", ["-1", "0"])
    def test_byz_budget_must_be_positive(self, budget):
        _rejects(f"byz={budget}@corrupt", "budget must be >= 1")

    def test_byz_budget_must_be_an_integer(self):
        _rejects("byz=many@corrupt", "bad budget")
        _rejects("byz=1.5@corrupt", "bad budget")

    def test_byz_budget_must_leave_honest_processors_at_bind(self):
        plan = parse_fault_spec("byz=4@corrupt")
        with pytest.raises(
            ConfigurationError, match="cannot compromise every client"
        ):
            plan.bind_clients(4)

    def test_unbound_byzantine_rule_fails_at_first_consult(self):
        from repro.sim.messages import Message

        plan = parse_fault_spec("byz=1@corrupt")
        message = Message(
            sender=1, receiver=2, kind="m", uid=0, send_time=0.0
        )
        with pytest.raises(ConfigurationError, match="bind_clients"):
            plan.consult(message, 0.0, 1.0)


class TestCanonicalRoundTrips:
    @pytest.mark.parametrize(
        "spec",
        [
            "drop=0.1",
            "dup=0.2x3",
            "reorder=0.1@25",
            "crash=3@t50",
            "crash=3@t50-t80",
            "partition=1..4|5..8@t10-t50",
            "partition=1+3+9|2+4@t10-t50",
            "drop=0.1,dup=0.05,reorder=0.02,crash=2@t40-t80,recover=2@t90",
            "byz=1@corrupt",
            "byz=2@equivocate",
            "byz=1@silence",
            "byz=3@mixed",
            "drop=0.1,crash=2@t40-t80,byz=1@mixed,recover=2@t90",
        ],
    )
    def test_canonical_specs_are_fixed_points(self, spec):
        assert canonical_fault_spec(spec) == spec
        assert canonical_fault_spec(canonical_fault_spec(spec)) == spec

    def test_field_order_is_canonicalized(self):
        shuffled = "crash=2@t40-t80,drop=0.1,recover=2@t90,dup=0.05"
        assert (
            canonical_fault_spec(shuffled)
            == "drop=0.1,dup=0.05,crash=2@t40-t80,recover=2@t90"
        )

    def test_whitespace_is_normalized(self):
        assert canonical_fault_spec(" drop=0.1 , crash=3@t50 ") == (
            "drop=0.1,crash=3@t50"
        )

    def test_recover_truncates_open_crash_windows(self):
        plan = parse_fault_spec("crash=3@t10,recover=3@t60")
        crash = next(r for r in plan.rules if isinstance(r, CrashRule))
        assert crash.end == 60.0
        assert "crash=3@t10-t60" in plan.spec

    def test_partition_defaults_to_an_unbounded_window(self):
        plan = parse_fault_spec("partition=1..2|3..4")
        rule = next(r for r in plan.rules if isinstance(r, PartitionRule))
        assert rule.start == 0.0 and rule.end == math.inf
