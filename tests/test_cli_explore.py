"""The ``repro explore`` subcommand: search, replay, JSON, exit codes."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.cli import main

pytestmark = pytest.mark.explore

CORPUS_DIR = pathlib.Path(__file__).parent / "repros"


def _run(capsys, *argv):
    code = main(["explore", *argv])
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestExploreCommand:
    def test_clean_exploration_exits_zero(self, capsys):
        code, out, _ = _run(
            capsys, "--counter", "central", "--budget", "10"
        )
        assert code == 0
        assert "no invariant violation found" in out
        assert "10 schedules" in out

    def test_exploration_is_deterministic(self, capsys):
        argv = ("--counter", "central", "--budget", "10", "--strategy", "guided")
        first = _run(capsys, *argv)
        second = _run(capsys, *argv)
        strip = lambda text: [
            line for line in text.splitlines() if "schedules/s" not in line
        ]
        assert first[0] == second[0] == 0
        assert strip(first[1]) == strip(second[1])

    def test_mutant_failure_exits_one_and_reports_the_oracle(self, capsys):
        code, out, _ = _run(
            capsys,
            "--counter", "mutant[stale-central]",
            "--n", "6", "--seed", "3", "--budget", "10",
        )
        assert code == 1
        assert "failing schedule" in out
        assert "linearizability" in out

    def test_json_output_is_machine_readable(self, capsys):
        code, out, _ = _run(
            capsys, "--counter", "central", "--budget", "5", "--json"
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["episodes"] == 5
        assert payload["failures"] == []
        assert "schedules_per_second" in payload
        assert set(payload["verdicts"]) == {
            "runtime", "linearizability", "hot-spot",
            "agreement", "validity",
            "no-lost-increment", "retirement-monotonicity",
        }

    def test_save_repros_writes_replayable_files(self, capsys, tmp_path):
        code, out, _ = _run(
            capsys,
            "--counter", "mutant[stale-central]",
            "--n", "6", "--seed", "3", "--budget", "5",
            "--save-repros", str(tmp_path),
        )
        assert code == 1
        written = sorted(tmp_path.glob("*.json"))
        assert written
        replay_code, replay_out, _ = _run(capsys, "--replay", str(written[0]))
        assert replay_code == 0
        assert "[reproduces]" in replay_out

    def test_capability_error_is_a_usage_error(self, capsys):
        code, _, err = _run(capsys, "--counter", "arrow", "--budget", "2")
        assert code == 2
        assert "sequential-only" in err

    def test_malformed_strategy_plan_is_a_usage_error(self, capsys):
        code, _, err = _run(
            capsys, "--counter", "central", "--strategy", "warp:10"
        )
        assert code == 2
        assert "unknown strategy" in err

    def test_parallel_workers_match_serial_output(self, capsys):
        argv = ("--counter", "central", "--budget", "30", "--seed", "2")
        serial = _run(capsys, *argv, "--workers", "1")
        parallel = _run(capsys, *argv, "--workers", "4")
        # Identical apart from the timing line.
        strip = lambda text: [
            line for line in text.splitlines() if "schedules/s" not in line
        ]
        assert serial[0] == parallel[0] == 0
        assert strip(serial[1]) == strip(parallel[1])


class TestReplayMode:
    def test_replaying_the_corpus_reproduces(self, capsys):
        path = sorted(CORPUS_DIR.glob("*.json"))[0]
        code, out, _ = _run(capsys, "--replay", str(path))
        assert code == 0
        assert "[reproduces]" in out

    def test_missing_file_is_a_usage_error(self, capsys):
        code, _, err = _run(capsys, "--replay", "/nonexistent/repro.json")
        assert code == 2
        assert "cannot load repro file" in err

    def test_bad_schema_is_a_usage_error(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "explore-repro-v999"}')
        code, _, err = _run(capsys, "--replay", str(bad))
        assert code == 2
        assert "unsupported repro schema" in err

    def test_non_reproducing_repro_exits_one(self, capsys, tmp_path):
        # A clean counter with the baseline schedule cannot fail: the
        # fabricated witness must be reported as not reproducing.
        fake = tmp_path / "fake.json"
        fake.write_text(
            json.dumps(
                {
                    "schema": "explore-repro-v1",
                    "counter": "central",
                    "n": 4,
                    "seed": 0,
                    "decisions": [],
                    "failure": {"oracle": "linearizability"},
                }
            )
        )
        code, out, _ = _run(capsys, "--replay", str(fake))
        assert code == 1
        assert "DOES NOT REPRODUCE" in out
