"""Regression corpus: every checked-in repro file must still reproduce.

``tests/repros/*.json`` are shrunk witnesses of real oracle failures
(currently: the seeded mutant counters).  Replaying each one is the
regression guarantee of the whole exploration stack — the schedule
format, the controller's decision consumption order, the strategies'
seeding, and the oracle that originally failed must all still line up,
or a previously caught bug could silently become uncatchable.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.explore import ReproFile, replay_repro, reproduces

pytestmark = pytest.mark.explore

CORPUS_DIR = pathlib.Path(__file__).parent / "repros"
CORPUS = sorted(CORPUS_DIR.glob("*.json"))


def test_corpus_is_not_empty():
    assert CORPUS, f"no repro files in {CORPUS_DIR}"


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
class TestCorpusReplay:
    def test_loads_and_reproduces(self, path):
        repro = ReproFile.load(path)
        assert reproduces(repro), (
            f"{path.name} no longer reproduces its "
            f"{repro.oracle!r} failure"
        )

    def test_failure_matches_the_recorded_oracle(self, path):
        repro = ReproFile.load(path)
        failure = replay_repro(repro).failure
        assert failure is not None
        assert failure.oracle == repro.oracle

    def test_witness_is_small(self, path):
        # Corpus hygiene: checked-in schedules stay shrunk — a witness
        # over 30 decisions is a sign shrinking regressed.
        repro = ReproFile.load(path)
        assert len(repro.decisions) <= 30

    def test_file_is_in_canonical_saved_form(self, path, tmp_path):
        # Repro files are committed artifacts: re-saving must be a
        # no-op so corpus diffs always mean semantic changes.
        repro = ReproFile.load(path)
        resaved = repro.save(tmp_path / path.name)
        assert resaved.read_text() == path.read_text()
