"""Direct tests of the DistributedCounter base-class contract."""

from __future__ import annotations

import pytest

from repro.api import CounterFactory, DistributedCounter
from repro.counters import CentralCounter
from repro.errors import ConfigurationError, ProtocolError
from repro.sim.network import Network
from repro.workloads import one_shot, run_sequence


class TestConstruction:
    def test_nonpositive_n_rejected(self):
        class Dummy(DistributedCounter):
            def begin_inc(self, pid, op_index):
                pass

        with pytest.raises(ConfigurationError):
            Dummy(Network(), 0)
        with pytest.raises(ConfigurationError):
            Dummy(Network(), -3)

    def test_client_ids_is_one_through_n(self):
        counter = CentralCounter(Network(), 7)
        assert list(counter.client_ids()) == [1, 2, 3, 4, 5, 6, 7]

    def test_network_property(self):
        network = Network()
        counter = CentralCounter(network, 3)
        assert counter.network is network
        assert counter.n == 3


class TestResultBookkeeping:
    def test_results_accumulate_in_order(self):
        network = Network()
        counter = CentralCounter(network, 4)
        run_sequence(counter, [2, 2, 2])
        assert counter.results_for(2) == [0, 1, 2]
        assert counter.results_for(3) == []

    def test_last_result_for(self):
        network = Network()
        counter = CentralCounter(network, 4)
        run_sequence(counter, [3, 3])
        assert counter.last_result_for(3) == 1

    def test_last_result_for_empty_raises(self):
        counter = CentralCounter(Network(), 4)
        with pytest.raises(ProtocolError):
            counter.last_result_for(1)

    def test_all_results_collects_everything(self):
        network = Network()
        counter = CentralCounter(network, 4)
        run_sequence(counter, one_shot(4))
        assert sorted(counter.all_results()) == [0, 1, 2, 3]

    def test_results_for_returns_copies(self):
        network = Network()
        counter = CentralCounter(network, 4)
        run_sequence(counter, [1])
        snapshot = counter.results_for(1)
        snapshot.append(999)
        assert counter.results_for(1) == [0]

    def test_result_times_monotone_per_processor(self):
        network = Network()
        counter = CentralCounter(network, 4)
        run_sequence(counter, [2, 2, 2])
        times = counter.result_times_for(2)
        assert times == sorted(times)
        assert len(times) == 3


class TestFactoryProtocol:
    def test_class_is_a_factory(self):
        factory: CounterFactory = CentralCounter
        network = Network()
        counter = factory(network, 5)
        assert isinstance(counter, DistributedCounter)

    def test_lambda_is_a_factory(self):
        factory: CounterFactory = lambda net, n: CentralCounter(
            net, n, server_id=n
        )
        counter = factory(Network(), 5)
        assert counter.server_id == 5
