"""Unit tests for tree geometry and the §4 identifier scheme."""

from __future__ import annotations

import pytest

from repro.core import ROOT, NodeAddr, TreeGeometry, lower_bound_k, paper_k_for
from repro.errors import ConfigurationError


class TestShape:
    def test_paper_shape_counts(self):
        geometry = TreeGeometry.paper_shape(3)
        assert geometry.arity == 3
        assert geometry.depth == 3
        assert geometry.leaf_count == 3**4 == 81

    def test_leaf_count_is_k_power_k_plus_one(self):
        for k in (2, 3, 4, 5):
            assert TreeGeometry.paper_shape(k).leaf_count == k ** (k + 1)

    def test_nodes_on_level(self):
        geometry = TreeGeometry.paper_shape(3)
        assert [geometry.nodes_on_level(level) for level in range(4)] == [1, 3, 9, 27]

    def test_total_inner_nodes_geometric_sum(self):
        geometry = TreeGeometry(arity=2, depth=3)
        assert geometry.total_inner_nodes() == 1 + 2 + 4 + 8

    def test_all_nodes_root_first(self):
        geometry = TreeGeometry(arity=2, depth=2)
        nodes = geometry.all_nodes()
        assert nodes[0] == ROOT
        assert len(nodes) == geometry.total_inner_nodes()

    def test_leaves_under(self):
        geometry = TreeGeometry.paper_shape(2)  # leaves = 8
        assert geometry.leaves_under(ROOT) == 8
        assert geometry.leaves_under(NodeAddr(1, 0)) == 4
        assert geometry.leaves_under(NodeAddr(2, 3)) == 2

    def test_for_processors_rounds_up(self):
        assert TreeGeometry.for_processors(8).arity == 2
        assert TreeGeometry.for_processors(9).arity == 3
        assert TreeGeometry.for_processors(81).arity == 3
        assert TreeGeometry.for_processors(82).arity == 4

    @pytest.mark.parametrize("arity,depth", [(1, 2), (2, 0), (0, 0)])
    def test_invalid_shapes_rejected(self, arity, depth):
        with pytest.raises(ConfigurationError):
            TreeGeometry(arity=arity, depth=depth)


class TestAdjacency:
    def test_parent_child_inverse(self):
        geometry = TreeGeometry.paper_shape(3)
        for level in range(geometry.depth):
            for index in range(geometry.nodes_on_level(level)):
                addr = NodeAddr(level, index)
                for child in geometry.children(addr):
                    assert geometry.parent(child) == addr

    def test_root_has_no_parent(self):
        with pytest.raises(ConfigurationError):
            TreeGeometry.paper_shape(2).parent(ROOT)

    def test_last_level_has_leaf_children(self):
        geometry = TreeGeometry.paper_shape(2)
        addr = NodeAddr(2, 0)
        assert geometry.children(addr) == []
        assert geometry.leaf_children(addr) == [1, 2]

    def test_leaf_children_partition_leaves(self):
        geometry = TreeGeometry.paper_shape(2)
        seen = []
        for index in range(geometry.nodes_on_level(geometry.depth)):
            seen.extend(geometry.leaf_children(NodeAddr(geometry.depth, index)))
        assert seen == list(range(1, geometry.leaf_count + 1))

    def test_leaf_children_only_on_last_level(self):
        geometry = TreeGeometry.paper_shape(2)
        with pytest.raises(ConfigurationError):
            geometry.leaf_children(NodeAddr(1, 0))

    def test_leaf_parent(self):
        geometry = TreeGeometry.paper_shape(2)
        assert geometry.leaf_parent(1) == NodeAddr(2, 0)
        assert geometry.leaf_parent(2) == NodeAddr(2, 0)
        assert geometry.leaf_parent(3) == NodeAddr(2, 1)
        assert geometry.leaf_parent(8) == NodeAddr(2, 3)

    def test_leaf_parent_bounds(self):
        geometry = TreeGeometry.paper_shape(2)
        with pytest.raises(ConfigurationError):
            geometry.leaf_parent(0)
        with pytest.raises(ConfigurationError):
            geometry.leaf_parent(9)

    def test_path_to_root_has_depth_plus_one_nodes(self):
        geometry = TreeGeometry.paper_shape(3)
        path = geometry.path_to_root(1)
        assert len(path) == geometry.depth + 1
        assert path[-1] == ROOT
        assert path[0] == geometry.leaf_parent(1)

    def test_out_of_range_addr_rejected(self):
        geometry = TreeGeometry.paper_shape(2)
        with pytest.raises(ConfigurationError):
            geometry.children(NodeAddr(1, 5))
        with pytest.raises(ConfigurationError):
            geometry.children(NodeAddr(7, 0))


class TestIdentifierScheme:
    def test_intervals_disjoint_and_within_n(self):
        geometry = TreeGeometry.paper_shape(3)
        seen: set[int] = set()
        for addr in geometry.all_nodes():
            if addr.is_root:
                continue
            interval = geometry.id_interval(addr)
            ids = set(interval)
            assert not ids & seen, f"overlap at {addr}"
            seen |= ids
        assert max(seen) == geometry.max_interval_id() == 3 * 3**3
        assert geometry.max_interval_id() <= geometry.leaf_count

    def test_interval_width_shrinks_with_level(self):
        geometry = TreeGeometry.paper_shape(3)
        widths = [
            len(geometry.id_interval(NodeAddr(level, 0)))
            for level in range(1, geometry.depth + 1)
        ]
        assert widths == [9, 3, 1]  # k^(k-i) for i = 1..k

    def test_levels_occupy_disjoint_bands(self):
        geometry = TreeGeometry.paper_shape(2)
        band = geometry.arity**geometry.depth
        for addr in geometry.all_nodes():
            if addr.is_root:
                continue
            interval = geometry.id_interval(addr)
            assert (addr.level - 1) * band < interval.start
            assert interval.stop - 1 <= addr.level * band

    def test_root_has_no_interval(self):
        with pytest.raises(ConfigurationError):
            TreeGeometry.paper_shape(2).id_interval(ROOT)

    def test_initial_workers_unique_among_non_root(self):
        geometry = TreeGeometry.paper_shape(3)
        workers = [
            geometry.initial_worker(addr)
            for addr in geometry.all_nodes()
            if not addr.is_root
        ]
        assert len(workers) == len(set(workers))

    def test_root_initial_worker_is_one(self):
        assert TreeGeometry.paper_shape(4).initial_worker(ROOT) == 1

    def test_processor_requirement_covers_everything(self):
        for k in (2, 3, 4):
            geometry = TreeGeometry.paper_shape(k)
            requirement = geometry.processor_requirement()
            assert requirement >= geometry.leaf_count
            assert requirement >= geometry.max_interval_id()
            assert requirement >= geometry.root_walk_budget()


class TestBoundCurve:
    def test_lower_bound_k_solves_the_equation(self):
        for k in (2, 3, 4, 5, 6):
            n = k ** (k + 1)
            assert lower_bound_k(n) == pytest.approx(k, abs=1e-6)

    def test_lower_bound_k_monotone(self):
        values = [lower_bound_k(n) for n in (2, 10, 100, 10_000, 10**8)]
        assert values == sorted(values)

    def test_lower_bound_k_small_n(self):
        assert lower_bound_k(1) == 1.0
        assert lower_bound_k(0) == 1.0

    def test_paper_k_for_matches_for_processors(self):
        for n in (2, 8, 9, 81, 82, 1024, 1025):
            assert paper_k_for(n) == TreeGeometry.for_processors(n).arity


class TestNodeAddr:
    def test_root_flag(self):
        assert ROOT.is_root
        assert not NodeAddr(1, 0).is_root

    def test_key_round_trip(self):
        addr = NodeAddr(2, 5)
        assert addr.key() == (2, 5)

    def test_str(self):
        assert str(ROOT) == "root"
        assert str(NodeAddr(1, 2)) == "node(1,2)"

    def test_ordering(self):
        assert ROOT < NodeAddr(1, 0) < NodeAddr(1, 1) < NodeAddr(2, 0)
