"""Tests for the congestion (store-and-forward queueing) model."""

from __future__ import annotations

import pytest

from repro.core import TreeCounter
from repro.counters import BitonicCountingNetwork, CentralCounter
from repro.sim import CongestedDelay, Network
from repro.sim.messages import Message
from repro.sim.processor import InertProcessor
from repro.workloads import one_shot, run_concurrent, run_sequence


class TestCongestedDelayMechanics:
    def test_lone_message_takes_latency_plus_service(self):
        policy = CongestedDelay(latency=1.0, service=2.0)
        message = Message(sender=1, receiver=2, kind="m", send_time=0.0)
        assert policy.delay(message) == 3.0

    def test_messages_queue_at_a_busy_receiver(self):
        policy = CongestedDelay(latency=1.0, service=1.0)
        first = Message(sender=1, receiver=9, kind="m", send_time=0.0)
        second = Message(sender=2, receiver=9, kind="m", send_time=0.0)
        third = Message(sender=3, receiver=9, kind="m", send_time=0.0)
        assert policy.delay(first) == 2.0   # done at t=2
        assert policy.delay(second) == 3.0  # waits for the server
        assert policy.delay(third) == 4.0

    def test_different_receivers_do_not_queue_on_each_other(self):
        policy = CongestedDelay(latency=1.0, service=1.0)
        a = Message(sender=1, receiver=2, kind="m", send_time=0.0)
        b = Message(sender=1, receiver=3, kind="m", send_time=0.0)
        assert policy.delay(a) == 2.0
        assert policy.delay(b) == 2.0

    def test_idle_receiver_serves_immediately(self):
        policy = CongestedDelay(latency=1.0, service=1.0)
        early = Message(sender=1, receiver=2, kind="m", send_time=0.0)
        late = Message(sender=1, receiver=2, kind="m", send_time=50.0)
        policy.delay(early)
        assert policy.delay(late) == 2.0  # queue drained long ago

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CongestedDelay(service=0.0)
        with pytest.raises(ValueError):
            CongestedDelay(latency=-1.0)


class TestCompletionTimeIsGatedByTheBottleneck:
    def test_central_batch_takes_theta_n_time(self):
        n = 128
        network = Network(policy=CongestedDelay())
        counter = CentralCounter(network, n)
        run_concurrent(counter, [one_shot(n)])
        # The server receives n-1 requests one at a time.
        assert network.now >= (n - 1) * 1.0

    def test_counting_network_batch_finishes_much_faster(self):
        n = 128
        central_network = Network(policy=CongestedDelay())
        central = CentralCounter(central_network, n)
        run_concurrent(central, [one_shot(n)])
        cn_network = Network(policy=CongestedDelay())
        cn = BitonicCountingNetwork(cn_network, n)
        run_concurrent(cn, [one_shot(n)])
        assert cn_network.now < central_network.now / 2

    def test_completion_time_at_least_max_receive_load(self):
        # The hottest receiver serially serves everything sent to it.
        for factory in (CentralCounter, BitonicCountingNetwork, TreeCounter):
            network = Network(policy=CongestedDelay())
            counter = factory(network, 64)
            run_concurrent(counter, [one_shot(64)])
            max_received = max(
                network.trace.received_by(p)
                for p in range(1, network.processor_count + 1)
            )
            assert network.now >= max_received * 1.0

    def test_sequential_correctness_unaffected_by_congestion(self):
        network = Network(policy=CongestedDelay(latency=0.5, service=2.0))
        counter = TreeCounter(network, 81)
        result = run_sequence(counter, one_shot(81))
        assert result.values() == list(range(81))
