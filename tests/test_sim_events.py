"""Unit tests for the discrete-event queue."""

from __future__ import annotations

import pytest

from repro.sim.events import Event, EventQueue


class TestEventQueueBasics:
    def test_starts_empty_at_time_zero(self):
        queue = EventQueue()
        assert len(queue) == 0
        assert not queue
        assert queue.now == 0.0

    def test_schedule_returns_event_with_absolute_time(self):
        queue = EventQueue()
        event = queue.schedule(2.5, lambda: None)
        assert isinstance(event, Event)
        assert event.time == 2.5
        assert len(queue) == 1

    def test_pop_advances_now(self):
        queue = EventQueue()
        queue.schedule(3.0, lambda: None)
        queue.pop()
        assert queue.now == 3.0

    def test_negative_delay_rejected(self):
        queue = EventQueue()
        with pytest.raises(ValueError):
            queue.schedule(-0.1, lambda: None)

    def test_zero_delay_allowed(self):
        queue = EventQueue()
        queue.schedule(0.0, lambda: None)
        assert len(queue) == 1

    def test_clear_drops_pending_events(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1.0, lambda: fired.append(1))
        queue.clear()
        assert not queue
        assert fired == []

    def test_clear_resets_simulated_time(self):
        queue = EventQueue()
        queue.schedule(3.0, lambda: None)
        queue.run_next()
        assert queue.now == 3.0
        queue.schedule(1.0, lambda: None)
        queue.clear()
        assert queue.now == 0.0
        # The reused queue starts a fresh timeline, not the abandoned one.
        queue.schedule(2.0, lambda: None)
        queue.run_next()
        assert queue.now == 2.0


class TestEventOrdering:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.schedule(5.0, lambda: order.append("late"))
        queue.schedule(1.0, lambda: order.append("early"))
        queue.schedule(3.0, lambda: order.append("middle"))
        while queue:
            queue.run_next()
        assert order == ["early", "middle", "late"]

    def test_ties_break_fifo(self):
        queue = EventQueue()
        order = []
        for tag in range(10):
            queue.schedule(1.0, lambda t=tag: order.append(t))
        while queue:
            queue.run_next()
        assert order == list(range(10))

    def test_relative_scheduling_compounds(self):
        queue = EventQueue()
        times = []

        def chain():
            times.append(queue.now)
            if len(times) < 3:
                queue.schedule(2.0, chain)

        queue.schedule(2.0, chain)
        while queue:
            queue.run_next()
        assert times == [2.0, 4.0, 6.0]

    def test_event_scheduled_during_run_is_executed(self):
        queue = EventQueue()
        fired = []
        queue.schedule(1.0, lambda: queue.schedule(0.0, lambda: fired.append(1)))
        while queue:
            queue.run_next()
        assert fired == [1]

    def test_same_time_nested_event_runs_after_existing(self):
        queue = EventQueue()
        order = []
        queue.schedule(1.0, lambda: (order.append("a"), queue.schedule(0.0, lambda: order.append("c"))))
        queue.schedule(1.0, lambda: order.append("b"))
        while queue:
            queue.run_next()
        assert order == ["a", "b", "c"]


class TestDeterminism:
    def test_identical_schedules_pop_identically(self):
        def build():
            queue = EventQueue()
            order = []
            for tag in range(50):
                queue.schedule((tag * 7) % 5 + 0.5, lambda t=tag: order.append(t))
            while queue:
                queue.run_next()
            return order

        assert build() == build()
