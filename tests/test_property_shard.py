"""Stateful property test for :class:`repro.shard.map.CounterShardMap`.

A Hypothesis rule machine drives a random interleaving of keyed
increments, batched windows, shard splits, merges, and crash drills
against the real map, mirroring every increment into a plain dict
model.  After every rule the map must agree with the model exactly
(snapshot == model, per-key ``value_of`` == model count) and its own
conservation invariants (:meth:`CounterShardMap.verify`) must hold —
no matter how the keyspace was resharded along the way.
"""

from __future__ import annotations

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.shard import CounterShardMap

pytestmark = pytest.mark.shard

KEYS = st.sampled_from([f"acct:{i:02d}" for i in range(12)])


class ShardMapMachine(RuleBasedStateMachine):
    """Random inc/split/merge/failover vs. a dict model."""

    def __init__(self) -> None:
        super().__init__()
        # central[standby] tolerates crashes, so the failover rule is
        # exercisable; sim runtime flushes batches inline.
        self.map = CounterShardMap(
            "central[standby]", 4, shards=2, seed=7, batch_max=8
        )
        self.model: dict[str, int] = {}

    @rule(key=KEYS)
    def inc_one(self, key: str) -> None:
        value = self.map.inc(key)
        assert value == self.model.get(key, 0)
        self.model[key] = self.model.get(key, 0) + 1

    @rule(keys=st.lists(KEYS, min_size=1, max_size=10))
    def inc_window(self, keys: list[str]) -> None:
        # One flush may span several shards and several batch_max-sized
        # traversals; values must still decompose per key, in order.
        values = self.map.apply(keys)
        for key, value in zip(keys, values):
            assert value == self.model.get(key, 0)
            self.model[key] = self.model.get(key, 0) + 1

    @rule(pick=st.integers(min_value=0, max_value=31))
    def split_some_shard(self, pick: int) -> None:
        ids = self.map.router.shard_ids()
        target = ids[pick % len(ids)]
        if self.map.router.range_of(target).width < 2:
            return  # un-splittable sliver; astronomically unlikely
        new_id = self.map.split(target)
        assert new_id in self.map.router.shard_ids()

    @rule(pick=st.integers(min_value=0, max_value=31))
    def merge_some_pair(self, pick: int) -> None:
        ids = self.map.router.shard_ids()
        if len(ids) < 2:
            return
        survivor = ids[pick % (len(ids) - 1)]
        absorbed = ids[pick % (len(ids) - 1) + 1]
        self.map.merge(survivor, absorbed)
        assert absorbed not in self.map.router.shard_ids()

    @rule(pick=st.integers(min_value=0, max_value=31))
    def crash_drill(self, pick: int) -> None:
        ids = self.map.router.shard_ids()
        self.map.failover(ids[pick % len(ids)])

    @invariant()
    def map_matches_model(self) -> None:
        assert self.map.snapshot() == {
            key: count for key, count in self.model.items() if count
        }
        assert self.map.total_ops == sum(self.model.values())

    @invariant()
    def conservation_holds(self) -> None:
        self.map.verify()

    @invariant()
    def lookups_match_model(self) -> None:
        for key in ("acct:00", "acct:07"):
            assert self.map.value_of(key) == self.model.get(key, 0)


ShardMapMachine.TestCase.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)

TestShardMapMachine = ShardMapMachine.TestCase
