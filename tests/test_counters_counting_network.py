"""Unit tests for the bitonic counting network."""

from __future__ import annotations

import pytest

from repro.counters import BitonicCountingNetwork
from repro.counters.counting_network import bitonic_layers, step_property_holds
from repro.errors import ConfigurationError
from repro.sim.network import Network
from repro.sim.policies import RandomDelay
from repro.workloads import one_shot, run_concurrent, run_sequence, shuffled


class TestBitonicConstruction:
    def test_width_two_is_single_balancer(self):
        layers = bitonic_layers(2)
        assert layers == [[(0, 1)]]

    def test_depth_is_log_squared(self):
        # Bitonic[w] has log(w)·(log(w)+1)/2 layers.
        for width, expected in [(2, 1), (4, 3), (8, 6), (16, 10)]:
            assert len(bitonic_layers(width)) == expected

    def test_every_layer_is_a_perfect_matching(self):
        for width in (2, 4, 8, 16):
            for layer in bitonic_layers(width):
                wires = [w for balancer in layer for w in balancer]
                assert sorted(wires) == list(range(width))

    def test_non_power_of_two_rejected(self):
        for width in (0, 3, 6, 12):
            with pytest.raises(ConfigurationError):
                bitonic_layers(width)

    def test_step_property_helper(self):
        assert step_property_holds([3, 3, 2, 2])
        assert step_property_holds([1, 1, 1, 1])
        assert not step_property_holds([2, 3, 2, 2])  # later wire ahead
        assert not step_property_holds([4, 2, 2, 2])  # gap of 2


class TestCounterCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 7, 16, 30])
    def test_sequential_values(self, n):
        network = Network()
        counter = BitonicCountingNetwork(network, n)
        result = run_sequence(counter, one_shot(n))
        assert result.values() == list(range(n))

    @pytest.mark.parametrize("width", [2, 4, 8])
    def test_explicit_widths(self, width):
        network = Network()
        counter = BitonicCountingNetwork(network, 24, width=width)
        result = run_sequence(counter, one_shot(24))
        assert result.values() == list(range(24))

    def test_shuffled_order(self):
        network = Network()
        counter = BitonicCountingNetwork(network, 16, width=4)
        result = run_sequence(counter, shuffled(16, seed=1))
        assert result.values() == list(range(16))

    def test_concurrent_unique_values(self):
        network = Network()
        counter = BitonicCountingNetwork(network, 32, width=8)
        result = run_concurrent(counter, [one_shot(32)])
        assert sorted(result.values()) == list(range(32))

    def test_concurrent_under_random_delays(self):
        network = Network(policy=RandomDelay(seed=11))
        counter = BitonicCountingNetwork(network, 16, width=4)
        result = run_concurrent(counter, [one_shot(16)])
        assert sorted(result.values()) == list(range(16))

    def test_invalid_width_rejected(self):
        with pytest.raises(ConfigurationError):
            BitonicCountingNetwork(Network(), 8, width=6)


class TestStepProperty:
    @pytest.mark.parametrize("width", [2, 4, 8])
    def test_step_property_in_quiescent_states(self, width):
        # The AHS91 theorem: in any quiescent state the exit counts form
        # a step.  Check after every sequential prefix.
        network = Network()
        counter = BitonicCountingNetwork(network, 3 * width, width=width)
        for op_index, pid in enumerate(one_shot(3 * width)):
            counter.begin_inc(pid, op_index)
            network.run_until_quiescent()
            assert step_property_holds(counter.exit_counts), (
                f"after {op_index + 1} tokens: {counter.exit_counts}"
            )

    def test_step_property_after_concurrent_batches(self):
        network = Network(policy=RandomDelay(seed=3))
        counter = BitonicCountingNetwork(network, 32, width=8)
        run_concurrent(counter, [one_shot(32), one_shot(32)])
        assert step_property_holds(counter.exit_counts)
        assert sum(counter.exit_counts) == 64


class TestLoadShape:
    def test_width_spreads_the_bottleneck(self):
        n = 64
        bottlenecks = {}
        for width in (2, 8):
            network = Network()
            counter = BitonicCountingNetwork(network, n, width=width)
            result = run_sequence(counter, one_shot(n))
            bottlenecks[width] = result.bottleneck_load()
        assert bottlenecks[8] < bottlenecks[2]

    def test_bottleneck_still_linear_in_n_at_fixed_width(self):
        loads = {}
        for n in (32, 128):
            network = Network()
            counter = BitonicCountingNetwork(network, n, width=4)
            result = run_sequence(counter, one_shot(n))
            loads[n] = result.bottleneck_load()
        assert loads[128] >= 3 * loads[32]
