"""EventQueue.clear() and Network.reset(): substrate reuse contracts.

A long-lived harness may rebuild counters on one network across
consecutive runs.  `reset()` must return the substrate to a
from-scratch state — time, uids, in-flight accounting, trace counters,
policy stream and fault-plan ledger — so run N+1 is byte-identical to a
fresh network's run, including under an installed FaultPlan.
"""

from __future__ import annotations

import pytest

from repro.sim.events import EventQueue
from repro.sim.faults import parse_fault_spec
from repro.sim.messages import NO_OP
from repro.sim.network import Network
from repro.sim.policies import RandomDelay
from repro.sim.processor import InertProcessor
from repro.sim.trace import TraceLevel


class TestEventQueueClear:
    def test_clear_empties_and_rewinds_time(self):
        queue = EventQueue()
        fired = []
        queue.schedule(5.0, lambda: fired.append("a"))
        queue.schedule(9.0, lambda: fired.append("b"))
        queue.run_next()
        assert queue.now == 5.0
        queue.clear()
        assert len(queue) == 0
        assert queue.now == 0.0
        assert fired == ["a"]  # the abandoned event never fires

    def test_cleared_queue_is_indistinguishable_from_fresh(self):
        used = EventQueue()
        for time in (1.0, 2.0, 3.0):
            used.schedule(time, lambda: None)
        while used:
            used.run_next()
        used.clear()
        fresh = EventQueue()
        order_used, order_fresh = [], []
        for queue, order in ((used, order_used), (fresh, order_fresh)):
            queue.schedule(2.0, lambda o=order: o.append("late"))
            queue.schedule(2.0, lambda o=order: o.append("late2"))
            queue.schedule(1.0, lambda o=order: o.append("early"))
            while queue:
                queue.run_next()
        # Same firing order => the tie-break counter restarted too.
        assert order_used == order_fresh == ["early", "late", "late2"]
        assert used.now == fresh.now == 2.0


def _blast(network, messages=120):
    count = network.processor_count
    for index in range(messages):
        network.send(
            (index % count) + 1, ((index + 1) % count) + 1, "m", {"i": index}
        )
    network.run_until_quiescent()


def _substrate_state(network):
    return {
        "now": network.now,
        "in_flight": network.in_flight,
        "events_executed": network.events_executed,
        "active_op": network.active_op,
        "quiescent": network.is_quiescent(),
        "loads": network.trace.loads(),
        "total": network.trace.total_messages,
    }


class TestNetworkReset:
    def _fresh(self, **kwargs):
        network = Network(policy=RandomDelay(seed=6), **kwargs)
        network.register_all([InertProcessor(pid) for pid in (1, 2, 3)])
        return network

    def test_reset_restores_the_initial_substrate_state(self):
        network = self._fresh()
        _blast(network)
        assert network.now > 0 and network.events_executed > 0
        network.reset()
        assert _substrate_state(network) == {
            "now": 0.0,
            "in_flight": 0,
            "events_executed": 0,
            "active_op": NO_OP,
            "quiescent": True,
            "loads": {},
            "total": 0,
        }

    def test_reset_discards_pending_events(self):
        network = self._fresh()
        network.send(1, 2, "m", {})
        assert network.in_flight == 1  # not yet delivered
        network.reset()
        assert network.in_flight == 0
        assert network.run_until_quiescent() == 0  # nothing left to run

    def test_second_run_equals_a_fresh_networks_run(self):
        reused = self._fresh()
        _blast(reused)
        reused.reset()
        _blast(reused)
        fresh = self._fresh()
        _blast(fresh)
        assert reused.trace.records == fresh.trace.records
        assert reused.trace.loads() == fresh.trace.loads()

    def test_processors_stay_registered_across_reset(self):
        network = self._fresh()
        _blast(network)
        network.reset()
        assert network.processor_count == 3
        assert network.has_processor(2)

    def test_trace_object_is_replaced_and_loads_path_rebound(self):
        # LOADS delivery writes through pre-bound dict aliases; reset
        # must rebind them to the new trace or the counters go stale.
        network = Network(
            policy=RandomDelay(seed=6), trace_level=TraceLevel.LOADS
        )
        network.register_all([InertProcessor(pid) for pid in (1, 2, 3)])
        _blast(network)
        old_trace = network.trace
        network.reset()
        assert network.trace is not old_trace
        _blast(network, 30)
        assert network.trace.total_messages == 30
        # Every delivery adds load at both endpoints (sent + received).
        assert sum(network.trace.loads().values()) == 60


class _CountingHook:
    """SchedulerHook that counts its choices and always picks FIFO."""

    def __init__(self):
        self.calls = 0

    def choose(self, ready):
        self.calls += 1
        return 0


class TestSchedulerHookClearing:
    def test_event_queue_clear_drops_the_installed_hook(self):
        queue = EventQueue()
        hook = _CountingHook()
        queue.install_hook(hook)
        assert queue.scheduler_hook is hook
        queue.schedule(1.0, lambda: None)
        queue.schedule(1.0, lambda: None)
        queue.run_many(10)
        assert hook.calls == 1  # one equal-time group consulted
        queue.clear()
        assert queue.scheduler_hook is None
        # Post-clear scheduling runs on the clean (unhooked) path.
        queue.schedule(1.0, lambda: None)
        queue.schedule(1.0, lambda: None)
        queue.run_many(10)
        assert hook.calls == 1

    def test_network_reset_drops_the_installed_hook(self):
        network = Network(policy=RandomDelay(seed=6))
        network.register_all([InertProcessor(pid) for pid in (1, 2, 3)])
        hook = _CountingHook()
        network.install_scheduler_hook(hook)
        assert network.scheduler_hook is hook
        _blast(network, 30)
        network.reset()
        assert network.scheduler_hook is None
        # Run N+1 must match a fresh network even though run N was
        # explored under a hook.
        _blast(network, 30)
        fresh = Network(policy=RandomDelay(seed=6))
        fresh.register_all([InertProcessor(pid) for pid in (1, 2, 3)])
        _blast(fresh, 30)
        assert network.trace.records == fresh.trace.records

    def test_installing_none_uninstalls(self):
        network = Network()
        hook = _CountingHook()
        network.install_scheduler_hook(hook)
        network.install_scheduler_hook(None)
        assert network.scheduler_hook is None


@pytest.mark.faults
class TestNetworkResetUnderFaults:
    SPEC = "drop=0.2,dup=0.1"

    def _fresh(self):
        network = Network(
            policy=RandomDelay(seed=6),
            fault_plan=parse_fault_spec(self.SPEC, seed=8),
        )
        network.register_all([InertProcessor(pid) for pid in (1, 2, 3)])
        return network

    def test_reset_clears_the_fault_ledger(self):
        network = self._fresh()
        _blast(network)
        assert sum(network.fault_plan.counts.values()) > 0
        network.reset()
        assert network.fault_plan.counts == {}
        assert network.fault_plan.events == []
        assert network.trace.fault_counts() == {}

    def test_faulty_second_run_replays_the_first_exactly(self):
        network = self._fresh()
        _blast(network)
        first = (
            network.trace.loads(),
            network.fault_plan.counts,
            list(network.fault_plan.events),
        )
        network.reset()
        _blast(network)
        second = (
            network.trace.loads(),
            network.fault_plan.counts,
            list(network.fault_plan.events),
        )
        assert first == second

    def test_reset_keeps_the_faulty_send_path_installed(self):
        network = self._fresh()
        _blast(network)
        network.reset()
        assert "send" in network.__dict__  # still the faulty variant
        _blast(network)
        assert sum(network.fault_plan.counts.values()) > 0
