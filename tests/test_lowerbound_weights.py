"""Unit tests for the weight-function machinery."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.lowerbound import (
    LedgerStep,
    am_gm_holds,
    evaluate_ledger,
    weight_of,
)


class TestWeightOf:
    def test_zero_loads_give_geometric_sum(self):
        # All m = 0: w = sum (0+1)/2^j = 1 - 2^-l.
        value = weight_of([1, 2, 3], loads={}, base=2.0)
        assert value == pytest.approx(1 / 2 + 1 / 4 + 1 / 8)

    def test_loads_scale_terms(self):
        value = weight_of([5], loads={5: 3}, base=2.0)
        assert value == pytest.approx(4 / 2)

    def test_positions_are_one_based(self):
        # First label at exponent 1, second at exponent 2.
        value = weight_of([1, 2], loads={1: 1, 2: 7}, base=2.0)
        assert value == pytest.approx(2 / 2 + 8 / 4)

    def test_base_affects_decay(self):
        fast = weight_of([1, 2, 3], loads={}, base=10.0)
        slow = weight_of([1, 2, 3], loads={}, base=2.0)
        assert fast < slow

    def test_base_must_exceed_one(self):
        with pytest.raises(ConfigurationError):
            weight_of([1], loads={}, base=1.0)

    def test_empty_list_weight_zero(self):
        assert weight_of([], loads={}, base=2.0) == 0.0


class TestEvaluateLedger:
    def _steps(self):
        return [
            LedgerStep(
                op_index=0, q_list=(9, 1), chosen_list_length=2, loads_before={}
            ),
            LedgerStep(
                op_index=1,
                q_list=(9, 1, 2),
                chosen_list_length=3,
                loads_before={9: 0, 1: 2, 2: 2},
            ),
            LedgerStep(
                op_index=2,
                q_list=(9, 1, 2),
                chosen_list_length=3,
                loads_before={9: 0, 1: 4, 2: 4},
            ),
        ]

    def test_weights_computed_per_step(self):
        report = evaluate_ledger(self._steps(), base=2.0)
        assert len(report.weights) == 3
        assert report.weights[0] == pytest.approx(1 / 2 + 1 / 4)

    def test_growth_counted(self):
        report = evaluate_ledger(self._steps(), base=2.0)
        assert report.growth_steps == 2
        assert report.shrink_steps == 0
        assert report.monotone

    def test_shrink_detected(self):
        steps = [
            LedgerStep(op_index=0, q_list=(1, 2), chosen_list_length=1,
                       loads_before={2: 10}),
            LedgerStep(op_index=1, q_list=(1,), chosen_list_length=1,
                       loads_before={2: 10}),
        ]
        report = evaluate_ledger(steps, base=2.0)
        assert report.shrink_steps == 1
        assert not report.monotone

    def test_geometric_sum_and_am_gm(self):
        report = evaluate_ledger(self._steps(), base=2.0)
        assert report.geometric_sum == pytest.approx(2**-1 + 2**-2 + 2**-2)
        # mean length (1+2+2)/3.
        assert report.am_gm_floor == pytest.approx(3 * 2 ** (-5 / 3))
        assert am_gm_holds(report)

    def test_empty_ledger_rejected(self):
        with pytest.raises(ConfigurationError):
            evaluate_ledger([], base=2.0)

    def test_list_lengths_exposed(self):
        report = evaluate_ledger(self._steps(), base=2.0)
        assert report.list_lengths == (1, 2, 2)

    def test_ledger_step_properties(self):
        step = self._steps()[1]
        assert step.q == 9
        assert step.list_length == 2
