"""Unit tests for message and record types."""

from __future__ import annotations

from repro.sim.messages import NO_OP, Message, MessageRecord


class TestMessage:
    def test_defaults(self):
        message = Message(sender=1, receiver=2, kind="ping")
        assert message.op_index == NO_OP
        assert message.payload == {}
        assert message.uid == -1

    def test_str_is_informative(self):
        message = Message(sender=1, receiver=2, kind="inc", op_index=3)
        text = str(message)
        assert "1 -> 2" in text
        assert "inc" in text
        assert "op 3" in text

    def test_frozen(self):
        message = Message(sender=1, receiver=2, kind="x")
        try:
            message.sender = 9  # type: ignore[misc]
            raised = False
        except AttributeError:
            raised = True
        assert raised


class TestMessageRecord:
    def test_from_message_copies_fields(self):
        message = Message(
            sender=3, receiver=7, kind="value", payload={"v": 5},
            op_index=2, uid=11, send_time=1.5,
        )
        record = MessageRecord.from_message(message, deliver_time=2.5)
        assert record.sender == 3
        assert record.receiver == 7
        assert record.kind == "value"
        assert record.op_index == 2
        assert record.uid == 11
        assert record.send_time == 1.5
        assert record.deliver_time == 2.5

    def test_endpoints(self):
        record = MessageRecord(
            sender=4, receiver=9, kind="x", op_index=0, uid=0,
            send_time=0.0, deliver_time=1.0,
        )
        assert record.endpoints() == (4, 9)

    def test_str_mentions_times_and_endpoints(self):
        record = MessageRecord(
            sender=4, receiver=9, kind="inc", op_index=1, uid=0,
            send_time=0.0, deliver_time=1.0,
        )
        text = str(record)
        assert "4 -> 9" in text
        assert "inc" in text
