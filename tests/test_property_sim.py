"""Property-based tests for the simulator substrate."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.events import EventQueue
from repro.sim.messages import MessageRecord
from repro.sim.network import Network
from repro.sim.policies import RandomDelay
from repro.sim.processor import InertProcessor
from repro.sim.trace import Trace

edges = st.lists(
    st.tuples(st.integers(1, 20), st.integers(1, 20)),
    min_size=0,
    max_size=60,
)


class TestTraceConservation:
    @given(edges=edges)
    def test_load_conservation(self, edges):
        """Σ_p m_p = 2 · messages, always (§3's accounting identity)."""
        trace = Trace()
        for uid, (sender, receiver) in enumerate(edges):
            trace.record(
                MessageRecord(
                    sender=sender, receiver=receiver, kind="m",
                    op_index=uid % 3, uid=uid, send_time=0.0, deliver_time=1.0,
                )
            )
        assert sum(trace.loads().values()) == 2 * len(edges)

    @given(edges=edges)
    def test_sent_plus_received_equals_load(self, edges):
        trace = Trace()
        for uid, (sender, receiver) in enumerate(edges):
            trace.record(
                MessageRecord(
                    sender=sender, receiver=receiver, kind="m",
                    op_index=0, uid=uid, send_time=0.0, deliver_time=1.0,
                )
            )
        for pid in range(1, 21):
            assert trace.load(pid) == trace.sent_by(pid) + trace.received_by(pid)

    @given(edges=edges)
    def test_bottleneck_is_max_load(self, edges):
        trace = Trace()
        for uid, (sender, receiver) in enumerate(edges):
            trace.record(
                MessageRecord(
                    sender=sender, receiver=receiver, kind="m",
                    op_index=0, uid=uid, send_time=0.0, deliver_time=1.0,
                )
            )
        pid, load = trace.bottleneck()
        assert load == max(trace.loads().values(), default=0)
        if edges:
            assert trace.load(pid) == load

    @given(edges=edges, boundary=st.integers(0, 3))
    def test_snapshot_plus_tail_equals_total(self, edges, boundary):
        """Loads before op i plus loads from op >= i equal total loads."""
        trace = Trace()
        for uid, (sender, receiver) in enumerate(edges):
            trace.record(
                MessageRecord(
                    sender=sender, receiver=receiver, kind="m",
                    op_index=uid % 3, uid=uid, send_time=0.0, deliver_time=1.0,
                )
            )
        before = trace.load_snapshot(boundary)
        tail: dict[int, int] = {}
        for op in range(boundary, 3):
            for pid, load in trace.load_within_op(op).items():
                tail[pid] = tail.get(pid, 0) + load
        combined = dict(before)
        for pid, load in tail.items():
            combined[pid] = combined.get(pid, 0) + load
        assert combined == trace.loads()


class TestEventQueueProperties:
    @given(delays=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=50))
    def test_pop_order_is_nondecreasing_in_time(self, delays):
        queue = EventQueue()
        for delay in delays:
            queue.schedule(delay, lambda: None)
        popped = []
        while queue:
            popped.append(queue.pop().time)
        assert popped == sorted(popped)

    @given(delays=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=30))
    def test_now_never_goes_backwards(self, delays):
        queue = EventQueue()
        for delay in delays:
            queue.schedule(delay, lambda: None)
        previous = queue.now
        while queue:
            queue.pop()
            assert queue.now >= previous
            previous = queue.now


class TestNetworkProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        sends=st.lists(
            st.tuples(st.integers(1, 8), st.integers(1, 8)),
            min_size=0,
            max_size=40,
        ),
        seed=st.integers(0, 1000),
    )
    def test_every_sent_message_is_delivered_once(self, sends, seed):
        network = Network(policy=RandomDelay(seed=seed))
        network.register_all([InertProcessor(pid) for pid in range(1, 9)])
        for sender, receiver in sends:
            network.send(sender, receiver, "m", {})
        network.run_until_quiescent()
        assert network.trace.total_messages == len(sends)
        assert network.in_flight == 0

    @settings(max_examples=25, deadline=None)
    @given(
        sends=st.lists(
            st.tuples(st.integers(1, 8), st.integers(1, 8)),
            min_size=0,
            max_size=40,
        ),
        seed=st.integers(0, 1000),
    )
    def test_loads_independent_of_delays(self, sends, seed):
        """For a fixed send multiset, loads never depend on delivery."""

        def loads_with(policy):
            network = Network(policy=policy)
            network.register_all([InertProcessor(pid) for pid in range(1, 9)])
            for sender, receiver in sends:
                network.send(sender, receiver, "m", {})
            network.run_until_quiescent()
            return network.trace.loads()

        assert loads_with(RandomDelay(seed=seed)) == loads_with(
            RandomDelay(seed=seed + 1)
        )
