"""Property-based tests for the paper's tree counter itself.

Hypothesis drives random sub-workloads, orders and delivery seeds
through the full counter and asserts the §4 lemma checkers plus global
conservation laws on every execution.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TreeCounter, TreeGeometry
from repro.core.invariants import check_all
from repro.lowerbound import check_hot_spot
from repro.sim.network import Network
from repro.sim.policies import RandomDelay, UnitDelay
from repro.workloads import run_sequence


@settings(max_examples=25, deadline=None)
@given(
    k=st.integers(2, 3),
    order_seed=st.integers(0, 10_000),
    subset_fraction=st.floats(0.3, 1.0),
    delivery_seed=st.one_of(st.none(), st.integers(0, 10_000)),
)
def test_lemmas_hold_on_arbitrary_one_shot_subsets(
    k, order_seed, subset_fraction, delivery_seed
):
    """Any subset of processors, any order, any delays: lemmas hold.

    The paper's bound is for the full one-shot workload; a prefix/subset
    only lowers traffic, so every lemma must still pass.
    """
    import random

    n = k ** (k + 1)
    rng = random.Random(order_seed)
    population = list(range(1, n + 1))
    rng.shuffle(population)
    subset = population[: max(1, int(subset_fraction * n))]
    policy = UnitDelay() if delivery_seed is None else RandomDelay(seed=delivery_seed)
    network = Network(policy=policy)
    counter = TreeCounter(network, n)
    result = run_sequence(counter, subset)

    assert result.values() == list(range(len(subset)))
    for report in check_all(counter, result):
        assert report.holds, f"{report.lemma}: {report.detail}"
    assert check_hot_spot(result).holds
    # Conservation: every send has exactly one receive.
    assert sum(result.trace.loads().values()) == 2 * result.total_messages


@settings(max_examples=15, deadline=None)
@given(k=st.integers(2, 3), seed=st.integers(0, 10_000))
def test_roles_never_alias_after_any_run(k, seed):
    """No two inner nodes ever share a worker (the id discipline)."""
    import random

    n = k ** (k + 1)
    order = list(range(1, n + 1))
    random.Random(seed).shuffle(order)
    network = Network()
    counter = TreeCounter(network, n)
    run_sequence(counter, order)
    workers = [
        role.worker
        for role in counter.registry.all_roles()
        if not role.addr.is_root
    ]
    assert len(workers) == len(set(workers))


@settings(max_examples=15, deadline=None)
@given(k=st.integers(2, 3), seed=st.integers(0, 10_000))
def test_message_kinds_are_closed(k, seed):
    """Only the four §4 message kinds ever appear on the wire."""
    import random

    n = k ** (k + 1)
    order = list(range(1, n + 1))
    random.Random(seed).shuffle(order)
    network = Network(policy=RandomDelay(seed=seed))
    counter = TreeCounter(network, n)
    run_sequence(counter, order)
    kinds = {record.kind for record in network.trace.records}
    assert kinds <= {"inc", "value", "handoff", "id-update"}


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_causality_send_before_delivery(seed):
    """Every record is delivered strictly after it was sent."""
    network = Network(policy=RandomDelay(seed=seed))
    counter = TreeCounter(network, 27)
    run_sequence(counter, list(range(1, 28)))
    for record in network.trace.records:
        assert record.deliver_time > record.send_time


@settings(max_examples=10, deadline=None)
@given(
    arity=st.integers(2, 4),
    depth=st.integers(1, 3),
    seed=st.integers(0, 1000),
)
def test_generalized_shapes_count_correctly(arity, depth, seed):
    """Non-paper shapes (the E10 family) still count correctly."""
    import random

    from repro.core import IntervalMode, TreePolicy

    geometry = TreeGeometry(arity=arity, depth=depth)
    n = min(geometry.leaf_count, 64)
    order = list(range(1, n + 1))
    random.Random(seed).shuffle(order)
    network = Network()
    counter = TreeCounter(
        network,
        n,
        geometry=geometry,
        policy=TreePolicy(
            retire_threshold=4 * arity, interval_mode=IntervalMode.WRAP
        ),
    )
    result = run_sequence(counter, order)
    assert result.values() == list(range(n))
