"""Wire-level edge cases of the keyed protocol (``repro.serve.keyed``).

Exercises the grammar corners a fuzzer finds first: missing/empty keys,
keys with spaces (which the space-delimited grammar necessarily reads
as extra arguments), keys at and over the 128-char bound, lines over
the reader's ``line_limit``, ``STATS`` on never-incremented keys, bad
deadlines, malformed admin commands — and the one semantic corner that
spans subsystems: request-id dedup surviving a shard split between the
original request and its retry.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.serve import KeyedCounterService
from repro.serve.resilience import ResilienceConfig

pytestmark = pytest.mark.shard


async def _request(service: KeyedCounterService, line: str) -> str:
    reader, writer = await asyncio.open_connection(
        service.host, service.port
    )
    try:
        writer.write(f"{line}\n".encode("ascii"))
        await writer.drain()
        return (await reader.readline()).decode("ascii").strip()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def _serve_and_ask(*lines: str, **service_kwargs) -> list[str]:
    """Run a fresh keyed service, send each line, return the replies."""

    async def go() -> list[str]:
        service = KeyedCounterService(
            "central", 4, port=0, shards=2, **service_kwargs
        )
        await service.start()
        try:
            return [await _request(service, line) for line in lines]
        finally:
            await service.stop()

    return asyncio.run(go())


class TestKeyGrammar:
    def test_inc_without_key_is_bad_request(self):
        (reply,) = _serve_and_ask("INC")
        assert reply == (
            "ERR BAD_REQUEST usage: INC <key> [rid] [deadline_ms>0]"
        )

    def test_key_with_spaces_reads_as_extra_args(self):
        # "my key with spaces" is four tokens: one too many for
        # INC <key> [rid] [deadline_ms] -> argument-count rejection.
        (reply,) = _serve_and_ask("INC my key with spaces")
        assert reply.startswith("ERR BAD_REQUEST usage: INC")

    def test_key_with_spaces_as_rid_deadline_is_bad_deadline(self):
        # Three tokens parse as key/rid/deadline; a non-numeric or
        # non-positive deadline is rejected, not silently misread.
        (a, b) = _serve_and_ask("INC my key spaces", "INC k r 0")
        assert a.startswith("ERR BAD_REQUEST usage: INC")
        assert b.startswith("ERR BAD_REQUEST usage: INC")

    def test_illegal_characters_are_bad_key(self):
        replies = _serve_and_ask("INC bad!key", "INC k%2F", "STATS ...x,")
        for reply in replies:
            assert reply.startswith("ERR BAD_KEY"), reply
        assert "1-128 characters" in replies[0]

    def test_key_length_boundary(self):
        legal = "k" * 128
        over = "k" * 129
        ok, bad, stats = _serve_and_ask(
            f"INC {legal}", f"INC {over}", f"STATS {legal}"
        )
        assert ok == "OK 0"
        assert bad.startswith("ERR BAD_KEY")
        assert f"key={legal} value=1" in stats

    def test_oversized_line_hits_the_reader_limit(self):
        # A 128-char key is legal by KEY_PATTERN but the framed line
        # exceeds a tight line_limit: the reader bound answers with
        # LINE_TOO_LONG and drops the connection (framing is lost past
        # an unterminated line); the service itself stays healthy and
        # a fresh connection serves normally.
        async def go() -> tuple[str, str, str]:
            service = KeyedCounterService(
                "central",
                4,
                port=0,
                shards=2,
                resilience=ResilienceConfig(line_limit=64),
            )
            await service.start()
            try:
                reader, writer = await asyncio.open_connection(
                    service.host, service.port
                )
                try:
                    writer.write(f"INC {'k' * 128}\n".encode())
                    await writer.drain()
                    first = (await reader.readline()).decode().strip()
                    closed = (await reader.readline()).decode()
                finally:
                    writer.close()
                    try:
                        await writer.wait_closed()
                    except (ConnectionResetError, BrokenPipeError):
                        pass
                second = await _request(service, "INC ok")
                return first, closed, second
            finally:
                await service.stop()

        first, closed, second = asyncio.run(go())
        assert first == (
            "ERR LINE_TOO_LONG protocol lines are capped at 64 bytes"
        )
        assert closed == ""  # EOF: the poisoned connection was dropped
        assert second == "OK 0"


class TestStatsGrammar:
    def test_unknown_key_is_a_zero_counter(self):
        # Placement is total: every legal key exists, value 0.
        (reply,) = _serve_and_ask("STATS never.touched")
        assert reply.startswith("STATS key=never.touched value=0 shard=")

    def test_stats_key_reflects_increments_and_placement(self):
        inc1, inc2, stats = _serve_and_ask(
            "INC hot", "INC hot", "STATS hot"
        )
        assert (inc1, inc2) == ("OK 0", "OK 1")
        key_part, value_part, shard_part = stats.split()[1:]
        assert key_part == "key=hot"
        assert value_part == "value=2"
        assert shard_part.startswith("shard=")

    def test_stats_with_two_keys_is_bad_request(self):
        (reply,) = _serve_and_ask("STATS one two")
        assert reply == "ERR BAD_REQUEST usage: STATS [key]"


class TestAdminGrammar:
    def test_split_and_merge_argument_validation(self):
        replies = _serve_and_ask(
            "SPLIT", "SPLIT x", "MERGE 0", "MERGE a b", "SPLIT 99",
            "MERGE 0 99",
        )
        assert replies[0] == "ERR BAD_REQUEST usage: SPLIT <shard_id>"
        assert replies[1] == "ERR BAD_REQUEST usage: SPLIT <shard_id>"
        assert replies[2] == (
            "ERR BAD_REQUEST usage: MERGE <survivor> <absorbed>"
        )
        assert replies[3] == (
            "ERR BAD_REQUEST usage: MERGE <survivor> <absorbed>"
        )
        assert replies[4].startswith("ERR BAD_REQUEST unknown shard 99")
        assert replies[5].startswith("ERR BAD_REQUEST unknown shard 99")

    def test_merge_requires_adjacency_on_the_wire(self):
        async def go() -> str:
            service = KeyedCounterService(
                "central", 4, port=0, shards=3
            )
            await service.start()
            try:
                return await _request(service, "MERGE 0 2")
            finally:
                await service.stop()

        reply = asyncio.run(go())
        assert reply.startswith("ERR BAD_REQUEST")
        assert "not adjacent" in reply


class TestRidDedupAcrossResharding:
    def test_retry_after_split_returns_the_committed_value(self):
        # The dedup ledger is service-global, not per-shard: a retry
        # must return the originally committed value even when the
        # key's shard was split (and the key possibly migrated)
        # between the attempts.
        async def go() -> dict[str, object]:
            service = KeyedCounterService(
                "central", 4, port=0, shards=2
            )
            await service.start()
            try:
                first = await _request(service, "INC acct:7 rid-1")
                # bump the key so a non-deduped retry would answer 1
                await _request(service, "INC acct:7")
                stats = await _request(service, "STATS acct:7")
                home = int(stats.rsplit("shard=", 1)[1])
                split_reply = await _request(service, f"SPLIT {home}")
                retry = await _request(service, "INC acct:7 rid-1")
                after = await _request(service, "STATS acct:7")
                return {
                    "first": first,
                    "split": split_reply,
                    "retry": retry,
                    "after": after,
                    "deduped": service.stats()["deduped"],
                    "served": service.served,
                }
            finally:
                await service.stop()

        result = asyncio.run(go())
        assert result["first"] == "OK 0"
        assert str(result["split"]).startswith("OK ")
        # the retry attaches to the committed op: same value, no
        # third increment
        assert result["retry"] == "OK 0"
        assert "value=2" in str(result["after"])
        assert result["deduped"] == 1
        assert result["served"] == 2

    def test_retry_after_merge_returns_the_committed_value(self):
        async def go() -> dict[str, object]:
            service = KeyedCounterService(
                "central", 4, port=0, shards=2
            )
            await service.start()
            try:
                first = await _request(service, "INC acct:7 rid-9")
                merged = await _request(service, "MERGE 0 1")
                retry = await _request(service, "INC acct:7 rid-9")
                return {
                    "first": first,
                    "merged": merged,
                    "retry": retry,
                    "shards": service.map.shard_count,
                }
            finally:
                await service.stop()

        result = asyncio.run(go())
        assert result["first"] == "OK 0"
        assert result["merged"] == "OK 0"
        assert result["retry"] == "OK 0"
        assert result["shards"] == 1
