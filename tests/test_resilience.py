"""Tests for the serving resilience layer.

Policy objects (`repro.serve.resilience`) are tested as pure units with
injected clocks and seeded rngs; service-level behavior (deadlines,
shedding, exactly-once dedup, graceful drain, the stranded-waiter
regression) runs against a real :class:`CounterService` on a loopback
socket.
"""

from __future__ import annotations

import asyncio
import random
import socket

import pytest

from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    OverloadedError,
    ServiceStoppedError,
)
from repro.serve import (
    CircuitBreaker,
    CounterService,
    DedupTable,
    ResilienceConfig,
    RetryBudget,
    RetryPolicy,
    run_load,
)

pytestmark = pytest.mark.resilience


class TestResilienceConfig:
    def test_defaults_are_valid(self):
        config = ResilienceConfig()
        assert config.max_backlog == 256
        assert config.default_deadline is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_backlog": -1},
            {"default_deadline": 0.0},
            {"default_deadline": -1.0},
            {"dedup_capacity": 0},
            {"line_limit": 8},
            {"drain_timeout": -0.1},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ResilienceConfig(**kwargs)

    def test_none_backlog_disables_shedding(self):
        assert ResilienceConfig(max_backlog=None).max_backlog is None


class TestDedupTable:
    def _future(self):
        loop = asyncio.new_event_loop()
        try:
            return loop.create_future()
        finally:
            loop.close()

    def test_commit_resolves_future_and_counts(self):
        table = DedupTable(capacity=4)
        future = self._future()
        table.create("a", future)
        table.commit("a", 7)
        assert future.result() == 7
        assert table.get("a").committed
        assert table.committed_total == 1

    def test_duplicate_create_rejected(self):
        table = DedupTable(capacity=4)
        table.create("a", self._future())
        with pytest.raises(ConfigurationError, match="already tracked"):
            table.create("a", self._future())

    def test_fail_removes_entry_so_retries_start_fresh(self):
        table = DedupTable(capacity=4)
        future = self._future()
        table.create("a", future)
        table.fail("a", OverloadedError("shed"))
        assert table.get("a") is None
        with pytest.raises(OverloadedError):
            future.result()
        # a retry may now register the rid again
        table.create("a", self._future())

    def test_eviction_drops_oldest_committed_first(self):
        table = DedupTable(capacity=2)
        for rid in ("a", "b"):
            table.create(rid, self._future())
            table.commit(rid, 0)
        pending = self._future()
        table.create("c", pending)
        assert len(table) == 2
        assert table.get("a") is None  # oldest committed evicted
        assert table.get("b") is not None
        assert table.get("c") is not None

    def test_pending_entries_never_evicted(self):
        table = DedupTable(capacity=1)
        table.create("p1", self._future())
        table.create("p2", self._future())
        assert len(table) == 2  # over capacity, but both still pending

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            DedupTable(capacity=0)


class TestRetryPolicy:
    def test_delay_is_full_jitter_under_the_cap(self):
        policy = RetryPolicy(attempts=5, base_delay=0.1, max_delay=0.4)
        rng = random.Random(42)
        for retry_index, ceiling in enumerate((0.1, 0.2, 0.4, 0.4)):
            for _ in range(50):
                delay = policy.delay(retry_index, rng)
                assert 0.0 <= delay <= ceiling

    def test_worst_case_latency_sums_attempts_and_backoff(self):
        policy = RetryPolicy(attempts=3, base_delay=0.1, max_delay=0.15)
        # 3 attempts x 1.0 + backoff ceilings 0.1 + 0.15
        assert policy.worst_case_latency(1.0) == pytest.approx(3.25)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"attempts": 0},
            {"base_delay": -0.1},
            {"base_delay": 0.5, "max_delay": 0.1},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)


class TestRetryBudget:
    def test_take_depletes(self):
        budget = RetryBudget(2)
        assert budget.take()
        assert budget.take()
        assert not budget.take()
        assert budget.used == 2
        assert budget.remaining == 0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryBudget(-1)


class TestCircuitBreaker:
    def _breaker(self, threshold=3, reset=10.0):
        clock = {"now": 100.0}
        breaker = CircuitBreaker(
            threshold, reset, clock=lambda: clock["now"]
        )
        return breaker, clock

    def test_closed_until_threshold_consecutive_failures(self):
        breaker, _ = self._breaker(threshold=3)
        assert breaker.state == "closed"
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_the_consecutive_count(self):
        breaker, _ = self._breaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_allows_exactly_one_probe(self):
        breaker, clock = self._breaker(threshold=1, reset=10.0)
        breaker.record_failure()
        assert breaker.state == "open"
        clock["now"] += 10.0
        assert breaker.state == "half-open"
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # racing callers refused
        assert breaker.state == "half-open"

    def test_probe_success_closes(self):
        breaker, clock = self._breaker(threshold=1, reset=10.0)
        breaker.record_failure()
        clock["now"] += 10.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_probe_failure_reopens_for_a_fresh_timeout(self):
        breaker, clock = self._breaker(threshold=1, reset=10.0)
        breaker.record_failure()
        clock["now"] += 10.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.trips == 2
        clock["now"] += 9.9
        assert not breaker.allow()
        clock["now"] += 0.1
        assert breaker.allow()

    @pytest.mark.parametrize(
        "kwargs", [{"failure_threshold": 0}, {"reset_timeout": 0.0}]
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(**kwargs)


def _service(spec="central", n=4, **kwargs):
    return CounterService(spec, n, port=0, **kwargs)


class TestServiceDeadlines:
    def test_deadline_expires_while_waiting_for_a_processor(self):
        async def go():
            # time_scale makes each op take real time, so one slow op
            # can hold every lease while a deadlined arrival waits
            service = _service("static-tree", n=1, time_scale=0.05)
            await service.start()
            try:
                slow = asyncio.create_task(service.inc())
                await asyncio.sleep(0.01)  # the lease is now taken
                with pytest.raises(DeadlineExceededError):
                    await service.inc(deadline=0.02)
                stats = service.stats()
                await slow
                return stats
            finally:
                await service.stop()

        stats = asyncio.run(go())
        assert stats["expired"] >= 1

    def test_expired_operation_still_commits_and_rid_recovers_it(self):
        async def go():
            service = _service("static-tree", n=1, time_scale=0.05)
            await service.start()
            try:
                with pytest.raises(DeadlineExceededError):
                    await service.inc(rid="r1", deadline=0.01)
                # the operation was injected: it commits in the
                # background, and a retry with the same rid gets its
                # value instead of double-counting
                value = await service.inc(rid="r1")
                stats = service.stats()
                return value, stats
            finally:
                await service.stop()

        value, stats = asyncio.run(go())
        assert value == 0
        assert stats["served"] == 1
        assert stats["rid_committed"] == 1
        assert stats["deduped"] == 1

    def test_default_deadline_from_config(self):
        async def go():
            service = _service(
                "static-tree",
                n=1,
                time_scale=0.05,
                resilience=ResilienceConfig(default_deadline=0.02),
            )
            await service.start()
            try:
                slow = asyncio.create_task(service.inc(deadline=5.0))
                await asyncio.sleep(0.01)
                with pytest.raises(DeadlineExceededError):
                    await service.inc()  # no explicit deadline
                await slow
            finally:
                await service.stop()

        asyncio.run(go())


class TestServiceShedding:
    def test_overload_sheds_beyond_the_backlog_cap(self):
        async def go():
            service = _service(
                "static-tree",
                n=1,
                time_scale=0.05,
                resilience=ResilienceConfig(max_backlog=1),
            )
            await service.start()
            try:
                first = asyncio.create_task(service.inc())
                await asyncio.sleep(0.01)  # lease taken
                queued = asyncio.create_task(service.inc())
                await asyncio.sleep(0.01)  # backlog now 1 (= cap)
                with pytest.raises(OverloadedError):
                    await service.inc()
                stats = service.stats()
                await asyncio.gather(first, queued)
                return stats, service.stats()
            finally:
                await service.stop()

        during, after = asyncio.run(go())
        assert during["shed"] == 1
        assert during["backlog"] == 1
        assert after["served"] == 2  # queued work still completed

    def test_shed_rid_is_forgotten_so_a_retry_can_succeed(self):
        async def go():
            service = _service(
                "static-tree",
                n=1,
                time_scale=0.05,
                resilience=ResilienceConfig(max_backlog=0),
            )
            await service.start()
            try:
                slow = asyncio.create_task(service.inc())
                await asyncio.sleep(0.01)
                with pytest.raises(OverloadedError):
                    await service.inc(rid="r")
                await slow  # capacity frees up
                value = await service.inc(rid="r")  # the retry
                return value, service.stats()
            finally:
                await service.stop()

        value, stats = asyncio.run(go())
        assert value == 1
        assert stats["served"] == 2
        assert stats["deduped"] == 0  # the retry was a fresh injection


class TestServiceDedup:
    def test_repeated_rid_returns_the_committed_value(self):
        async def go():
            service = _service()
            await service.start()
            try:
                first = await service.inc(rid="a")
                again = await service.inc(rid="a")
                return first, again, service.stats()
            finally:
                await service.stop()

        first, again, stats = asyncio.run(go())
        assert first == again == 0
        assert stats["served"] == 1
        assert stats["deduped"] == 1
        assert stats["rid_committed"] == 1

    def test_concurrent_same_rid_injects_once(self):
        async def go():
            service = _service(time_scale=0.02)
            await service.start()
            try:
                values = await asyncio.gather(
                    *(service.inc(rid="x") for _ in range(5))
                )
                return values, service.stats()
            finally:
                await service.stop()

        values, stats = asyncio.run(go())
        assert set(values) == {0}
        assert stats["served"] == 1
        assert stats["deduped"] == 4

    def test_distinct_rids_count_separately(self):
        async def go():
            service = _service()
            await service.start()
            try:
                values = [await service.inc(rid=f"r{i}") for i in range(4)]
                return values, service.stats()
            finally:
                await service.stop()

        values, stats = asyncio.run(go())
        assert sorted(values) == [0, 1, 2, 3]
        assert stats["rid_committed"] == 4
        assert stats["deduped"] == 0


class TestServiceLifecycle:
    def test_draining_service_refuses_new_work(self):
        async def go():
            service = _service()
            await service.start()
            try:
                service._draining = True  # what SHUTDOWN sets first
                with pytest.raises(ServiceStoppedError):
                    await service.inc()
            finally:
                await service.stop()

        asyncio.run(go())

    def test_graceful_drain_commits_inflight_work(self):
        async def go():
            service = _service(n=2, time_scale=0.05)
            await service.start()
            ops = [asyncio.create_task(service.inc()) for _ in range(2)]
            await asyncio.sleep(0.01)  # both injected
            await service.stop(drain=True)
            return await asyncio.gather(*ops), service.served

        values, served = asyncio.run(go())
        assert sorted(values) == [0, 1]
        assert served == 2

    def test_stop_without_drain_poisons_inflight_waiters(self):
        # regression: the pump's CancelledError path must fail every
        # in-flight waiter — a stranded client would hang forever
        async def go():
            service = _service("static-tree", n=1, time_scale=0.5)
            await service.start()
            op = asyncio.create_task(service.inc())
            await asyncio.sleep(0.01)  # injected, far from committing
            await service.stop(drain=False)
            with pytest.raises(ServiceStoppedError):
                await asyncio.wait_for(op, timeout=1.0)

        asyncio.run(go())


class TestProtocolResilience:
    async def _request_lines(self, service, payload, answers=1):
        reader, writer = await asyncio.open_connection(
            service.host, service.port
        )
        try:
            writer.write(payload)
            await writer.drain()
            lines = []
            for _ in range(answers):
                lines.append(
                    (await reader.readline()).decode("ascii", "replace")
                )
            return lines
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def test_overlong_line_answers_err_and_drops_the_connection(self):
        async def go():
            service = _service(
                resilience=ResilienceConfig(line_limit=64)
            )
            await service.start()
            try:
                payload = b"INC " + b"x" * 256 + b"\n"
                reader, writer = await asyncio.open_connection(
                    service.host, service.port
                )
                writer.write(payload)
                await writer.drain()
                answer = (await reader.readline()).decode("ascii")
                rest = await reader.read()  # connection closed after
                writer.close()
                return answer, rest
            finally:
                await service.stop()

        answer, rest = asyncio.run(go())
        assert answer.startswith("ERR LINE_TOO_LONG")
        assert rest == b""

    def test_wire_deadline_expires(self):
        async def go():
            service = _service("static-tree", n=1, time_scale=0.05)
            await service.start()
            try:
                slow = asyncio.create_task(service.inc())
                await asyncio.sleep(0.01)
                lines = await self._request_lines(
                    service, b"INC w1 10\n"
                )
                await slow
                return lines
            finally:
                await service.stop()

        (line,) = asyncio.run(go())
        assert line.startswith("ERR DEADLINE_EXCEEDED")

    @pytest.mark.parametrize(
        "payload",
        [b"INC rid -5\n", b"INC rid abc\n", b"INC rid 10 extra\n"],
    )
    def test_bad_inc_arguments_answer_bad_request(self, payload):
        async def go():
            service = _service()
            await service.start()
            try:
                return await self._request_lines(service, payload)
            finally:
                await service.stop()

        (line,) = asyncio.run(go())
        assert line.startswith("ERR BAD_REQUEST")

    def test_wire_overloaded_error_code(self):
        async def go():
            service = _service(
                "static-tree",
                n=1,
                time_scale=0.05,
                resilience=ResilienceConfig(max_backlog=0),
            )
            await service.start()
            try:
                slow = asyncio.create_task(service.inc())
                await asyncio.sleep(0.01)
                lines = await self._request_lines(service, b"INC\n")
                await slow
                return lines
            finally:
                await service.stop()

        (line,) = asyncio.run(go())
        assert line.startswith("ERR OVERLOADED")


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestLoadgenErrorAccounting:
    def test_connection_failures_counted_not_raised(self):
        port = _free_port()  # nobody listening

        result = asyncio.run(
            run_load("127.0.0.1", port, ops=5, rate=500.0)
        )
        assert result.completed == 0
        assert result.errors == 5
        assert result.error_counts == {"connection": 5}
        assert "err_types=connection:5" in result.summary()

    def test_breaker_fails_fast_after_tripping(self):
        port = _free_port()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=60.0)

        result = asyncio.run(
            run_load(
                "127.0.0.1", port, ops=8, rate=2000.0, breaker=breaker
            )
        )
        assert result.completed == 0
        assert result.errors == 8
        assert breaker.trips >= 1
        assert result.error_counts.get("circuit_open", 0) >= 1

    def test_retry_budget_bounds_total_retries(self):
        port = _free_port()
        budget = RetryBudget(3)

        result = asyncio.run(
            run_load(
                "127.0.0.1",
                port,
                ops=4,
                rate=2000.0,
                retry=RetryPolicy(attempts=5, base_delay=0.0, max_delay=0.0),
                retry_budget=budget,
            )
        )
        assert result.errors == 4
        assert result.retries == 3  # capped by the shared budget
        assert budget.remaining == 0
