"""Round-trip tests for fixture bundles (``repro.shard.fixture``).

The bundle contract has two halves, and both get pinned here:

* **byte stability** — writing the same run twice produces identical
  bytes in all four files, and a *replayed* bundle re-written from the
  replaying map's own recorder is byte-identical to the original (the
  bundle is a fixed point of record → replay → record);
* **pointed diagnostics** — corrupting any single fact (a value, a
  sequence number, a topology outcome, the snapshot, the manifest)
  fails replay with a :class:`~repro.errors.ReplayMismatchError` that
  names the offending file (and line, for records), not a generic
  assertion somewhere downstream.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.errors import ReplayMismatchError
from repro.shard import (
    CounterShardMap,
    FixtureRecorder,
    replay_bundle,
    write_bundle,
)

pytestmark = pytest.mark.shard


def _recorded_run(seed: int = 3) -> CounterShardMap:
    """A deterministic sim run with batches on several shards plus one
    of every topology event kind."""
    shard_map = CounterShardMap(
        "central[standby]",
        4,
        shards=2,
        seed=seed,
        batch_max=4,
        recorder=FixtureRecorder(),
    )
    shard_map.apply([f"user:{i % 7}" for i in range(20)])
    new_id = shard_map.split(shard_map.router.shard_ids()[0])
    shard_map.apply([f"user:{i % 5}" for i in range(10)])
    shard_map.failover(new_id)
    shard_map.apply(["user:0", "user:1"])
    survivor, absorbed = shard_map.router.shard_ids()[:2]
    shard_map.merge(survivor, absorbed)
    shard_map.apply([f"tail:{i}" for i in range(6)])
    return shard_map


def _bundle_bytes(bundle: Path) -> dict[str, bytes]:
    return {
        name: (bundle / name).read_bytes()
        for name in (
            "manifest.json",
            "requests.jsonl",
            "events.jsonl",
            "snapshot.json",
        )
    }


def _corrupt_line(path: Path, lineno: int, mutate) -> None:
    """Apply *mutate* to the JSON record on 1-based *lineno*."""
    lines = path.read_text().splitlines()
    record = json.loads(lines[lineno - 1])
    mutate(record)
    lines[lineno - 1] = json.dumps(
        record, sort_keys=True, separators=(",", ":")
    )
    path.write_text("\n".join(lines) + "\n")


class TestRoundTrip:
    def test_writing_twice_is_byte_identical(self, tmp_path):
        shard_map = _recorded_run()
        first = _bundle_bytes(write_bundle(tmp_path / "one", shard_map))
        second = _bundle_bytes(write_bundle(tmp_path / "two", shard_map))
        assert first == second

    def test_replay_verifies_and_reports(self, tmp_path):
        shard_map = _recorded_run()
        bundle = write_bundle(tmp_path / "bundle", shard_map)
        report = replay_bundle(bundle)
        assert report.ops == shard_map.total_ops == 38
        assert report.events == 3
        assert report.shards == shard_map.shard_count
        assert report.keys == len(shard_map.snapshot())
        # FULL trace fixtures carry per-shard fingerprints to verify
        assert report.fingerprints_checked == report.shards
        summary = report.summary()
        assert summary.startswith(f"REPLAY OK {bundle}: 38 ops in ")
        assert "3 topology events" in summary

    def test_replayed_bundle_rewrites_byte_identically(self, tmp_path):
        # The fixed-point property: replaying a bundle and re-writing
        # it from the replayed map's recorder reproduces every byte.
        shard_map = _recorded_run()
        bundle = write_bundle(tmp_path / "bundle", shard_map)
        report = replay_bundle(bundle)
        rewritten = write_bundle(tmp_path / "rewritten", report.shard_map)
        assert _bundle_bytes(bundle) == _bundle_bytes(rewritten)

    def test_different_seeds_produce_different_runs(self, tmp_path):
        one = write_bundle(tmp_path / "a", _recorded_run(seed=3))
        other = write_bundle(tmp_path / "b", _recorded_run(seed=4))
        assert (one / "manifest.json").read_text() != (
            other / "manifest.json"
        ).read_text()

    def test_unrecorded_map_refuses_to_write(self, tmp_path):
        shard_map = CounterShardMap("central", 4, shards=2)
        with pytest.raises(ReplayMismatchError, match="FixtureRecorder"):
            write_bundle(tmp_path / "nope", shard_map)


class TestCorruptionDiagnostics:
    @pytest.fixture()
    def bundle(self, tmp_path) -> Path:
        return write_bundle(tmp_path / "bundle", _recorded_run())

    def test_tampered_value_names_file_line_and_key(self, bundle):
        path = bundle / "requests.jsonl"

        def bump(record):
            record["value"] += 1
            self.key = record["key"]

        _corrupt_line(path, 11, bump)
        with pytest.raises(ReplayMismatchError) as excinfo:
            replay_bundle(bundle)
        message = str(excinfo.value)
        assert message.startswith(f"{path}:11: key {self.key!r} ")
        assert "replayed to value" in message
        assert "bundle says" in message

    def test_sequence_gap_is_pinpointed(self, bundle):
        path = bundle / "requests.jsonl"
        _corrupt_line(path, 6, lambda record: record.update(seq=99))
        with pytest.raises(
            ReplayMismatchError, match=r"requests\.jsonl:6: sequence gap"
        ):
            replay_bundle(bundle)

    def test_dropped_record_contradicts_the_manifest(self, bundle):
        path = bundle / "requests.jsonl"
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(
            ReplayMismatchError, match="manifest declares"
        ):
            replay_bundle(bundle)

    def test_tampered_event_outcome_is_caught(self, bundle):
        path = bundle / "events.jsonl"
        _corrupt_line(path, 1, lambda record: record.update(new_shard=42))
        with pytest.raises(
            ReplayMismatchError,
            match=r"events\.jsonl:1: split .* bundle says 42",
        ):
            replay_bundle(bundle)

    def test_tampered_snapshot_value_is_caught(self, bundle):
        path = bundle / "snapshot.json"
        snapshot = json.loads(path.read_text())
        key = sorted(snapshot["values"])[0]
        snapshot["values"][key] += 5
        path.write_text(json.dumps(snapshot, sort_keys=True, indent=2))
        with pytest.raises(
            ReplayMismatchError,
            match=rf"snapshot\.json: key '{key}' replayed to",
        ):
            replay_bundle(bundle)

    def test_missing_file_and_bad_json_are_named(self, bundle):
        (bundle / "events.jsonl").unlink()
        with pytest.raises(
            ReplayMismatchError, match=r"events\.jsonl: bundle file missing"
        ):
            replay_bundle(bundle)

    def test_unsupported_format_is_refused(self, bundle):
        path = bundle / "manifest.json"
        manifest = json.loads(path.read_text())
        manifest["format"] = 99
        path.write_text(json.dumps(manifest, sort_keys=True, indent=2))
        with pytest.raises(
            ReplayMismatchError, match="unsupported bundle format 99"
        ):
            replay_bundle(bundle)

    def test_wrong_spec_fails_the_recorded_crash_drill(self, bundle):
        # A tampered manifest spec replays on a different protocol;
        # plain central cannot execute the recorded failover event and
        # the diagnostic names the event that refused to re-apply.
        path = bundle / "manifest.json"
        manifest = json.loads(path.read_text())
        assert manifest["spec"] == "central[standby]"
        manifest["spec"] = "central"
        path.write_text(json.dumps(manifest, sort_keys=True, indent=2))
        with pytest.raises(
            ReplayMismatchError,
            match=r"events\.jsonl:2: failover event failed to re-apply",
        ):
            replay_bundle(bundle)
