"""Tests for the stats helpers and the E18/E19 experiments."""

from __future__ import annotations

import pytest

from repro.analysis import SeededSummary, summarize_over_seeds
from repro.experiments import run_e18, run_e19


class TestSeededSummary:
    def test_mean_std(self):
        summary = SeededSummary(values=(1.0, 2.0, 3.0))
        assert summary.mean == pytest.approx(2.0)
        assert summary.std == pytest.approx(1.0)
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert summary.spread == pytest.approx(1.0)

    def test_single_value(self):
        summary = SeededSummary(values=(5.0,))
        assert summary.std == 0.0
        assert summary.spread == 0.0

    def test_zero_mean_spread(self):
        summary = SeededSummary(values=(0.0, 0.0))
        assert summary.spread == 0.0

    def test_str_format(self):
        text = str(SeededSummary(values=(1.0, 3.0)))
        assert "±" in text

    def test_summarize_over_seeds(self):
        summary = summarize_over_seeds(lambda seed: seed * 2.0, [1, 2, 3])
        assert summary.values == (2.0, 4.0, 6.0)

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            summarize_over_seeds(lambda seed: 0.0, [])


class TestE18:
    def test_only_ww_tree_has_spread(self):
        result = run_e18(n=81, seeds=(0, 1, 2))
        table = result.table()
        spreads = dict(zip(table.column("counter"), table.column("spread")))
        for name, spread in spreads.items():
            if name == "ww-tree":
                continue
            assert spread == "0.0%", f"{name} unexpectedly varies: {spread}"

    def test_means_match_canonical_runs(self):
        result = run_e18(n=27, seeds=(0,))
        table = result.table()
        means = dict(zip(table.column("counter"), table.column("mean m_b")))
        assert float(means["central"]) == 52.0  # 2(n-1)


class TestE19:
    def test_skew_inflates_initiator_load(self):
        result = run_e19(n=27, length=81, skews=(0.0, 2.2))
        table = result.table()
        initiator_loads = table.column("hottest initiator load")
        assert initiator_loads[-1] > initiator_loads[0]

    def test_uniform_row_has_low_share(self):
        result = run_e19(n=27, length=81, skews=(0.0,))
        share = result.table().column("top initiator share")[0]
        assert share == "4%"  # 3/81 with the round-robin uniform order
