"""Linearizability of every registered counter over a lossy wire.

Satellite of the crash-recovery PR: run the HSW linearizability checker
over each registered spec under ``drop=0.05,dup=0.02`` with the
reliable transport, n=16, seed pinned.  Sequential-only counters are
driven one op at a time (their real-time order is total); the rest run
the staggered concurrent driver, which is what creates precedence
pairs for the checker to test against.

Everything here is deterministic per seed, so linearizability is an
exact expectation, not a flake: at this seed every spec — including
counting-network and diffracting-tree — produces an inversion-free
history.  That is *not* a guarantee for those two (they are not
linearizable in general; ``test_analysis_linearizability.py`` holds a
deterministic HSW counterexample with a scripted adversary), so the
``EXPECTED_LINEARIZABLE`` set below is an empirical record for this
workload, one entry per spec, asserted both ways.
"""

from __future__ import annotations

import pytest

from repro.analysis.linearizability import (
    TimedOp,
    check_linearizable_counting,
    run_staggered_timed,
)
from repro.registry import RunSession, get_spec, registered_specs

pytestmark = pytest.mark.recovery

N = 16
SEED = 11
FAULTS = "drop=0.05,dup=0.02"
GAP = 5.0

# Empirical per-spec verdicts for (N, SEED, FAULTS, GAP) above.  If a
# protocol change flips one, update the entry deliberately — a silent
# flip in either direction is a behaviour change worth a commit note.
EXPECTED_LINEARIZABLE = {
    "arrow": True,
    "byz-counter": True,
    "central": True,
    "central[standby]": True,
    "combining-tree": True,
    "combining-tree[bypass]": True,
    "counting-network": True,
    "diffracting-tree": True,
    "quorum[crumbling-wall]": True,
    "quorum[maekawa]": True,
    "quorum[majority]": True,
    "quorum[singleton]": True,
    "quorum[tree-paths]": True,
    "quorum[wheel]": True,
    "static-tree": True,
    "ww-tree": True,
}


def _run_sequential_timed(session: RunSession) -> list[TimedOp]:
    """One op at a time, timed: the real-time order is exactly the
    issue order, so any inversion is a genuine protocol bug."""
    counter, network = session.counter, session.network
    ops: list[TimedOp] = []
    for op_index, pid in enumerate(range(1, N + 1)):
        request_time = network.now
        counter.begin_inc(pid, op_index)
        network.run_until_quiescent()
        ops.append(
            TimedOp(
                op_index=op_index,
                initiator=pid,
                value=counter.results_for(pid)[-1],
                request_time=request_time,
                response_time=counter.result_times_for(pid)[-1],
            )
        )
    return ops


def test_expected_verdicts_cover_every_registered_spec():
    assert sorted(EXPECTED_LINEARIZABLE) == sorted(
        spec.name for spec in registered_specs()
    )


@pytest.mark.parametrize(
    "spec_name", [spec.name for spec in registered_specs()]
)
def test_lossy_history_matches_expected_linearizability(spec_name):
    spec = get_spec(spec_name)
    violation = spec.supports_n(N)
    if violation is not None:
        pytest.skip(f"{spec_name}: {violation}")
    session = RunSession(
        spec_name, N, policy="random", seed=SEED,
        faults=FAULTS, reliable=True,
    )
    if spec.capabilities.sequential_only:
        ops = _run_sequential_timed(session)
    else:
        ops = run_staggered_timed(session.counter, list(range(1, N + 1)), gap=GAP)
    assert len(ops) == N
    values = [op.value for op in ops]
    assert len(set(values)) == N  # it counts: no duplicates, ever
    report = check_linearizable_counting(ops)
    assert report.linearizable == EXPECTED_LINEARIZABLE[spec_name]
    if spec.capabilities.sequential_only:
        # A strictly sequential history has every ordered pair.
        assert report.precedence_pairs >= N * (N - 1) // 2 - 1
