"""Tests for the SVG chart generator and the figure suite."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro.analysis.svgplot import LineChart
from repro.experiments.figures import (
    figure_bottleneck_vs_k,
    figure_crossover,
    save_all_figures,
)


def _parse(svg_text: str) -> ET.Element:
    return ET.fromstring(svg_text)


class TestLineChart:
    def test_produces_well_formed_svg(self):
        chart = LineChart(title="T", x_label="x", y_label="y")
        chart.add("s", [(1, 1), (2, 4), (3, 9)])
        root = _parse(chart.to_svg())
        assert root.tag.endswith("svg")

    def test_title_and_labels_present(self):
        chart = LineChart(title="My Title", x_label="the x", y_label="the y")
        chart.add("series-name", [(0, 0), (1, 1)])
        svg = chart.to_svg()
        assert "My Title" in svg
        assert "the x" in svg and "the y" in svg
        assert "series-name" in svg

    def test_one_polyline_per_series(self):
        chart = LineChart(title="T", x_label="x", y_label="y")
        chart.add("a", [(0, 0), (1, 1)])
        chart.add("b", [(0, 1), (1, 0)], dashed=True)
        svg = chart.to_svg()
        assert svg.count("<polyline") == 2
        assert "stroke-dasharray" in svg

    def test_log_axes_handle_wide_ranges(self):
        chart = LineChart(
            title="T", x_label="x", y_label="y", log_x=True, log_y=True
        )
        chart.add("s", [(1, 2), (100, 200), (10_000, 20_000)])
        root = _parse(chart.to_svg())
        assert root is not None

    def test_single_point_series_does_not_crash(self):
        chart = LineChart(title="T", x_label="x", y_label="y")
        chart.add("s", [(5, 5)])
        assert "<svg" in chart.to_svg()

    def test_title_is_escaped(self):
        chart = LineChart(title="a < b & c", x_label="x", y_label="y")
        chart.add("s", [(0, 0), (1, 1)])
        svg = chart.to_svg()
        assert "a &lt; b &amp; c" in svg
        _parse(svg)  # stays well-formed

    def test_empty_chart_renders(self):
        chart = LineChart(title="empty", x_label="x", y_label="y")
        _parse(chart.to_svg())


class TestFigureSuite:
    def test_bottleneck_figure_has_reference_line(self):
        chart = figure_bottleneck_vs_k(ks=(2, 3))
        names = [series.name for series in chart.series]
        assert any("reference" in name for name in names)
        assert any("measured" in name for name in names)

    def test_crossover_figure_uses_log_axes(self):
        chart = figure_crossover(ns=(8, 81))
        assert chart.log_x and chart.log_y
        assert len(chart.series) == 3

    def test_save_all_writes_three_files(self, tmp_path, monkeypatch):
        # Patch the figure functions to cheap variants for speed.
        import repro.experiments.figures as figures_module

        monkeypatch.setattr(
            figures_module, "figure_bottleneck_vs_k",
            lambda ks=(2,), runner=None: figure_bottleneck_vs_k(ks=(2,)),
        )
        monkeypatch.setattr(
            figures_module, "figure_crossover",
            lambda ns=(8, 27), runner=None: figure_crossover(ns=(8, 27)),
        )
        monkeypatch.setattr(
            figures_module, "figure_baseline_sweep",
            lambda ns=(8, 27), runner=None: figure_crossover(ns=(8, 27)),
        )
        written = figures_module.save_all_figures(tmp_path)
        assert len(written) == 3
        for path in written:
            assert path.exists()
            _parse(path.read_text())
