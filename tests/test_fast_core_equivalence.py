"""The table-driven fast core is observationally identical to compat.

The tentpole guarantee: for every registered counter spec, a run on the
fast (bucket) core and a run on the compatible (heapq) core produce
byte-identical traces — same records, same fingerprint, same loads, same
returned values, same simulated clock.  Plus the migration contract:
installing a scheduler hook or fault plan moves a fast network onto the
compatible queue without disturbing pending events.
"""

from __future__ import annotations

import copy

import pytest

from repro.errors import ConfigurationError
from repro.registry import RunSession, registered_names
from repro.sim.events import EventQueue, FlatEventQueue
from repro.sim.network import Network
from repro.sim.processor import InertProcessor

ALL_SPECS = registered_names()

# Smallest n each spec accepts out of the benchmark-friendly sizes
# (quorum[maekawa] needs a perfect square).
def _n_for(spec: str) -> int:
    return 9 if spec == "quorum[maekawa]" else 8


def _run(spec: str, core: str, **kwargs):
    session = RunSession(spec, _n_for(spec), trace_level="FULL", core=core, **kwargs)
    result = session.run_workload("one-shot")
    return session, result


class TestEverySpecIsTraceIdentical:
    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_one_shot_unit_delay(self, spec):
        fast_session, fast_result = _run(spec, "fast")
        compat_session, compat_result = _run(spec, "compat")
        assert fast_session.network.core == "fast"
        assert compat_session.network.core == "compat"
        fast_trace = fast_session.network.trace
        compat_trace = compat_session.network.trace
        assert fast_trace.records == compat_trace.records
        assert fast_trace.fingerprint() == compat_trace.fingerprint()
        assert fast_trace.loads() == compat_trace.loads()
        assert fast_result.values() == compat_result.values()
        assert fast_session.network.now == compat_session.network.now
        assert (
            fast_session.network.events_executed
            == compat_session.network.events_executed
        )

    @pytest.mark.parametrize("spec", ("ww-tree", "combining-tree", "central"))
    def test_one_shot_random_delays(self, spec):
        fast_session, _ = _run(spec, "fast", policy="random", seed=11)
        compat_session, _ = _run(spec, "compat", policy="random", seed=11)
        assert (
            fast_session.network.trace.fingerprint()
            == compat_session.network.trace.fingerprint()
        )

    @pytest.mark.parametrize("spec", ("combining-tree", "counting-network"))
    def test_concurrent_batch(self, spec):
        results = {}
        for core in ("fast", "compat"):
            session = RunSession(spec, 8, trace_level="FULL", core=core)
            result = session.run_workload("one-shot-concurrent")
            results[core] = (
                session.network.trace.fingerprint(),
                sorted(result.values()),
            )
        assert results["fast"] == results["compat"]


class TestCoreSelection:
    def test_auto_is_fast_when_clean(self):
        assert Network().core == "fast"
        assert isinstance(Network()._queue, FlatEventQueue)

    def test_auto_is_compat_under_faults(self):
        session = RunSession(
            "ww-tree", 8, faults="drop=0.05", reliable=True, seed=3
        )
        assert session.network.core == "compat"

    def test_explicit_compat_is_honored(self):
        network = Network(core="compat")
        assert network.core == "compat"
        assert isinstance(network._queue, EventQueue)

    def test_unknown_core_rejected(self):
        with pytest.raises(ConfigurationError):
            Network(core="turbo")

    def test_flat_queue_rejects_hooks_directly(self):
        queue = FlatEventQueue()
        with pytest.raises(ConfigurationError):
            queue.install_hook(object())
        queue.install_hook(None)  # removal is always a no-op


class _FifoHook:
    """A do-nothing arbiter: always picks the default (FIFO) candidate."""

    def choose(self, ready):
        return 0


class TestMigration:
    def _loaded_network(self):
        network = Network(trace_level="FULL")
        network.register_all([InertProcessor(pid) for pid in range(1, 5)])
        for index in range(12):
            network.send((index % 4) + 1, ((index + 1) % 4) + 1, "m", {"i": index})
        network.inject(lambda: None, op_index=3, delay=0.5)
        return network

    def test_hook_install_migrates_pending_events(self):
        network = self._loaded_network()
        pending = len(network._queue)
        baseline = self._loaded_network()
        network.install_scheduler_hook(_FifoHook())
        assert network.core == "compat"
        assert len(network._queue) == pending
        network.run_until_quiescent()
        baseline.run_until_quiescent()
        # A FIFO hook must not change the schedule: byte-identical trace.
        assert network.trace.records == baseline.trace.records
        assert network.now == baseline.now

    def test_hook_removal_does_not_migrate(self):
        network = Network()
        network.install_scheduler_hook(None)
        assert network.core == "fast"

    def test_fault_plan_install_migrates(self):
        from repro.sim.faults import parse_fault_spec

        network = self._loaded_network()
        network.install_fault_plan(parse_fault_spec("dup=0.0", seed=1))
        assert network.core == "compat"
        network.run_until_quiescent()
        assert network.in_flight == 0

    def test_migrated_network_stays_compat_after_reset(self):
        network = self._loaded_network()
        network.install_scheduler_hook(_FifoHook())
        network.run_until_quiescent()
        network.reset()
        assert network.core == "compat"


class TestFastCoreBehavior:
    def test_deepcopy_preserves_dispatch_wiring(self):
        network = Network(trace_level="FULL")
        network.register_all([InertProcessor(pid) for pid in range(1, 3)])
        network.send(1, 2, "m", {})
        clone = copy.deepcopy(network)
        clone.run_until_quiescent()
        network.run_until_quiescent()
        assert clone.trace.records == network.trace.records
        # The clone's handlers dispatch to the clone's processors.
        assert clone._handlers[2].__self__ is clone.processor(2)

    def test_reset_reuses_the_fast_queue(self):
        network = Network()
        network.register_all([InertProcessor(pid) for pid in range(1, 3)])
        queue = network._queue
        network.send(1, 2, "m", {})
        network.run_until_quiescent()
        network.reset()
        assert network._queue is queue
        assert network.core == "fast"
        assert len(queue) == 0 and queue.now == 0.0

    def test_event_limit_still_enforced(self):
        from repro.errors import SimulationLimitError

        class Bouncer(InertProcessor):
            def on_message(self, message):
                self.send(message[0], "m", {})

        network = Network(trace_level="OFF", event_limit=500)
        network.register_all([Bouncer(1), Bouncer(2)])
        network.send(1, 2, "m", {})
        with pytest.raises(SimulationLimitError):
            network.run_until_quiescent()
