"""ReliableTransport: exactly-once delivery over a faulty wire.

The headline contract: *unmodified* counters complete `one_shot(n)` with
correct values over a lossy network, deterministically per seed, with
zero spurious retransmissions when the network is clean.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    CapabilityError,
    ConfigurationError,
    DeliveryAbandonedError,
    SimulationLimitError,
    UnknownProcessorError,
)
from repro.registry import RunSession, registered_specs
from repro.sim.faults import FaultPlan, CrashRule, DuplicateRule, parse_fault_spec
from repro.sim.network import Network
from repro.sim.policies import RandomDelay
from repro.sim.processor import Processor
from repro.sim.trace import TraceLevel
from repro.sim.transport import ACK_KIND, DATA_KIND, ReliableTransport

pytestmark = pytest.mark.faults


class _Recorder(Processor):
    """Protocol processor that logs every delivered message."""

    def __init__(self, pid):
        super().__init__(pid)
        self.received = []

    def on_message(self, message):
        self.received.append((message.sender, message.kind, dict(message.payload)))


def _pair(fault_plan=None, **transport_kwargs):
    network = Network(fault_plan=fault_plan)
    transport = ReliableTransport(network, **transport_kwargs)
    a, b = _Recorder(1), _Recorder(2)
    transport.register_all([a, b])
    return transport, a, b


class TestEndpointMechanics:
    def test_clean_delivery_is_exactly_once_with_zero_retransmits(self):
        transport, _, b = _pair()
        for index in range(20):
            transport.send(1, 2, "m", {"i": index})
        transport.run_until_quiescent()
        assert [payload["i"] for _, _, payload in b.received] == list(range(20))
        stats = transport.stats()
        assert stats["data_sent"] == stats["delivered"] == 20
        assert stats["retransmissions"] == 0
        assert stats["duplicates_suppressed"] == 0
        assert transport.overhead_ratio() == 1.0

    def test_unknown_sender_rejected(self):
        transport, _, _ = _pair()
        with pytest.raises(UnknownProcessorError):
            transport.send(9, 1, "m", {})

    def test_retransmits_through_total_loss_window(self):
        # Receiver 2 is down until t=60; the first attempts die on the
        # wire and the backoff retries land after recovery.
        plan = FaultPlan([CrashRule(2, start=0.0, end=60.0)])
        transport, _, b = _pair(fault_plan=plan, rto=25.0)
        transport.send(1, 2, "m", {"x": 1})
        transport.run_until_quiescent()
        assert b.received == [(1, "m", {"x": 1})]
        stats = transport.stats()
        assert stats["retransmissions"] >= 1
        assert stats["delivered"] == 1
        assert stats["gave_up"] == 0

    def test_injected_duplicates_are_suppressed(self):
        plan = FaultPlan([DuplicateRule(1.0, copies=2)], seed=1)
        transport, _, b = _pair(fault_plan=plan)
        for index in range(10):
            transport.send(1, 2, "m", {"i": index})
        transport.run_until_quiescent()
        # Every data envelope (and every ack) was tripled on the wire,
        # yet the protocol saw each logical message exactly once.
        assert [payload["i"] for _, _, payload in b.received] == list(range(10))
        assert transport.stats()["duplicates_suppressed"] == 20
        assert transport.stats()["delivered"] == 10

    def test_gave_up_after_max_retries_against_a_dead_peer(self):
        plan = FaultPlan([CrashRule(2, start=0.0)])  # never recovers
        transport, _, b = _pair(fault_plan=plan, rto=5.0, max_retries=3)
        transport.send(1, 2, "m", {})
        transport.run_until_quiescent()  # quiesces: the give-up timer fires
        stats = transport.stats()
        assert stats["gave_up"] == 1
        assert stats["retransmissions"] == 3
        assert stats["delivered"] == 0
        assert b.received == []

    def test_dead_peer_without_retry_cap_abandons_delivery(self):
        # Uncapped retries used to spin until the event budget blew up
        # with an unhelpful SimulationLimitError; now the attempt cap
        # raises a typed error naming the dead destination.
        plan = FaultPlan([CrashRule(2, start=0.0)])
        network = Network(fault_plan=plan)
        transport = ReliableTransport(network, rto=1.0, rto_cap=2.0)
        transport.register_all([_Recorder(1), _Recorder(2)])
        transport.send(1, 2, "m", {})
        with pytest.raises(DeliveryAbandonedError) as excinfo:
            transport.run_until_quiescent()
        assert excinfo.value.receiver == 2
        assert excinfo.value.attempts == 25
        assert transport.stats()["gave_up"] == 1

    def test_attempt_cap_is_tunable_and_validated(self):
        plan = FaultPlan([CrashRule(2, start=0.0)])
        network = Network(fault_plan=plan)
        transport = ReliableTransport(network, rto=1.0, rto_cap=2.0, attempt_cap=3)
        transport.register_all([_Recorder(1), _Recorder(2)])
        transport.send(1, 2, "m", {})
        with pytest.raises(DeliveryAbandonedError) as excinfo:
            transport.run_until_quiescent()
        assert excinfo.value.attempts == 3
        with pytest.raises(ConfigurationError):
            ReliableTransport(Network(), attempt_cap=0)

    def test_max_retries_still_gives_up_silently(self):
        # Explicit max_retries keeps best-effort semantics: no raise.
        plan = FaultPlan([CrashRule(2, start=0.0)])
        network = Network(fault_plan=plan)
        transport = ReliableTransport(network, rto=1.0, max_retries=2)
        transport.register_all([_Recorder(1), _Recorder(2)])
        transport.send(1, 2, "m", {})
        transport.run_until_quiescent()
        assert transport.stats()["gave_up"] == 1

    def test_trace_separates_goodput_from_overhead_by_kind(self):
        plan = parse_fault_spec("drop=0.3", seed=4)
        network = Network(fault_plan=plan, trace_level=TraceLevel.FULL)
        transport = ReliableTransport(network)
        transport.register_all([_Recorder(1), _Recorder(2)])
        for index in range(30):
            transport.send(1, 2, "m", {"i": index})
        transport.run_until_quiescent()
        kinds = {record.kind for record in network.trace.records}
        assert kinds == {DATA_KIND, ACK_KIND}
        data_deliveries = sum(
            1 for r in network.trace.records if r.kind == DATA_KIND
        )
        stats = transport.stats()
        assert data_deliveries == stats["delivered"] + stats["duplicates_suppressed"]

    def test_constructor_validation(self):
        network = Network()
        with pytest.raises(ConfigurationError):
            ReliableTransport(network, rto=0)
        with pytest.raises(ConfigurationError):
            ReliableTransport(network, rto=10, rto_cap=5)
        with pytest.raises(ConfigurationError):
            ReliableTransport(network, max_retries=0)

    def test_network_facade_forwards_introspection(self):
        transport, a, _ = _pair()
        assert transport.processor(1) is a  # unwrapped protocol processor
        assert transport.has_processor(2)
        assert transport.now == 0.0
        assert transport.is_quiescent()
        assert transport.processor_count == 2
        assert transport.trace is transport.network.trace


class TestCountersOverLossyLinks:
    N = 16
    FAULTS = "drop=0.05,dup=0.02"

    @pytest.mark.parametrize(
        "spec_name",
        [spec.name for spec in registered_specs()],
    )
    def test_every_registered_counter_completes_unmodified(self, spec_name):
        from repro.registry import get_spec

        spec = get_spec(spec_name)
        violation = spec.supports_n(self.N)
        if violation is not None:
            pytest.skip(f"{spec_name}: {violation}")
        session = RunSession(
            spec_name,
            self.N,
            policy="random",
            seed=11,
            faults=self.FAULTS,
            reliable=True,
        )
        at_most_once = "at-most-once" in spec.capabilities.restriction
        if at_most_once:
            # combining-tree[bypass]: its own end-to-end retries double
            # up with the transport's retransmissions under loss, and a
            # surplus grant burns its value — unique, not dense.
            result = session.run_sequence(check_values=False)
            values = result.values()
            assert len(values) == self.N
            assert len(set(values)) == self.N
            assert all(value >= 0 for value in values)
        else:
            result = session.run_sequence()  # check_values raises on any error
            assert sorted(result.values()) == list(range(self.N))
        assert session.transport_stats()["gave_up"] == 0

    def test_lossy_runs_are_deterministic_per_seed(self):
        def run(seed):
            session = RunSession(
                "ww-tree", 27, policy="random", seed=seed,
                faults="drop=0.1", reliable=True,
            )
            session.run_sequence()
            return (
                session.transport_stats(),
                session.network.trace.loads(),
                session.fault_plan.counts,
            )

        assert run(3) == run(3)
        assert run(3) != run(4)

    def test_clean_transport_run_has_zero_retransmissions(self):
        session = RunSession(
            "ww-tree", 27, policy="random", seed=3, reliable=True
        )
        session.run_sequence()
        stats = session.transport_stats()
        assert stats["retransmissions"] == 0
        assert stats["duplicates_suppressed"] == 0


class TestCapabilityGate:
    def test_lossy_plan_on_bare_counter_fails_fast(self):
        with pytest.raises(CapabilityError, match="does not tolerate"):
            RunSession("central", 8, faults="drop=0.05")

    def test_partition_and_crash_also_count_as_lossy(self):
        with pytest.raises(CapabilityError):
            RunSession("central", 8, faults="crash=2@t10")
        with pytest.raises(CapabilityError):
            RunSession("central", 8, faults="partition=1..4|5..8")

    def test_non_lossy_plan_is_allowed_bare(self):
        session = RunSession(
            "central", 8, policy="random", seed=1, faults="reorder=0.5"
        )
        result = session.run_sequence()
        assert sorted(result.values()) == list(range(8))
        assert not session.capabilities.tolerates_message_loss

    def test_reliable_session_reports_loss_tolerance(self):
        session = RunSession("central", 8, reliable=True)
        assert session.capabilities.tolerates_message_loss
        assert "loss-tolerant" in session.capabilities.flags()
        # The spec's own record is untouched — tolerance is the
        # transport's property, not the protocol's.
        assert not session.ref.capabilities.tolerates_message_loss

    def test_prebuilt_plan_and_empty_spec_accepted(self):
        plan = parse_fault_spec("drop=0.2", seed=9)
        session = RunSession("central", 8, faults=plan, reliable=True)
        assert session.fault_plan is plan
        bare = RunSession("central", 8, faults="  ")
        assert bare.fault_plan is None
