"""Unit tests for report formatting."""

from __future__ import annotations

from repro.analysis import format_series, format_table


class TestFormatTable:
    def test_aligns_columns(self):
        text = format_table(["name", "n"], [["a", 1], ["long-name", 1000]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equal width

    def test_title_prepended(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_floats_rendered_with_two_decimals(self):
        text = format_table(["v"], [[3.14159]])
        assert "3.14" in text
        assert "3.142" not in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text


class TestFormatSeries:
    def test_pairs_rendered(self):
        text = format_series("bound", [(8, 2.0), (81, 3.0)])
        assert text.startswith("bound:")
        assert "8->2.00" in text
        assert "81->3.00" in text

    def test_empty_series(self):
        assert format_series("s", []) == "s: "
