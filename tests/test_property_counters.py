"""Property-based conformance tests over every counter implementation.

The key abstract-data-type property (§2): a sequence of ``inc`` requests,
from any initiators in any order, returns exactly ``0, 1, 2, …``.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.counters.counting_network import step_property_holds
from repro.lowerbound import check_hot_spot
from repro.sim.network import Network
from repro.sim.policies import RandomDelay
from repro.workloads import run_concurrent, run_sequence

from conftest import ALL_FACTORIES

factory_names = st.sampled_from(sorted(ALL_FACTORIES))


@settings(max_examples=30, deadline=None)
@given(
    name=factory_names,
    n=st.integers(2, 24),
    order_seed=st.integers(0, 99),
    data=st.data(),
)
def test_sequential_semantics_for_any_order(name, n, order_seed, data):
    """Values are 0,1,2,... for arbitrary initiator multisets."""
    initiators = data.draw(
        st.lists(st.integers(1, n), min_size=1, max_size=2 * n)
    )
    network = Network()
    counter = ALL_FACTORIES[name](network, n)
    if name == "ww-tree" and len(initiators) > len(set(initiators)):
        # The paper's counter is specified for one inc per processor;
        # repeated initiators need WRAP intervals (covered elsewhere).
        initiators = list(dict.fromkeys(initiators))
    result = run_sequence(counter, initiators)
    assert result.values() == list(range(len(initiators)))


@settings(max_examples=20, deadline=None)
@given(name=factory_names, n=st.integers(2, 20), seed=st.integers(0, 99))
def test_hot_spot_lemma_universal(name, n, seed):
    """I_p ∩ I_q ≠ ∅ for successive ops — on every counter, any order."""
    import random

    order = list(range(1, n + 1))
    random.Random(seed).shuffle(order)
    network = Network()
    counter = ALL_FACTORIES[name](network, n)
    result = run_sequence(counter, order)
    assert check_hot_spot(result).holds


@settings(max_examples=20, deadline=None)
@given(
    name=st.sampled_from(
        ["central", "combining-tree", "counting-network", "diffracting-tree"]
    ),
    n=st.integers(2, 16),
    delay_seed=st.integers(0, 99),
)
def test_concurrent_uniqueness(name, n, delay_seed):
    """Concurrent incs still hand out each value exactly once."""
    network = Network(policy=RandomDelay(seed=delay_seed, low=0.5, high=4.0))
    counter = ALL_FACTORIES[name](network, n)
    result = run_concurrent(counter, [list(range(1, n + 1))])
    assert sorted(result.values()) == list(range(n))


@settings(max_examples=30, deadline=None)
@given(
    width_exp=st.integers(1, 3),
    tokens=st.integers(1, 40),
    delay_seed=st.integers(0, 99),
)
def test_counting_network_step_property(width_exp, tokens, delay_seed):
    """AHS91: quiescent exit counts always form a step, any schedule."""
    from repro.counters import BitonicCountingNetwork

    width = 2**width_exp
    n = max(width, tokens)
    network = Network(policy=RandomDelay(seed=delay_seed, low=0.5, high=4.0))
    counter = BitonicCountingNetwork(network, n, width=width)
    batch = [(i % n) + 1 for i in range(tokens)]
    run_concurrent(counter, [batch])
    assert step_property_holds(counter.exit_counts)
    assert sum(counter.exit_counts) == tokens


@settings(max_examples=15, deadline=None)
@given(n=st.integers(2, 40), seed=st.integers(0, 50))
def test_load_conservation_on_real_runs(n, seed):
    """Σ m_p = 2·messages on every real execution."""
    import random

    order = list(range(1, n + 1))
    random.Random(seed).shuffle(order)
    network = Network()
    counter = ALL_FACTORIES["central"](network, n)
    result = run_sequence(counter, order)
    assert sum(result.trace.loads().values()) == 2 * result.total_messages
