"""Tests for the chaos proxy: spec grammar, determinism, fault behavior.

Each fault rule is exercised at probability 1.0 against a real
:class:`CounterService` upstream so the observable client effect (reset,
stall, truncation, blackhole) is deterministic; the end-to-end test
drives a retrying load through a mixed plan and asserts the exactly-once
arithmetic the resilience layer promises.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.errors import ConfigurationError
from repro.serve import (
    ChaosPlan,
    ChaosProxy,
    CounterService,
    ResilienceConfig,
    RetryPolicy,
    canonical_chaos_spec,
    parse_chaos_spec,
    run_load,
)

pytestmark = pytest.mark.resilience


class TestChaosSpecGrammar:
    def test_full_spec_round_trips_canonically(self):
        spec = "delay=0.002@0.2,stall=0.05@0.1,trunc=4@0.08,reset@0.15,blackhole@0.03"
        assert canonical_chaos_spec(spec) == spec

    def test_fields_reordered_to_canonical_order(self):
        assert (
            canonical_chaos_spec("reset@0.5,delay=0.01@0.2")
            == "delay=0.01@0.2,reset@0.5"
        )

    def test_parse_builds_typed_rules(self):
        plan = parse_chaos_spec("trunc=8@0.5,stall=0.1@1", seed=3)
        assert plan.trunc.keep_bytes == 8
        assert plan.trunc.probability == 0.5
        assert plan.stall.seconds == 0.1
        assert plan.reset is None
        assert plan.seed == 3

    @pytest.mark.parametrize(
        "spec,match",
        [
            ("", "empty chaos spec"),
            ("reset", "malformed"),
            ("reset@", "malformed"),
            ("explode@0.5", "unknown chaos field"),
            ("reset@0.5,reset@0.2", "duplicate"),
            ("reset@nope", "bad probability"),
            ("reset@1.5", "probability"),
            ("reset@-0.1", "probability"),
            ("delay@0.5", "needs a value"),
            ("delay=@0.5", "needs a value"),
            ("delay=abc@0.5", "bad value"),
            ("delay=0@0.5", "positive value"),
            ("stall=-1@0.5", "positive value"),
            ("trunc=2.5@0.5", "positive integer"),
            ("trunc=0@0.5", "positive"),
            ("reset=3@0.5", "takes no value"),
        ],
    )
    def test_malformed_specs_rejected(self, spec, match):
        with pytest.raises(ConfigurationError, match=match):
            parse_chaos_spec(spec)

    def test_repr_shows_canonical_and_seed(self):
        plan = parse_chaos_spec("reset@0.5", seed=9)
        assert repr(plan) == "ChaosPlan('reset@0.5', seed=9)"


class TestChaosDeterminism:
    def test_same_seed_same_fates(self):
        a = parse_chaos_spec("reset@0.5,blackhole@0.3,stall=0.1@0.4", seed=11)
        b = parse_chaos_spec("reset@0.5,blackhole@0.3,stall=0.1@0.4", seed=11)
        fates_a = [a.fate(i) for i in range(64)]
        fates_b = [b.fate(i) for i in range(64)]
        assert fates_a == fates_b

    def test_different_seeds_differ(self):
        a = parse_chaos_spec("reset@0.5", seed=1)
        b = parse_chaos_spec("reset@0.5", seed=2)
        assert [a.fate(i).reset for i in range(64)] != [
            b.fate(i).reset for i in range(64)
        ]

    def test_chunk_rng_keyed_by_connection_and_direction(self):
        plan = parse_chaos_spec("delay=0.01@0.5", seed=5)
        same = plan.chunk_rng(0, "c2s").random()
        assert plan.chunk_rng(0, "c2s").random() == same
        assert plan.chunk_rng(0, "s2c").random() != same
        assert plan.chunk_rng(1, "c2s").random() != same

    def test_probabilities_respected_over_many_connections(self):
        plan = parse_chaos_spec("reset@0.25", seed=7)
        resets = sum(plan.fate(i).reset for i in range(400))
        assert 60 <= resets <= 140  # 100 expected


async def _serve(spec="central", n=4, **kwargs):
    service = CounterService(spec, n, port=0, **kwargs)
    await service.start()
    return service


async def _proxied(service, plan):
    proxy = ChaosProxy("127.0.0.1", service.port, plan=plan)
    await proxy.start()
    return proxy


async def _inc_via(proxy, timeout=2.0):
    reader, writer = await asyncio.open_connection("127.0.0.1", proxy.port)
    try:
        writer.write(b"INC\n")
        await writer.drain()
        return await asyncio.wait_for(reader.readline(), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


class TestChaosProxyBehavior:
    def test_no_plan_forwards_cleanly(self):
        async def go():
            service = await _serve()
            proxy = await _proxied(service, None)
            try:
                answer = await _inc_via(proxy)
            finally:
                await proxy.stop()
                await service.stop()
            return answer, proxy.stats

        answer, stats = asyncio.run(go())
        assert answer == b"OK 0\n"
        assert stats["connections"] == 1
        assert stats["resets"] == 0

    def test_reset_aborts_the_connection(self):
        async def go():
            service = await _serve()
            proxy = await _proxied(service, parse_chaos_spec("reset@1"))
            try:
                try:
                    answer = await _inc_via(proxy)
                except (ConnectionResetError, BrokenPipeError):
                    answer = b""
                return answer, dict(proxy.stats), service.served
            finally:
                await proxy.stop()
                await service.stop()

        answer, stats, served = asyncio.run(go())
        assert answer == b""  # reset or EOF, never a real answer
        assert stats["resets"] == 1
        assert served == 0  # aborted before the INC reached the server

    def test_blackhole_swallows_the_request(self):
        async def go():
            service = await _serve()
            proxy = await _proxied(service, parse_chaos_spec("blackhole@1"))
            try:
                with pytest.raises(asyncio.TimeoutError):
                    await _inc_via(proxy, timeout=0.2)
                return dict(proxy.stats), service.served
            finally:
                await proxy.stop()
                await service.stop()

        stats, served = asyncio.run(go())
        assert stats["blackholed"] == 1
        assert served == 0

    def test_stall_delays_the_first_chunk(self):
        async def go():
            service = await _serve()
            proxy = await _proxied(
                service, parse_chaos_spec("stall=0.2@1")
            )
            try:
                start = time.monotonic()
                answer = await _inc_via(proxy)
                elapsed = time.monotonic() - start
            finally:
                await proxy.stop()
                await service.stop()
            return answer, elapsed, dict(proxy.stats)

        answer, elapsed, stats = asyncio.run(go())
        assert answer == b"OK 0\n"
        assert elapsed >= 0.2
        assert stats["stalls"] == 1

    def test_truncation_cuts_the_answer_after_the_commit(self):
        async def go():
            service = await _serve()
            proxy = await _proxied(service, parse_chaos_spec("trunc=2@1"))
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", proxy.port
                )
                writer.write(b"INC\n")
                await writer.drain()
                data = await asyncio.wait_for(reader.read(), 2.0)
                writer.close()
                # give the server's commit a beat to land
                await asyncio.sleep(0.05)
                return data, dict(proxy.stats), service.served
            finally:
                await proxy.stop()
                await service.stop()

        data, stats, served = asyncio.run(go())
        assert data == b"OK"  # "OK 0\n" cut to 2 bytes, then abort
        assert stats["truncations"] == 1
        assert served == 1  # the increment itself committed

    def test_delay_still_delivers(self):
        async def go():
            service = await _serve()
            proxy = await _proxied(
                service, parse_chaos_spec("delay=0.05@1")
            )
            try:
                start = time.monotonic()
                answer = await _inc_via(proxy)
                elapsed = time.monotonic() - start
            finally:
                await proxy.stop()
                await service.stop()
            return answer, elapsed, dict(proxy.stats)

        answer, elapsed, stats = asyncio.run(go())
        assert answer == b"OK 0\n"
        assert elapsed >= 0.1  # request chunk + answer chunk
        assert stats["delays"] >= 2

    def test_dead_upstream_aborts_the_client(self):
        async def go():
            service = await _serve()
            port = service.port
            await service.stop()  # release the port: upstream is dead
            proxy = ChaosProxy("127.0.0.1", port)
            await proxy.start()
            try:
                try:
                    answer = await _inc_via(proxy, timeout=1.0)
                except (ConnectionResetError, BrokenPipeError):
                    answer = b""
                return answer, dict(proxy.stats)
            finally:
                await proxy.stop()

        answer, stats = asyncio.run(go())
        assert answer == b""
        assert stats["upstream_failures"] == 1

    def test_port_zero_binds_a_real_port(self):
        async def go():
            proxy = ChaosProxy("127.0.0.1", 1)
            await proxy.start()
            port, address = proxy.port, proxy.address
            await proxy.stop()
            return port, address

        port, address = asyncio.run(go())
        assert port > 0
        assert address == f"127.0.0.1:{port}"


class TestExactlyOnceUnderChaos:
    def test_retrying_load_through_mixed_chaos_counts_exactly(self):
        """The E26 invariant in miniature: no lost or doubled increments."""

        async def go():
            service = await _serve(
                "central",
                4,
                resilience=ResilienceConfig(max_backlog=64),
            )
            proxy = await _proxied(
                service,
                parse_chaos_spec(
                    "delay=0.002@0.2,trunc=4@0.15,reset@0.25", seed=13
                ),
            )
            try:
                result = await run_load(
                    "127.0.0.1",
                    proxy.port,
                    ops=80,
                    rate=400.0,
                    seed=2,
                    retry=RetryPolicy(
                        attempts=8, base_delay=0.005, max_delay=0.05
                    ),
                    deadline=0.5,
                    rid_prefix="mini",
                )
                await asyncio.sleep(0.1)  # let stray commits land
                stats = service.stats()
                probe = await service.inc()
            finally:
                await proxy.stop()
                await service.stop()
            return result, stats, probe, dict(proxy.stats)

        result, stats, probe, proxy_stats = asyncio.run(go())
        # every committed op has a unique value, and the counter's
        # final value equals the unique committed request ids exactly
        assert result.completed == 80
        assert result.errors == 0
        assert len(set(result.values)) == len(result.values)
        assert probe == stats["served"] == stats["rid_committed"] == 80
        # the chaos actually happened and retries actually carried it
        assert proxy_stats["resets"] + proxy_stats["truncations"] > 0
        assert result.retries > 0
