"""Tests for the second extension batch: FIFO channels, fetch-and-add,
the exact adversary, trace export, and the validate CLI."""

from __future__ import annotations

import csv
import io
import json

import pytest

from repro.analysis import (
    loads_to_csv,
    LoadProfile,
    run_to_json,
    run_to_summary,
    trace_to_csv,
    trace_to_json,
    trace_to_records,
)
from repro.cli import main as cli_main
from repro.core import TreeCounter
from repro.counters import CentralCounter
from repro.datatypes import ADD, DistributedAdder, run_ops
from repro.errors import ConfigurationError, ProtocolError
from repro.lowerbound import ExactAdversary, GreedyAdversary, message_load_bound
from repro.sim.messages import Message
from repro.sim.network import Network
from repro.sim.policies import FifoRandomDelay
from repro.sim.processor import InertProcessor
from repro.workloads import one_shot, run_sequence


class TestFifoRandomDelay:
    def test_same_channel_never_reorders(self):
        network = Network(policy=FifoRandomDelay(seed=3, low=0.5, high=20.0))
        network.register_all([InertProcessor(1), InertProcessor(2)])
        for _ in range(50):
            network.send(1, 2, "m", {})
        network.run_until_quiescent()
        uids = [r.uid for r in network.trace.records]
        assert uids == sorted(uids)

    def test_cross_channel_reordering_still_happens(self):
        network = Network(policy=FifoRandomDelay(seed=1, low=0.5, high=20.0))
        network.register_all([InertProcessor(p) for p in range(1, 6)])
        for index in range(40):
            network.send((index % 4) + 1, 5, "m", {})
        network.run_until_quiescent()
        uids = [r.uid for r in network.trace.records]
        assert uids != sorted(uids)  # some cross-channel overtaking
        # But per channel, order holds.
        per_channel: dict[int, list[int]] = {}
        for record in network.trace.records:
            per_channel.setdefault(record.sender, []).append(record.uid)
        for uids in per_channel.values():
            assert uids == sorted(uids)

    def test_counters_correct_under_fifo_channels(self):
        network = Network(policy=FifoRandomDelay(seed=5))
        counter = TreeCounter(network, 81)
        result = run_sequence(counter, one_shot(81))
        assert result.values() == list(range(81))

    def test_fork_replays(self):
        policy = FifoRandomDelay(seed=9)
        message = Message(sender=1, receiver=2, kind="m", send_time=0.0)
        first = [policy.delay(message) for _ in range(5)]
        assert [policy.fork().delay(message) for _ in range(5)][0] == first[0]

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            FifoRandomDelay(low=0.0)


class TestDistributedAdder:
    def test_fetch_and_add_semantics(self):
        network = Network()
        adder = DistributedAdder(network, 8)
        result = run_ops(
            adder,
            [(1, (ADD, 5)), (2, (ADD, -2)), (3, ("read",)), (4, (ADD, 10))],
        )
        assert result.replies() == [0, 5, 3, 3]
        assert adder.state == 13

    def test_default_request_is_inc(self):
        network = Network()
        adder = DistributedAdder(network, 4)
        result = run_sequence(adder, one_shot(4))  # begin_inc path
        assert result.values() == [0, 1, 2, 3]

    def test_one_shot_bottleneck_matches_counter(self):
        n = 81
        adder_net = Network()
        adder = DistributedAdder(adder_net, n)
        adder_result = run_ops(adder, [(pid, (ADD, pid)) for pid in one_shot(n)])
        tree_net = Network()
        tree = TreeCounter(tree_net, n)
        tree_result = run_sequence(tree, one_shot(n))
        assert adder_result.bottleneck_load() == tree_result.bottleneck_load()
        assert adder.state == sum(range(1, n + 1))

    def test_malformed_requests(self):
        network = Network()
        adder = DistributedAdder(network, 4)
        with pytest.raises(ProtocolError):
            run_ops(adder, [(1, ("add", "five"))])


class TestExactAdversary:
    def test_refuses_infeasible_n(self):
        with pytest.raises(ConfigurationError):
            ExactAdversary(CentralCounter, 12)

    def test_central_worst_case_is_known(self):
        # The server's own inc is free wherever it sits, so every order
        # yields exactly 2(n-1) at the server — the search must find it.
        result = ExactAdversary(CentralCounter, 5).run()
        assert result.worst_bottleneck == 8

    def test_exact_at_least_greedy(self):
        for factory in (CentralCounter, TreeCounter):
            exact = ExactAdversary(factory, 6).run()
            greedy = GreedyAdversary(factory, 6).run()
            assert exact.worst_bottleneck >= greedy.bottleneck_load

    def test_exact_respects_theorem(self):
        for factory in (CentralCounter, TreeCounter):
            result = ExactAdversary(factory, 6).run()
            assert result.worst_bottleneck >= message_load_bound(6)

    def test_symmetry_pruning_counts(self):
        result = ExactAdversary(CentralCounter, 6).run()
        # All non-server clients are interchangeable: huge pruning.
        assert result.orders_pruned_by_symmetry > 0
        assert result.orders_explored < 720


class TestExport:
    def _result(self):
        network = Network()
        counter = CentralCounter(network, 6)
        return run_sequence(counter, one_shot(6))

    def test_trace_records_roundtrip(self):
        result = self._result()
        records = trace_to_records(result.trace)
        assert len(records) == result.total_messages
        assert {"uid", "op", "sender", "receiver", "kind"} <= set(records[0])

    def test_trace_json_parses(self):
        result = self._result()
        parsed = json.loads(trace_to_json(result.trace))
        assert len(parsed) == result.total_messages

    def test_trace_csv_parses(self):
        result = self._result()
        rows = list(csv.DictReader(io.StringIO(trace_to_csv(result.trace))))
        assert len(rows) == result.total_messages
        assert rows[0]["kind"]

    def test_loads_csv(self):
        result = self._result()
        profile = LoadProfile.from_trace(result.trace, population=6)
        rows = list(csv.reader(io.StringIO(loads_to_csv(profile))))
        assert rows[0] == ["processor", "load"]
        total = sum(int(load) for _, load in rows[1:])
        assert total == 2 * result.total_messages

    def test_run_summary_fields(self):
        summary = run_to_summary(self._result())
        assert summary["counter"] == "central"
        assert summary["values_ok"] is True
        assert summary["bottleneck_processor"] == 1
        parsed = json.loads(run_to_json(self._result()))
        assert parsed["n"] == 6


class TestValidateCommand:
    def test_validate_reports_all_ok(self, capsys):
        code = cli_main(["validate", "--n", "27"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ALL OK" in out
        assert "FAIL" not in out
        assert "Bottleneck Theorem" in out
