"""Tests for the projective-plane quorum system."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.quorum import (
    ProjectivePlaneQuorum,
    QuorumCounter,
    naor_wool_floor,
    optimal_load,
    uniform_load,
)
from repro.sim.network import Network
from repro.workloads import one_shot, run_sequence

PRIMES = [2, 3, 5, 7]


class TestPlaneStructure:
    @pytest.mark.parametrize("q", PRIMES)
    def test_point_and_line_counts(self, q):
        system = ProjectivePlaneQuorum(q)
        assert system.n == q * q + q + 1
        assert system.quorum_count() == system.n  # self-dual

    @pytest.mark.parametrize("q", PRIMES)
    def test_every_line_has_q_plus_one_points(self, q):
        system = ProjectivePlaneQuorum(q)
        assert all(len(line) == q + 1 for line in system.quorums())

    @pytest.mark.parametrize("q", PRIMES)
    def test_any_two_lines_meet_in_exactly_one_point(self, q):
        system = ProjectivePlaneQuorum(q)
        lines = list(system.quorums())
        for i in range(len(lines)):
            for j in range(i + 1, len(lines)):
                assert len(lines[i] & lines[j]) == 1

    @pytest.mark.parametrize("q", PRIMES)
    def test_every_point_on_q_plus_one_lines(self, q):
        system = ProjectivePlaneQuorum(q)
        degrees = system.degrees()
        assert set(degrees.values()) == {q + 1}

    def test_fano_plane(self):
        # q=2 is the Fano plane: 7 points, 7 lines of 3.
        system = ProjectivePlaneQuorum(2)
        assert system.n == 7
        assert all(len(line) == 3 for line in system.quorums())

    def test_nonprime_rejected(self):
        for q in (0, 1, 4, 6, 9):
            with pytest.raises(ConfigurationError):
                ProjectivePlaneQuorum(q)


class TestPlaneLoad:
    @pytest.mark.parametrize("q", [2, 3, 5])
    def test_uniform_load_hits_the_floor(self, q):
        # The FPP is load-optimal: uniform load = (q+1)/n = NW floor.
        system = ProjectivePlaneQuorum(q)
        load = uniform_load(system).system_load
        assert load == pytest.approx((q + 1) / system.n)
        assert load == pytest.approx(naor_wool_floor(system))

    def test_optimal_equals_uniform(self):
        system = ProjectivePlaneQuorum(3)
        assert optimal_load(system).system_load == pytest.approx(
            uniform_load(system).system_load, abs=1e-6
        )

    def test_load_approaches_inverse_sqrt_n(self):
        system = ProjectivePlaneQuorum(7)
        load = uniform_load(system).system_load
        assert load == pytest.approx(1 / math.sqrt(system.n), rel=0.35)


class TestPlaneCounter:
    @pytest.mark.parametrize("q", [2, 3, 5])
    def test_counter_correct(self, q):
        system = ProjectivePlaneQuorum(q)
        network = Network()
        counter = QuorumCounter(network, system.n, system)
        result = run_sequence(counter, one_shot(system.n))
        assert result.values() == list(range(system.n))

    def test_counter_load_is_balanced(self):
        system = ProjectivePlaneQuorum(5)  # n = 31
        network = Network()
        counter = QuorumCounter(network, system.n, system)
        result = run_sequence(counter, one_shot(system.n))
        loads = [result.trace.load(p) for p in range(1, system.n + 1)]
        # Perfect combinatorial balance keeps max/mean small.
        assert max(loads) <= 2.1 * (sum(loads) / len(loads))
