"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


def _run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestRunCommand:
    def test_default_run(self, capsys):
        code, out, _ = _run(capsys, "run", "--n", "27")
        assert code == 0
        assert "ww-tree" in out
        assert "bottleneck" in out
        assert "all values correct" in out

    @pytest.mark.parametrize(
        "counter",
        ["central", "static-tree", "combining-tree", "counting-network",
         "diffracting-tree"],
    )
    def test_every_counter_runs(self, capsys, counter):
        code, out, _ = _run(capsys, "run", "--counter", counter, "--n", "16")
        assert code == 0
        assert counter in out

    def test_shuffled_order(self, capsys):
        code, out, _ = _run(
            capsys, "run", "--n", "16", "--order", "shuffled", "--seed", "3"
        )
        assert code == 0

    def test_concurrent_mode(self, capsys):
        code, out, _ = _run(
            capsys, "run", "--counter", "combining-tree", "--n", "16",
            "--concurrent",
        )
        assert code == 0
        assert "concurrent" in out

    def test_random_policy(self, capsys):
        code, out, _ = _run(
            capsys, "run", "--n", "16", "--policy", "random", "--seed", "4"
        )
        assert code == 0
        assert "policy=random" in out


class TestSweepCommand:
    def test_default_sweep(self, capsys):
        code, out, _ = _run(capsys, "sweep", "--ns", "16,64")
        assert code == 0
        assert "central" in out
        assert "ww-tree" in out
        assert "k(n) bound" in out

    def test_unknown_counter_fails(self, capsys):
        code, _, err = _run(capsys, "sweep", "--counters", "nonsense")
        assert code == 2
        assert "unknown" in err


class TestAdversaryCommand:
    def test_game_output(self, capsys):
        code, out, _ = _run(capsys, "adversary", "--n", "8")
        assert code == 0
        assert "bottleneck m_b" in out
        assert "True" in out

    def test_sampled_game(self, capsys):
        code, out, _ = _run(
            capsys, "adversary", "--counter", "ww-tree", "--n", "8",
            "--sample", "2",
        )
        assert code == 0


class TestBoundCommand:
    def test_curve(self, capsys):
        code, out, _ = _run(capsys, "bound", "--ns", "8,81")
        assert code == 0
        assert "2.00" in out
        assert "3.00" in out


class TestQuorumCommand:
    def test_square_universe_includes_maekawa(self, capsys):
        code, out, _ = _run(capsys, "quorum", "--n", "16")
        assert code == 0
        assert "MaekawaGrid" in out

    def test_nonsquare_universe_omits_maekawa(self, capsys):
        code, out, _ = _run(capsys, "quorum", "--n", "12")
        assert code == 0
        assert "MaekawaGrid" not in out
        assert "WheelQuorum" in out


class TestTreeCommand:
    def test_by_k(self, capsys):
        code, out, _ = _run(capsys, "tree", "--k", "3")
        assert code == 0
        assert "81 = 3^4" in out
        assert "walk" in out

    def test_by_n(self, capsys):
        code, out, _ = _run(capsys, "tree", "--n", "100")
        assert code == 0
        assert "arity=depth=4" in out
