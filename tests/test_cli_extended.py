"""Tests for the experiment and figures CLI subcommands."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro.cli import main


class TestExperimentCommand:
    def test_list_mode(self, capsys):
        code = main(["experiment"])
        out = capsys.readouterr().out
        assert code == 0
        for experiment_id in ("E1", "E9", "E17"):
            assert f"{experiment_id}:" in out
        # Ids are not duplicated in the descriptions.
        assert "E4: E4:" not in out

    def test_run_one_experiment(self, capsys):
        code = main(["experiment", "E1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "E1:" in out
        assert "communication list" in out

    def test_lowercase_id_accepted(self, capsys):
        code = main(["experiment", "e1"])
        assert code == 0

    def test_unknown_id_fails(self, capsys):
        code = main(["experiment", "E99"])
        err = capsys.readouterr().err
        assert code == 2
        assert "unknown experiment" in err


class TestFiguresCommand:
    def test_writes_svgs(self, capsys, tmp_path, monkeypatch):
        # Swap in cheap figure parameters.
        import repro.experiments.figures as figures_module

        from repro.experiments.figures import (
            figure_bottleneck_vs_k,
            figure_crossover,
        )

        monkeypatch.setattr(
            figures_module, "figure_bottleneck_vs_k",
            lambda runner=None: figure_bottleneck_vs_k(ks=(2,)),
        )
        monkeypatch.setattr(
            figures_module, "figure_crossover",
            lambda runner=None: figure_crossover(ns=(8, 27)),
        )
        monkeypatch.setattr(
            figures_module, "figure_baseline_sweep",
            lambda runner=None: figure_crossover(ns=(8, 27)),
        )
        code = main(["figures", "--out", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("wrote ") == 3
        for path in tmp_path.glob("*.svg"):
            ET.fromstring(path.read_text())
