"""Property-based tests for tree geometry and the bound arithmetic."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import NodeAddr, TreeGeometry, lower_bound_k
from repro.lowerbound import (
    LedgerStep,
    am_gm_holds,
    evaluate_ledger,
    message_load_bound,
    paper_n,
)

shapes = st.tuples(st.integers(2, 5), st.integers(1, 4))


class TestGeometryProperties:
    @given(shape=shapes)
    def test_leaf_partition(self, shape):
        """Last-level nodes partition the leaves exactly."""
        arity, depth = shape
        geometry = TreeGeometry(arity=arity, depth=depth)
        seen: list[int] = []
        for index in range(geometry.nodes_on_level(depth)):
            seen.extend(geometry.leaf_children(NodeAddr(depth, index)))
        assert seen == list(range(1, geometry.leaf_count + 1))

    @given(shape=shapes, leaf=st.integers(0, 10_000))
    def test_path_to_root_is_consistent(self, shape, leaf):
        arity, depth = shape
        geometry = TreeGeometry(arity=arity, depth=depth)
        pid = (leaf % geometry.leaf_count) + 1
        path = geometry.path_to_root(pid)
        assert path[-1].is_root
        assert len(path) == depth + 1
        for lower, upper in zip(path, path[1:]):
            assert geometry.parent(lower) == upper
            assert lower in geometry.children(upper) or upper.level == depth

    @given(shape=shapes)
    def test_intervals_pairwise_disjoint(self, shape):
        arity, depth = shape
        geometry = TreeGeometry(arity=arity, depth=depth)
        seen: set[int] = set()
        for addr in geometry.all_nodes():
            if addr.is_root:
                continue
            ids = set(geometry.id_interval(addr))
            assert not (ids & seen)
            seen |= ids

    @given(shape=shapes)
    def test_interval_sizes_sum_to_band_per_level(self, shape):
        arity, depth = shape
        geometry = TreeGeometry(arity=arity, depth=depth)
        for level in range(1, depth + 1):
            total = sum(
                len(geometry.id_interval(NodeAddr(level, index)))
                for index in range(geometry.nodes_on_level(level))
            )
            assert total == arity**depth

    @given(k=st.integers(2, 6))
    def test_paper_shape_identity(self, k):
        geometry = TreeGeometry.paper_shape(k)
        assert geometry.leaf_count == paper_n(k)
        assert geometry.max_interval_id() == paper_n(k)


class TestBoundProperties:
    @given(n=st.integers(2, 10**9))
    def test_bound_inverse_consistency(self, n):
        """k(n) satisfies k·kᵏ ≈ n within bisection tolerance."""
        k = lower_bound_k(n)
        assert abs((k + 1) * math.log(k) - math.log(n)) < 1e-6

    @given(n=st.integers(1, 10**7))
    def test_floor_bound_is_sound(self, n):
        assert message_load_bound(n) <= lower_bound_k(n) + 1e-6

    @given(a=st.integers(2, 10**6), b=st.integers(2, 10**6))
    def test_monotone(self, a, b):
        low, high = min(a, b), max(a, b)
        assert lower_bound_k(low) <= lower_bound_k(high) + 1e-9


ledger_steps = st.lists(
    st.tuples(
        st.lists(st.integers(1, 30), min_size=1, max_size=8),
        st.dictionaries(st.integers(1, 30), st.integers(0, 50), max_size=10),
    ),
    min_size=1,
    max_size=20,
)


class TestWeightProperties:
    @settings(max_examples=100)
    @given(raw=ledger_steps, base=st.floats(1.5, 16.0))
    def test_am_gm_always_holds(self, raw, base):
        """The proof's AM–GM step is pure arithmetic: true on ANY ledger."""
        steps = [
            LedgerStep(
                op_index=index,
                q_list=tuple(labels),
                chosen_list_length=len(labels) - 1,
                loads_before=loads,
            )
            for index, (labels, loads) in enumerate(raw)
        ]
        report = evaluate_ledger(steps, base=base)
        assert am_gm_holds(report)

    @settings(max_examples=100)
    @given(raw=ledger_steps, base=st.floats(1.5, 16.0))
    def test_weights_nonnegative_and_bounded(self, raw, base):
        steps = [
            LedgerStep(
                op_index=index,
                q_list=tuple(labels),
                chosen_list_length=len(labels) - 1,
                loads_before=loads,
            )
            for index, (labels, loads) in enumerate(raw)
        ]
        report = evaluate_ledger(steps, base=base)
        max_load = max(
            (m for _, loads in raw for m in loads.values()), default=0
        )
        # w <= (max_load+1) * Σ base^-j < (max_load+1) * 1/(base-1).
        ceiling = (max_load + 1) / (base - 1.0)
        for weight in report.weights:
            assert 0.0 <= weight <= ceiling + 1e-9
