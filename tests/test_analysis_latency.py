"""Tests for operation-latency analysis (the §1 time measure)."""

from __future__ import annotations

import pytest

from repro.analysis import LatencyProfile, op_latency
from repro.core import TreeCounter
from repro.counters import CentralCounter, StaticTreeCounter
from repro.sim.network import Network
from repro.workloads import one_shot, run_sequence


def _run(factory, n):
    network = Network()
    counter = factory(network, n)
    return run_sequence(counter, one_shot(n))


class TestOpLatency:
    def test_central_remote_op_takes_two_units(self):
        result = _run(CentralCounter, 8)
        # Op 1 (processor 2): request 1 unit + reply 1 unit.
        assert op_latency(result.trace, 1) == pytest.approx(2.0)

    def test_local_op_is_instant(self):
        result = _run(CentralCounter, 8)
        # Op 0 is the server's own inc: zero messages.
        assert op_latency(result.trace, 0) == 0.0

    def test_static_tree_latency_is_depth_plus_reply(self):
        # k=2 tree: climb 3 levels + direct answer = 4 units.
        result = _run(StaticTreeCounter, 8)
        profile = LatencyProfile.from_run(result)
        assert profile.worst == pytest.approx(4.0)

    def test_tree_latency_grows_with_k_not_n(self):
        worst = {}
        for k in (2, 3, 4):
            result = _run(TreeCounter, k ** (k + 1))
            worst[k] = LatencyProfile.from_run(result).worst
        # Baseline climb is k+2; retirement bursts add a bounded tail.
        for k, value in worst.items():
            assert k + 2 <= value <= 4 * (k + 2)
        # n grew 128x between k=2 and k=4; latency must not.
        assert worst[4] <= 3 * worst[2]


class TestLatencyProfile:
    def test_mean_and_percentile(self):
        profile = LatencyProfile(latencies=(1.0, 2.0, 3.0, 10.0))
        assert profile.mean == pytest.approx(4.0)
        assert profile.worst == 10.0
        assert profile.percentile(0.0) == 1.0
        assert profile.percentile(1.0) == 10.0

    def test_empty_profile(self):
        profile = LatencyProfile(latencies=())
        assert profile.worst == 0.0
        assert profile.mean == 0.0
        assert profile.percentile(0.5) == 0.0

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            LatencyProfile(latencies=(1.0,)).percentile(2.0)

    def test_latency_vs_load_tradeoff(self):
        # The central counter is latency-optimal (2 units) and
        # load-pessimal; the tree pays ~k+2 latency to spread load.
        n = 81
        central = LatencyProfile.from_run(_run(CentralCounter, n))
        tree = LatencyProfile.from_run(_run(TreeCounter, n))
        assert central.worst < tree.worst
