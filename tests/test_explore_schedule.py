"""Schedules as data: decision streams, repro files, delta-shrinking.

Unit layer of the exploration stack — no episodes are run here; these
tests pin the data contracts (any non-negative integer list is a legal
schedule, decision 0 is the baseline, repro files round-trip through
JSON byte-stably) that the engine and corpus tests build on.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.explore import (
    DEFAULT_DELAY_MENU,
    REPRO_SCHEMA,
    ReproFile,
    Schedule,
    shrink_schedule,
)

pytestmark = pytest.mark.explore


class TestSchedule:
    def test_rejects_negative_decisions(self):
        with pytest.raises(ConfigurationError, match="non-negative"):
            Schedule(decisions=(1, -2))

    def test_kinds_must_align_with_decisions(self):
        with pytest.raises(ConfigurationError, match="equal length"):
            Schedule(decisions=(1, 2), kinds=("delay",))

    def test_trimmed_drops_trailing_zeros_only(self):
        schedule = Schedule(decisions=(0, 3, 0, 1, 0, 0))
        assert schedule.trimmed().decisions == (0, 3, 0, 1)
        assert Schedule(decisions=(0, 0)).trimmed().decisions == ()

    def test_nonzero_count_measures_deviation_from_baseline(self):
        assert Schedule(decisions=(0, 3, 0, 1)).nonzero_count() == 2
        assert Schedule().nonzero_count() == 0

    def test_len_is_the_decision_count(self):
        assert len(Schedule(decisions=(1, 2, 3))) == 3


class TestReproFile:
    REPRO = ReproFile(
        counter="mutant[stale-central]",
        n=6,
        seed=3,
        oracle="linearizability",
        decisions=(0, 0, 3),
        message="values not unique",
        strategy="random",
        episode=2,
    )

    def test_json_round_trip_is_identity(self):
        assert ReproFile.from_json(self.REPRO.to_json()) == self.REPRO

    def test_save_load_round_trip(self, tmp_path):
        path = self.REPRO.save(tmp_path / "witness.json")
        assert ReproFile.load(path) == self.REPRO

    def test_saved_form_is_stable_pretty_json(self, tmp_path):
        path = self.REPRO.save(tmp_path / "witness.json")
        text = path.read_text()
        assert text.endswith("\n")
        payload = json.loads(text)
        assert payload["schema"] == REPRO_SCHEMA
        assert payload["failure"]["oracle"] == "linearizability"
        assert payload["provenance"] == {"strategy": "random", "episode": 2}
        # Re-saving produces byte-identical output (diff-friendly corpus).
        again = self.REPRO.save(tmp_path / "witness2.json")
        assert again.read_text() == text

    def test_unknown_schema_is_rejected(self):
        payload = self.REPRO.to_json()
        payload["schema"] = "explore-repro-v999"
        with pytest.raises(ConfigurationError, match="unsupported repro schema"):
            ReproFile.from_json(payload)

    def test_defaults_fill_omitted_fields(self):
        payload = {
            "schema": REPRO_SCHEMA,
            "counter": "central",
            "n": 4,
            "seed": 0,
            "decisions": [1],
            "failure": {"oracle": "runtime"},
        }
        repro = ReproFile.from_json(payload)
        assert repro.transport == "bare"
        assert repro.workload == "staggered"
        assert repro.delay_menu == DEFAULT_DELAY_MENU


class TestShrinkSchedule:
    def test_single_culprit_shrinks_to_one_decision(self):
        # Failure iff decision 7 (index 7) is non-zero: everything else
        # must be zeroed away and the trailing tail trimmed.
        def still_fails(decisions):
            return len(decisions) > 7 and decisions[7] != 0

        shrunk = shrink_schedule([2, 1, 3, 1, 2, 1, 3, 2, 1, 1], still_fails)
        assert shrunk.decisions == (0, 0, 0, 0, 0, 0, 0, 2)
        assert shrunk.nonzero_count() == 1

    def test_two_interacting_culprits_both_survive(self):
        def still_fails(decisions):
            padded = list(decisions) + [0, 0, 0, 0, 0, 0]
            return padded[1] != 0 and padded[5] != 0

        shrunk = shrink_schedule([3, 2, 3, 3, 3, 1, 3, 3], still_fails)
        assert shrunk.decisions[1] != 0 and shrunk.decisions[5] != 0
        assert shrunk.nonzero_count() == 2

    def test_baseline_failure_shrinks_to_empty(self):
        shrunk = shrink_schedule([1, 2, 3], lambda decisions: True)
        assert shrunk.decisions == ()

    def test_shrinking_never_relies_on_deletion(self):
        # Position matters (decision alignment): the shrinker zeroes
        # windows but must never shift later decisions earlier.
        def still_fails(decisions):
            return len(decisions) > 4 and decisions[4] == 9

        shrunk = shrink_schedule([1, 1, 1, 1, 9, 1, 1], still_fails)
        assert shrunk.decisions == (0, 0, 0, 0, 9)

    def test_evaluation_budget_is_respected(self):
        calls = []

        def still_fails(decisions):
            calls.append(1)
            return True

        shrink_schedule(list(range(1, 65)), still_fails, max_evals=10)
        assert len(calls) <= 10

    def test_result_is_trimmed_even_when_nothing_shrinks(self):
        def still_fails(decisions):
            # Only the exact original (zero-padded) fails: no window can
            # be zeroed.
            return list(decisions[:3]) == [1, 2, 3]

        shrunk = shrink_schedule([1, 2, 3, 0, 0], still_fails)
        assert shrunk.decisions == (1, 2, 3)
