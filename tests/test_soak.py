"""Soak tests: long mixed workloads across the whole stack.

Each soak interleaves counters, orders, policies and concurrency in one
continuous scenario and re-checks every invariant at the end.  They are
the closest thing the suite has to an integration 'day in the life'.
"""

from __future__ import annotations

import random

import pytest

from repro.core import IntervalMode, TreeCounter, TreeGeometry, TreePolicy
from repro.core.invariants import check_retirement_lemma, check_tenure_bound
from repro.counters import ArrowCounter, CentralCounter, CombiningTreeCounter
from repro.datatypes import (
    DELETE_MIN,
    FLIP,
    INSERT,
    DistributedFlipBit,
    DistributedPriorityQueue,
    run_ops,
)
from repro.lowerbound import check_hot_spot
from repro.sim.network import Network
from repro.sim.policies import RandomDelay
from repro.workloads import run_concurrent, run_sequence


class TestLongMixedRuns:
    def test_tree_counter_thousand_ops_wrapped(self):
        rng = random.Random(42)
        n = 81
        network = Network(policy=RandomDelay(seed=7))
        geometry = TreeGeometry.paper_shape(3)
        counter = TreeCounter(
            network,
            n,
            geometry=geometry,
            policy=TreePolicy(retire_threshold=12, interval_mode=IntervalMode.WRAP),
        )
        order = [rng.randrange(1, n + 1) for _ in range(1000)]
        result = run_sequence(counter, order)
        assert result.values() == list(range(1000))
        assert check_hot_spot(result).holds
        assert check_retirement_lemma(counter).holds
        assert check_tenure_bound(counter).holds
        # Load stays spread: nobody handles more than a few percent of
        # the traffic.
        peak = result.bottleneck_load()
        assert peak < 0.08 * 2 * result.total_messages

    def test_concurrent_batches_interleaved_with_sequential(self):
        network = Network(policy=RandomDelay(seed=3))
        counter = CombiningTreeCounter(network, 32)
        sequential = run_sequence(counter, list(range(1, 17)))
        assert sequential.values() == list(range(16))
        # Continue the same counter with concurrent batches; values keep
        # ascending from where the sequential phase stopped.
        batch_result = run_concurrent(
            counter, [list(range(1, 33))], check_values=False
        )
        values = [o.value for o in batch_result.outcomes]
        assert sorted(values) == list(range(16, 48))

    def test_priority_queue_long_session(self):
        import heapq

        rng = random.Random(9)
        n = 81
        network = Network()
        queue = DistributedPriorityQueue(
            network,
            n,
            policy=TreePolicy(retire_threshold=12, interval_mode=IntervalMode.WRAP),
        )
        reference: list[int] = []
        ops = []
        expected = []
        for _ in range(400):
            pid = rng.randrange(1, n + 1)
            if reference and rng.random() < 0.45:
                ops.append((pid, (DELETE_MIN,)))
                expected.append(heapq.heappop(reference))
            else:
                key = rng.randrange(10_000)
                ops.append((pid, (INSERT, key)))
                heapq.heappush(reference, key)
                expected.append(len(reference))
        result = run_ops(queue, ops)
        assert result.replies() == expected

    def test_flip_bit_parity_over_long_run(self):
        n = 27
        network = Network()
        bit = DistributedFlipBit(
            network,
            n,
            policy=TreePolicy(retire_threshold=12, interval_mode=IntervalMode.WRAP),
        )
        rng = random.Random(4)
        ops = [(rng.randrange(1, n + 1), FLIP) for _ in range(500)]
        result = run_ops(bit, ops)
        assert result.replies() == [i % 2 for i in range(500)]
        assert bit.state == 0

    def test_arrow_token_random_walk(self):
        rng = random.Random(11)
        n = 64
        network = Network(policy=RandomDelay(seed=5))
        counter = ArrowCounter(network, n)
        order = [rng.randrange(1, n + 1) for _ in range(800)]
        result = run_sequence(counter, order)
        assert result.values() == list(range(800))
        # The token ends with the last distinct requester.
        assert counter.owner == order[-1]
        assert counter.value == 800

    def test_central_counter_extreme_length(self):
        network = Network()
        counter = CentralCounter(network, 16)
        order = [(i % 16) + 1 for i in range(2000)]
        result = run_sequence(counter, order)
        assert result.values() == list(range(2000))
        # Server load: 3 messages per remote op is the exact ledger.
        remote_ops = sum(1 for pid in order if pid != counter.server_id)
        assert result.trace.load(counter.server_id) == 2 * remote_ops
