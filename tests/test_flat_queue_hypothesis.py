"""Property-based equivalence of ``FlatEventQueue`` and ``EventQueue``.

Hypothesis drives both queues through identical random command
sequences — ``schedule``, ``schedule_call``, ``run_next``, ``pop``,
``run_many``, and ``clear`` — and asserts that the bucket-backed fast
queue observes exactly the same execution order and clock trajectory as
the heapq reference.

The queue API has no cancellation primitive (events, once scheduled,
always run or are discarded wholesale by ``clear``), so there is no
cancel command to model here; if cancellation is ever added it must be
covered by this suite.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.events import EventQueue, FlatEventQueue

# Small delay palette with repeats so buckets collide often — the
# interesting regime for the flat queue is many events per tick.
DELAYS = st.sampled_from((0.0, 0.0, 0.5, 1.0, 1.0, 1.5, 2.0))

COMMANDS = st.lists(
    st.one_of(
        st.tuples(st.just("schedule"), DELAYS, st.integers(0, 7)),
        st.tuples(st.just("schedule_call"), DELAYS, st.integers(0, 7)),
        st.tuples(st.just("run_next"), st.just(None), st.just(None)),
        st.tuples(st.just("pop"), st.just(None), st.just(None)),
        st.tuples(st.just("run_many"), st.integers(1, 6), st.just(None)),
        st.tuples(st.just("clear"), st.just(None), st.just(None)),
    ),
    min_size=1,
    max_size=60,
)


class _Log:
    """Records every execution with the clock reading at fire time."""

    def __init__(self, queue):
        self.queue = queue
        self.entries: list[tuple[str, int | None, float]] = []
        if isinstance(queue, FlatEventQueue):
            # Exercise the bare-arg fast path for the bound action.
            queue.bind(self.fire)

    def fire(self, tag):
        self.entries.append(("fire", tag, self.queue.now))

    def plain(self, tag):
        def action():
            self.entries.append(("plain", tag, self.queue.now))

        return action


def _apply(commands, queue, log):
    for name, first, second in commands:
        if name == "schedule":
            queue.schedule(first, log.plain(second))
        elif name == "schedule_call":
            queue.schedule_call(first, log.fire, second)
        elif name == "run_next":
            if queue:
                queue.run_next()
        elif name == "pop":
            if queue:
                event = queue.pop()
                log.entries.append(("pop", None, event.time))
                event.action()
        elif name == "run_many":
            ran = queue.run_many(first)
            log.entries.append(("ran", ran, queue.now))
        elif name == "clear":
            queue.clear()
            log.entries.append(("clear", None, queue.now))
    # Drain whatever survives so trailing schedules are observed too.
    while queue:
        queue.run_next()


class TestFlatQueueMatchesHeapqReference:
    @given(commands=COMMANDS)
    @settings(max_examples=200, deadline=None)
    def test_identical_execution_and_clock(self, commands):
        reference = EventQueue()
        fast = FlatEventQueue()
        reference_log = _Log(reference)
        fast_log = _Log(fast)
        _apply(commands, reference, reference_log)
        _apply(commands, fast, fast_log)
        assert fast_log.entries == reference_log.entries
        assert fast.now == reference.now
        assert len(fast) == len(reference) == 0

    @given(
        delays=st.lists(DELAYS, min_size=1, max_size=40),
        clear_at=st.integers(0, 40),
    )
    @settings(max_examples=100, deadline=None)
    def test_clear_mid_stream_then_reschedule(self, delays, clear_at):
        reference = EventQueue()
        fast = FlatEventQueue()
        reference_log = _Log(reference)
        fast_log = _Log(fast)
        for queue, log in ((reference, reference_log), (fast, fast_log)):
            for index, delay in enumerate(delays):
                if index == clear_at:
                    queue.run_many(2)
                    queue.clear()
                queue.schedule_call(delay, log.fire, index)
            while queue:
                queue.run_next()
        assert fast_log.entries == reference_log.entries
        assert fast.now == reference.now

    @given(count=st.integers(1, 30))
    @settings(max_examples=50, deadline=None)
    def test_zero_delay_cascade(self, count):
        """Events that schedule more events at the same tick run in
        FIFO order on both cores (the active bucket keeps growing)."""

        def cascade(queue, log, remaining):
            def action(tag):
                log.entries.append(("fire", tag, queue.now))
                if tag + 1 < remaining:
                    queue.schedule_call(0.0, log.fire_cascade, tag + 1)

            return action

        results = []
        for queue in (EventQueue(), FlatEventQueue()):
            log = _Log(queue)
            log.fire_cascade = cascade(queue, log, count)
            queue.schedule_call(0.0, log.fire_cascade, 0)
            while queue:
                queue.run_next()
            results.append(log.entries)
        assert results[0] == results[1]
        assert len(results[0]) == count
