"""Tests for quorum fault tolerance, capacity, and the ping-pong helper."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.quorum import (
    CrumblingWall,
    MaekawaGrid,
    ProjectivePlaneQuorum,
    RotatingMajorityQuorum,
    SingletonQuorum,
    TreePathQuorum,
    WheelQuorum,
    capacity,
    fault_tolerance,
    optimal_load,
)
from repro.workloads import ping_pong


class TestFaultTolerance:
    def test_singleton_tolerates_nothing(self):
        assert fault_tolerance(SingletonQuorum(9)) == 0

    def test_wheel_tolerates_one(self):
        # Kill the hub: the rim survives.  Kill hub + a spoke: still a
        # rim... no — the rim contains all spokes, killing any spoke
        # kills the rim, and the hub kills the spoke-quorums: FT = 1.
        assert fault_tolerance(WheelQuorum(9)) == 1

    def test_tree_paths_root_is_a_single_point_of_failure(self):
        assert fault_tolerance(TreePathQuorum(15)) == 0

    def test_fano_plane_tolerates_two(self):
        # Any line is a minimum hitting set of the Fano plane (size 3).
        assert fault_tolerance(ProjectivePlaneQuorum(2)) == 2

    def test_maekawa_grid(self):
        # A full row (or column) hits every row∪column quorum: size √n.
        assert fault_tolerance(MaekawaGrid(9)) == 2

    def test_wall_single_row_is_fragile(self):
        system = CrumblingWall(6, row_widths=[3, 3])
        # One element of the top row plus one of the bottom row hits all
        # quorums? top-row quorums contain the whole top row -> any top
        # element hits them... verify against brute force only.
        assert fault_tolerance(system) >= 0

    def test_search_limit_guard(self):
        # Rotating majority over 13 elements needs a large hitting set;
        # a tiny limit must raise rather than silently cap.
        with pytest.raises(RuntimeError):
            fault_tolerance(RotatingMajorityQuorum(13), search_limit=1)


class TestCapacity:
    def test_capacity_is_inverse_load(self):
        system = MaekawaGrid(16)
        assert capacity(system) == pytest.approx(
            1.0 / optimal_load(system).system_load
        )

    def test_fpp_capacity_is_order_sqrt_n(self):
        system = ProjectivePlaneQuorum(5)  # n = 31, load (q+1)/n
        assert capacity(system) == pytest.approx(31 / 6, rel=0.01)

    def test_singleton_capacity_one(self):
        assert capacity(SingletonQuorum(5)) == pytest.approx(1.0)


class TestPingPong:
    def test_alternates_extremes(self):
        assert ping_pong(9, 4) == [1, 9, 1, 9]

    def test_default_length_is_n(self):
        assert len(ping_pong(6)) == 6

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ping_pong(1)
        with pytest.raises(ConfigurationError):
            ping_pong(4, 0)
