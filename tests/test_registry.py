"""Tests for the counter registry, spec strings, and RunSession."""

from __future__ import annotations

import pathlib

import pytest

from repro.cli import main
from repro.errors import CapabilityError, ConfigurationError
from repro.registry import (
    POLICY_NAMES,
    RunSession,
    canonical_spec,
    get_spec,
    make_policy,
    parse_spec,
    registered_names,
    registered_specs,
    resolve_factory,
)
from repro.sim.network import Network
from repro.workloads import one_shot, run_concurrent


class TestSpecRoundTrips:
    @pytest.mark.parametrize("name", registered_names())
    def test_bare_name_round_trips(self, name):
        ref = parse_spec(name)
        assert ref.canonical == name
        assert parse_spec(ref.canonical) == ref

    def test_nondefault_params_round_trip(self):
        ref = parse_spec("combining-tree?window=3.0&arity=4")
        assert parse_spec(ref.canonical) == ref
        assert ref.canonical == "combining-tree?arity=4&window=3.0"

    def test_defaults_are_elided(self):
        assert canonical_spec("combining-tree?arity=2&window=0.75") == (
            "combining-tree"
        )
        assert canonical_spec("ww-tree?retire_threshold=0") == "ww-tree"

    def test_parameter_order_is_canonicalized(self):
        left = canonical_spec("diffracting-tree?seed=7&prism_size=8")
        right = canonical_spec("diffracting-tree?prism_size=8&seed=7")
        assert left == right == "diffracting-tree?prism_size=8&seed=7"

    def test_parse_is_idempotent_on_refs(self):
        ref = parse_spec("central")
        assert parse_spec(ref) is ref

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_spec("nonesuch")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_spec("central?frequency=9")

    def test_malformed_parameter_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_spec("central?server_id")

    def test_duplicate_parameter_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_spec("combining-tree?arity=2&arity=3")

    def test_bounds_are_enforced(self):
        with pytest.raises(ConfigurationError):
            parse_spec("combining-tree?arity=1")
        with pytest.raises(ConfigurationError):
            parse_spec("ww-tree?interval_mode=sideways")


class TestRegistryCompleteness:
    def test_every_spec_builds_a_counter_with_matching_name(self):
        n = 16  # square and a power of two: every spec accepts it
        for spec in registered_specs():
            assert spec.supports_n(n) is None
            network = Network()
            counter = spec.build(network, n)
            assert counter.name == spec.name, (
                f"{spec.name}: built counter reports name {counter.name!r}"
            )

    def test_every_counter_module_is_registered(self):
        # Mirror of scripts/check_registry.py, kept in-suite so a fresh
        # implementation without a spec fails the tests too.
        root = pathlib.Path(__file__).parent.parent / "src" / "repro"
        modules = {
            path.stem
            for path in (root / "counters").glob("*.py")
            if path.stem != "__init__"
        }
        base_names = {name.partition("[")[0] for name in registered_names()}
        missing = {
            module
            for module in modules
            if module.replace("_", "-") not in base_names
            and module not in ("counting_network", "combining_tree",
                               "diffracting_tree", "static_tree",
                               "recoverable", "byzantine")
        }
        for module, slug in (
            ("counting_network", "counting-network"),
            ("combining_tree", "combining-tree"),
            ("diffracting_tree", "diffracting-tree"),
            ("static_tree", "static-tree"),
            ("byzantine", "byz-counter"),
        ):
            if slug not in base_names:
                missing.add(module)
        # The recoverable module registers bracketed variants.
        names = set(registered_names())
        if not {"central[standby]", "combining-tree[bypass]"} <= names:
            missing.add("recoverable")
        assert not missing, f"counter modules without a spec: {missing}"
        assert "ww-tree" in base_names
        assert "quorum" in base_names

    def test_capability_flags_consistent_with_class(self):
        for spec in registered_specs():
            assert spec.capabilities.supports_concurrent == (
                not spec.capabilities.sequential_only
            )


class TestCapabilityEnforcement:
    def _sequential_only_specs(self):
        return [s for s in registered_specs() if s.capabilities.sequential_only]

    def test_registry_declares_sequential_only_counters(self):
        names = {s.name for s in self._sequential_only_specs()}
        assert "arrow" in names
        assert "quorum[maekawa]" in names

    @pytest.mark.parametrize(
        "name",
        [s.name for s in registered_specs() if s.capabilities.sequential_only],
    )
    def test_concurrent_driver_fails_fast(self, name):
        spec = get_spec(name)
        n = 16  # square, so every quorum system accepts it
        network = Network()
        counter = spec.build(network, n)
        with pytest.raises(CapabilityError) as excinfo:
            run_concurrent(counter, [one_shot(n)])
        assert name in str(excinfo.value)

    def test_run_session_concurrent_fails_fast_on_arrow(self):
        session = RunSession("arrow", 8)
        with pytest.raises(CapabilityError):
            session.run_concurrent()

    def test_square_n_requirement(self):
        spec = get_spec("quorum[maekawa]")
        assert spec.supports_n(16) is None
        assert spec.supports_n(12) is not None
        with pytest.raises(CapabilityError):
            spec.check_n(12)
        with pytest.raises(CapabilityError):
            RunSession("quorum[maekawa]", 12)

    def test_capability_error_is_a_configuration_error(self):
        assert issubclass(CapabilityError, ConfigurationError)


class TestRunSession:
    def test_sequential_run_counts(self):
        session = RunSession("central", 16)
        result = session.run_sequence()
        assert result.values() == list(range(16))
        assert session.canonical == "central"

    def test_session_records_canonical_spec(self):
        session = RunSession("combining-tree?arity=2&window=0.75", 8)
        assert session.canonical == "combining-tree"

    def test_policy_by_name(self):
        session = RunSession("central", 8, policy="random", seed=3)
        result = session.run_sequence()
        assert result.bottleneck_load() > 0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            make_policy("postal")
        assert "unit" in POLICY_NAMES

    def test_unknown_workload_rejected(self):
        session = RunSession("central", 8)
        with pytest.raises(ConfigurationError):
            session.run_workload("marathon")

    def test_resolve_factory_passthrough(self):
        calls = []

        def factory(network, n):
            calls.append(n)
            return parse_spec("central").build(network, n)

        resolved = resolve_factory(factory)
        assert resolved is factory


class TestCountersSubcommand:
    def _run(self, capsys, *argv):
        code = main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_lists_every_registered_name(self, capsys):
        code, out, _ = self._run(capsys, "counters")
        assert code == 0
        for name in registered_names():
            assert name in out

    def test_shows_capability_flags(self, capsys):
        code, out, _ = self._run(capsys, "counters")
        assert code == 0
        assert "sequential-only" in out

    def test_verbose_lists_tunables(self, capsys):
        code, out, _ = self._run(capsys, "counters", "--verbose")
        assert code == 0
        assert "window" in out
        assert "retire_threshold" in out

    def test_run_rejects_bad_spec(self, capsys):
        code, _, err = self._run(
            capsys, "run", "--counter", "nonesuch", "--n", "8"
        )
        assert code == 2
        assert "bad counter spec" in err
