"""Smoke tests: every example script runs to completion.

Examples are documentation that executes; these tests keep them from
drifting as the library evolves.  Each runs as a subprocess with small
arguments and must exit 0 with non-trivial output.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=240,
    )


@pytest.mark.parametrize(
    "script,args,expect",
    [
        ("quickstart.py", ["27"], "bottleneck load"),
        ("counter_shootout.py", ["32"], "Sequential one-shot workload"),
        ("adversary_game.py", ["central", "8"], "theorem satisfied"),
        ("trace_explorer.py", ["27", "10"], "Communication DAG"),
        ("quorum_tour.py", ["16"], "Quorum systems"),
        ("tree_dashboard.py", ["2"], "communication tree"),
        ("ticket_lock.py", ["27", "2"], "mutual exclusion"),
        ("task_scheduler.py", ["27", "40"], "tasks served strictly by deadline"),
    ],
)
def test_example_runs_clean(script, args, expect):
    completed = _run(script, *args)
    assert completed.returncode == 0, completed.stderr[-1000:]
    assert expect in completed.stdout
    assert not completed.stderr.strip()


def test_every_example_file_is_covered():
    scripts = {path.name for path in EXAMPLES.glob("*.py")}
    covered = {
        "quickstart.py",
        "counter_shootout.py",
        "adversary_game.py",
        "trace_explorer.py",
        "quorum_tour.py",
        "tree_dashboard.py",
        "ticket_lock.py",
        "task_scheduler.py",
    }
    assert scripts == covered, f"untested examples: {scripts - covered}"
