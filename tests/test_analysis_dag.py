"""Unit tests for communication DAGs and lists (the paper's Figures 1-2)."""

from __future__ import annotations

from repro.analysis import build_dag, build_list, lists_for_run
from repro.counters import CentralCounter
from repro.core import TreeCounter
from repro.sim.messages import MessageRecord
from repro.sim.network import Network
from repro.sim.trace import Trace
from repro.workloads import one_shot, run_sequence


def _trace(edges, op_index=0):
    trace = Trace()
    for uid, (sender, receiver) in enumerate(edges):
        trace.record(
            MessageRecord(
                sender=sender, receiver=receiver, kind="m", op_index=op_index,
                uid=uid, send_time=float(uid), deliver_time=float(uid) + 1,
            )
        )
    return trace


class TestBuildDag:
    def test_single_message(self):
        dag = build_dag(_trace([(1, 2)]), 0, initiator=1)
        assert dag.message_count == 1
        assert dag.participants() == frozenset({1, 2})
        assert dag.is_acyclic()

    def test_chain_depth(self):
        dag = build_dag(_trace([(1, 2), (2, 3), (3, 4)]), 0, initiator=1)
        assert dag.depth() == 3

    def test_fan_out_depth_one(self):
        dag = build_dag(_trace([(1, 2), (1, 3), (1, 4)]), 0, initiator=1)
        assert dag.depth() == 1
        assert dag.message_count == 3

    def test_revisit_creates_second_occurrence(self):
        # 1 -> 2 -> 1: processor 1 appears twice (source and answer),
        # matching the paper's "p appears as the source of the DAG and
        # somewhere else where p is informed".
        dag = build_dag(_trace([(1, 2), (2, 1)]), 0, initiator=1)
        occurrences = [node for node in dag.graph.nodes if node.pid == 1]
        assert len(occurrences) == 2

    def test_empty_operation_has_source_only(self):
        dag = build_dag(Trace(), 0, initiator=5)
        assert dag.message_count == 0
        assert dag.participants() == frozenset({5})
        assert dag.source().pid == 5

    def test_ascii_rendering(self):
        dag = build_dag(_trace([(1, 2)]), 0, initiator=1)
        text = dag.to_ascii()
        assert "inc by processor 1" in text
        assert "-->" in text


class TestBuildList:
    def test_initiator_heads_the_list(self):
        lst = build_list(_trace([(1, 2), (2, 3)]), 0, initiator=1)
        assert lst.initiator == 1
        assert lst.labels == (1, 2, 3)

    def test_length_equals_message_count(self):
        lst = build_list(_trace([(1, 2), (2, 3), (3, 1)]), 0, initiator=1)
        assert lst.length == 3

    def test_label_is_one_based_like_the_paper(self):
        lst = build_list(_trace([(1, 2)]), 0, initiator=1)
        assert lst.label(1) == 1  # p_{i,1} = q
        assert lst.label(2) == 2

    def test_empty_operation_list(self):
        lst = build_list(Trace(), 3, initiator=7)
        assert lst.labels == (7,)
        assert lst.length == 0

    def test_str_rendering(self):
        lst = build_list(_trace([(1, 2)]), 0, initiator=1)
        assert str(lst) == "1 -> 2"


class TestOnRealCounters:
    def test_central_counter_dag_is_request_reply(self):
        network = Network()
        counter = CentralCounter(network, 4)
        result = run_sequence(counter, one_shot(4))
        dag = build_dag(result.trace, 1, initiator=2)
        assert dag.message_count == 2  # request + reply
        assert dag.participants() == frozenset({1, 2})
        assert dag.depth() == 2

    def test_tree_counter_dags_are_acyclic_and_rooted(self):
        network = Network()
        counter = TreeCounter(network, 8)
        result = run_sequence(counter, one_shot(8))
        for outcome in result.outcomes:
            dag = build_dag(result.trace, outcome.op_index, outcome.initiator)
            assert dag.is_acyclic()
            assert outcome.initiator in dag.participants()

    def test_lists_for_run_covers_every_op(self):
        network = Network()
        counter = CentralCounter(network, 5)
        result = run_sequence(counter, one_shot(5))
        lists = lists_for_run(result.trace, result.outcomes)
        assert len(lists) == 5
        assert [lst.initiator for lst in lists] == [1, 2, 3, 4, 5]
        # List lengths are exactly the per-op message counts.
        assert [lst.length for lst in lists] == [o.messages for o in result.outcomes]

    def test_list_participants_match_footprint(self):
        network = Network()
        counter = TreeCounter(network, 8)
        result = run_sequence(counter, one_shot(8))
        for outcome in result.outcomes:
            lst = build_list(result.trace, outcome.op_index, outcome.initiator)
            footprint = result.trace.footprint(outcome.op_index) | {outcome.initiator}
            assert lst.participants() == footprint
