"""Unit tests for the trace: the load/footprint ledger."""

from __future__ import annotations

from repro.sim.messages import NO_OP, MessageRecord
from repro.sim.trace import Trace, merge_loads


def _record(sender, receiver, op_index=0, uid=0, kind="m"):
    return MessageRecord(
        sender=sender, receiver=receiver, kind=kind, op_index=op_index,
        uid=uid, send_time=0.0, deliver_time=1.0,
    )


class TestLoadAccounting:
    def test_one_message_loads_both_endpoints(self):
        trace = Trace()
        trace.record(_record(1, 2))
        assert trace.load(1) == 1
        assert trace.load(2) == 1
        assert trace.load(3) == 0

    def test_self_message_loads_twice(self):
        # m_p counts sends and receives; a self-message is both.
        trace = Trace()
        trace.record(_record(5, 5))
        assert trace.load(5) == 2

    def test_sent_and_received_split(self):
        trace = Trace()
        trace.record(_record(1, 2))
        trace.record(_record(3, 1))
        assert trace.sent_by(1) == 1
        assert trace.received_by(1) == 1
        assert trace.sent_by(2) == 0
        assert trace.received_by(2) == 1

    def test_total_load_is_twice_messages(self):
        trace = Trace()
        for uid in range(7):
            trace.record(_record(uid + 1, uid + 2, uid=uid))
        assert sum(trace.loads().values()) == 2 * trace.total_messages

    def test_bottleneck_empty_trace(self):
        assert Trace().bottleneck() == (0, 0)

    def test_bottleneck_ties_break_to_smallest_pid(self):
        trace = Trace()
        trace.record(_record(1, 2))
        trace.record(_record(3, 4))
        assert trace.bottleneck() == (1, 1)

    def test_bottleneck_finds_hot_processor(self):
        trace = Trace()
        for uid, sender in enumerate([2, 3, 4, 5]):
            trace.record(_record(sender, 9, uid=uid))
        assert trace.bottleneck() == (9, 4)


class TestPerOperationViews:
    def test_footprint_contains_both_endpoints(self):
        trace = Trace()
        trace.record(_record(1, 2, op_index=4))
        assert trace.footprint(4) == frozenset({1, 2})

    def test_footprint_of_unknown_op_is_empty(self):
        assert Trace().footprint(9) == frozenset()

    def test_records_partition_by_op(self):
        trace = Trace()
        trace.record(_record(1, 2, op_index=0, uid=0))
        trace.record(_record(2, 3, op_index=1, uid=1))
        trace.record(_record(3, 4, op_index=0, uid=2))
        assert trace.messages_for_op(0) == 2
        assert trace.messages_for_op(1) == 1
        assert [r.uid for r in trace.records_for_op(0)] == [0, 2]

    def test_op_indices_sorted_and_excludes_untracked(self):
        trace = Trace()
        trace.record(_record(1, 2, op_index=3))
        trace.record(_record(1, 2, op_index=NO_OP))
        trace.record(_record(1, 2, op_index=1))
        assert trace.op_indices() == [1, 3]

    def test_load_within_op(self):
        trace = Trace()
        trace.record(_record(1, 2, op_index=0))
        trace.record(_record(2, 3, op_index=0))
        trace.record(_record(1, 3, op_index=1))
        assert trace.load_within_op(0) == {1: 1, 2: 2, 3: 1}

    def test_load_snapshot_counts_only_earlier_ops(self):
        trace = Trace()
        trace.record(_record(1, 2, op_index=0))
        trace.record(_record(1, 2, op_index=1))
        trace.record(_record(1, 2, op_index=2))
        trace.record(_record(1, 2, op_index=NO_OP))
        snapshot = trace.load_snapshot(up_to_op=2)
        assert snapshot == {1: 2, 2: 2}

    def test_load_snapshot_zero_before_first_op(self):
        trace = Trace()
        trace.record(_record(1, 2, op_index=0))
        assert trace.load_snapshot(0) == {}


class TestMergeLoads:
    def test_merge_sums_across_traces(self):
        first = Trace()
        first.record(_record(1, 2))
        second = Trace()
        second.record(_record(2, 3))
        merged = merge_loads([first, second])
        assert merged == {1: 1, 2: 2, 3: 1}

    def test_merge_empty(self):
        assert merge_loads([]) == {}
