"""Shared fixtures: counter factories and small helpers.

``ALL_FACTORIES`` is the registry the cross-counter tests parametrize
over; each entry builds a fresh counter on a fresh network for a given
``n``.  Keeping it here means a new counter implementation gets the whole
conformance suite by adding one line.
"""

from __future__ import annotations

import pytest

from repro.api import DistributedCounter
from repro.core import TreeCounter
from repro.counters import (
    ArrowCounter,
    BitonicCountingNetwork,
    CentralCounter,
    CombiningTreeCounter,
    DiffractingTreeCounter,
    StaticTreeCounter,
)
from repro.quorum import MaekawaGrid, QuorumCounter
from repro.sim.network import Network


def make_quorum_counter(network: Network, n: int) -> DistributedCounter:
    """Maekawa-grid quorum counter (needs a square n)."""
    return QuorumCounter(network, n, MaekawaGrid(n))


ALL_FACTORIES = {
    "arrow": ArrowCounter,
    "central": CentralCounter,
    "static-tree": StaticTreeCounter,
    "ww-tree": TreeCounter,
    "combining-tree": CombiningTreeCounter,
    "counting-network": BitonicCountingNetwork,
    "diffracting-tree": DiffractingTreeCounter,
}
"""Counters usable at any n (the quorum counter needs square n and is
tested separately)."""


@pytest.fixture(params=sorted(ALL_FACTORIES))
def any_counter_factory(request):
    """Parametrized fixture yielding every counter factory."""
    return ALL_FACTORIES[request.param]


@pytest.fixture
def network() -> Network:
    """A fresh unit-delay network."""
    return Network()
