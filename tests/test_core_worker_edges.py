"""Edge-case tests for the tree worker: forwarding, deferral, errors.

These drive the 'handshaking' machinery directly — the part of §4 the
paper waves off and this implementation realizes — plus the protocol
error paths that keep bugs loud.
"""

from __future__ import annotations

import pytest

from repro.core import NodeAddr, TreeCounter, TreeGeometry, TreePolicy
from repro.core.tree.protocol import (
    KIND_HANDOFF,
    KIND_ID_UPDATE,
    KIND_INC,
    leaf_key,
    node_key,
)
from repro.errors import ProtocolError
from repro.sim.messages import Message
from repro.sim.network import Network
from repro.sim.policies import SkewedDelay
from repro.workloads import one_shot, run_sequence, shuffled


def _fresh(n=8, policy=None):
    network = Network()
    counter = TreeCounter(network, n, policy=policy)
    return network, counter


class TestDispatchErrors:
    def test_unknown_kind_for_node_role_raises(self):
        network, counter = _fresh()
        worker = counter.worker(1)  # plays root and node(1,0)
        bogus = Message(
            sender=2, receiver=1, kind="bogus",
            payload={"role": node_key(NodeAddr(1, 0))},
        )
        with pytest.raises(ProtocolError, match="bogus"):
            worker.on_message(bogus)

    def test_leaf_cannot_handle_inc(self):
        network, counter = _fresh()
        worker = counter.worker(3)
        bogus = Message(
            sender=2, receiver=3, kind=KIND_INC,
            payload={"role": leaf_key(3), "origin": 2},
        )
        with pytest.raises(ProtocolError, match="leaf"):
            worker.on_message(bogus)

    def test_id_update_for_non_neighbour_raises(self):
        network, counter = _fresh()
        worker = counter.worker(1)
        bogus = Message(
            sender=2, receiver=1, kind=KIND_ID_UPDATE,
            payload={
                "role": node_key(NodeAddr(1, 0)),
                "node": ("node", 2, 3),  # not adjacent to node(1,0)
                "new_worker": 5,
            },
        )
        with pytest.raises(ProtocolError, match="non-neighbour"):
            worker.on_message(bogus)

    def test_request_inc_requires_leaf_parent(self):
        network, counter = _fresh()
        worker = counter.worker(2)
        worker._leaf_parent_worker = None
        with pytest.raises(ProtocolError, match="leaf parent"):
            worker.request_inc()


class TestForwarding:
    def test_forward_pointer_set_after_retirement(self):
        network, counter = _fresh(81)
        run_sequence(counter, one_shot(81))
        # Every retirement leaves a forwarding pointer at the old worker.
        for event in counter.retirements:
            old = counter.worker(event.old_worker)
            key = node_key(event.addr)
            if key in old.active_role_keys():
                continue  # role wrapped back (not in strict mode)
            assert old._forward.get(key) is not None

    def test_stale_message_is_forwarded_to_successor(self):
        network, counter = _fresh(81)
        run_sequence(counter, one_shot(81))
        event = counter.retirements[0]
        old_worker = counter.worker(event.old_worker)
        # Send an inc for the retired role to the OLD worker; expect it
        # to arrive at the current worker and be answered.
        before = counter.results_for(1)
        stale = Message(
            sender=1, receiver=event.old_worker, kind=KIND_INC,
            payload={"role": node_key(event.addr), "origin": 1},
        )
        forwarded_before = old_worker.forwarded_messages
        network.inject(lambda: old_worker.on_message(stale), op_index=999)
        network.run_until_quiescent()
        assert old_worker.forwarded_messages == forwarded_before + 1
        assert len(counter.results_for(1)) == len(before) + 1

    def test_no_pointer_and_no_role_defers(self):
        network, counter = _fresh()
        # Processor 5 never plays node(1,1) (initial worker is elsewhere)
        worker = counter.worker(5)
        key = node_key(NodeAddr(1, 1))
        assert key not in worker.active_role_keys()
        orphan = Message(
            sender=1, receiver=5, kind=KIND_INC,
            payload={"role": key, "origin": 1},
        )
        worker.on_message(orphan)
        assert worker.deferred_messages == 1
        assert worker._pending[key]


class TestHandoffEdges:
    def test_stale_handoff_is_ignored(self):
        network, counter = _fresh()
        # Craft a handoff for a role whose registry worker is NOT the
        # receiver: must be swallowed without state change.
        role = counter.registry.role(NodeAddr(1, 0))
        receiver = counter.worker(5)
        assert role.worker != 5
        stale = Message(
            sender=1, receiver=5, kind=KIND_HANDOFF,
            payload={"role": node_key(NodeAddr(1, 0)), "seq": 0, "total": 4},
        )
        receiver.on_message(stale)
        assert node_key(NodeAddr(1, 0)) not in receiver.active_role_keys()

    def test_deferred_messages_replay_after_activation(self):
        # Under heavily skewed delays some message must overtake its
        # hand-off at least occasionally across several orders; deferral
        # plus replay keeps every run correct either way.
        for seed in range(3):
            network = Network(policy=SkewedDelay(slow=40.0))
            counter = TreeCounter(network, 81)
            result = run_sequence(counter, shuffled(81, seed=seed))
            assert result.values() == list(range(81))

    def test_handoff_age_policy_counts_when_enabled(self):
        from repro.core import IntervalMode

        geometry = TreeGeometry.paper_shape(3)
        # Aging on hand-offs inflates retirement counts beyond the
        # one-shot interval budgets, so wrap mode is required.
        policy = TreePolicy(
            retire_threshold=12,
            count_handoff_in_age=True,
            interval_mode=IntervalMode.WRAP,
        )
        network = Network()
        counter = TreeCounter(network, 81, geometry=geometry, policy=policy)
        result = run_sequence(counter, one_shot(81))
        assert result.values() == list(range(81))
        # Counting hand-offs ages workers faster: at least as many
        # retirements as the default configuration.
        default_network = Network()
        default_counter = TreeCounter(default_network, 81)
        run_sequence(default_counter, one_shot(81))
        assert len(counter.retirements) >= len(default_counter.retirements)


class TestMultiRoleDispatch:
    def test_processor_one_plays_root_and_inner_simultaneously(self):
        network, counter = _fresh()
        worker = counter.worker(1)
        keys = set(worker.active_role_keys())
        assert ("node", 0, 0) in keys and ("node", 1, 0) in keys
        # An inc addressed to the root role on processor 1 is answered
        # even though processor 1 also plays node(1,0).
        counter.begin_inc(2, 0)
        network.run_until_quiescent()
        assert counter.results_for(2) == [0]

    def test_roles_keep_distinct_ages(self):
        network, counter = _fresh(81)
        run_sequence(counter, one_shot(10))
        ages = {
            role.addr: role.age for role in counter.registry.all_roles()
        }
        assert len(set(ages.values())) > 1  # not all in lockstep
