"""Unit tests for delivery policies."""

from __future__ import annotations

import pytest

from repro.sim.messages import Message
from repro.sim.policies import (
    RandomDelay,
    SkewedDelay,
    UnitDelay,
    standard_policies,
)


def _message(sender=1, receiver=2):
    return Message(sender=sender, receiver=receiver, kind="x")


class TestUnitDelay:
    def test_always_one(self):
        policy = UnitDelay()
        for _ in range(10):
            assert policy.delay(_message()) == 1.0

    def test_fork_is_equivalent(self):
        policy = UnitDelay()
        assert policy.fork().delay(_message()) == 1.0


class TestRandomDelay:
    def test_within_bounds(self):
        policy = RandomDelay(seed=7, low=0.5, high=3.0)
        for _ in range(200):
            delay = policy.delay(_message())
            assert 0.5 <= delay <= 3.0

    def test_seeded_reproducibility(self):
        first = RandomDelay(seed=42)
        second = RandomDelay(seed=42)
        draws_a = [first.delay(_message()) for _ in range(50)]
        draws_b = [second.delay(_message()) for _ in range(50)]
        assert draws_a == draws_b

    def test_different_seeds_differ(self):
        draws_a = [RandomDelay(seed=1).delay(_message()) for _ in range(10)]
        draws_b = [RandomDelay(seed=2).delay(_message()) for _ in range(10)]
        assert draws_a != draws_b

    def test_fork_resets_state(self):
        policy = RandomDelay(seed=3)
        original = [policy.delay(_message()) for _ in range(5)]
        forked = policy.fork()
        assert [forked.delay(_message()) for _ in range(5)] == original

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            RandomDelay(low=0.0)
        with pytest.raises(ValueError):
            RandomDelay(low=5.0, high=1.0)


class TestSkewedDelay:
    def test_parity_splits_fast_and_slow(self):
        policy = SkewedDelay(slow=40.0, slow_parity=0)
        assert policy.delay(_message(sender=1, receiver=1)) == 40.0  # even sum
        assert policy.delay(_message(sender=1, receiver=2)) == 1.0  # odd sum

    def test_parity_flips(self):
        policy = SkewedDelay(slow=40.0, slow_parity=1)
        assert policy.delay(_message(sender=1, receiver=2)) == 40.0
        assert policy.delay(_message(sender=1, receiver=1)) == 1.0

    def test_invalid_slow_rejected(self):
        with pytest.raises(ValueError):
            SkewedDelay(slow=0.0)


class TestStandardPolicies:
    def test_battery_contains_all_three(self):
        battery = standard_policies(seed=5)
        names = {type(p).__name__ for p in battery}
        assert names == {"UnitDelay", "RandomDelay", "SkewedDelay"}
