"""Unit tests for quorum-system constructions."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.quorum import (
    CrumblingWall,
    MaekawaGrid,
    RotatingMajorityQuorum,
    SingletonQuorum,
    TreePathQuorum,
    WheelQuorum,
)

ALL_SYSTEMS = [
    (SingletonQuorum, 9),
    (RotatingMajorityQuorum, 9),
    (MaekawaGrid, 9),
    (TreePathQuorum, 15),
    (WheelQuorum, 9),
    (CrumblingWall, 12),
]


class TestIntersectionProperty:
    @pytest.mark.parametrize("cls,n", ALL_SYSTEMS)
    def test_every_pair_intersects(self, cls, n):
        system = cls(n)
        assert system.verify_intersection()

    @pytest.mark.parametrize("cls,n", ALL_SYSTEMS)
    def test_quorums_within_universe(self, cls, n):
        system = cls(n)
        for quorum in system.quorums():
            assert quorum <= system.universe
            assert quorum  # nonempty

    @pytest.mark.parametrize("cls,n", ALL_SYSTEMS)
    def test_quorum_for_cycles(self, cls, n):
        system = cls(n)
        count = system.quorum_count()
        assert system.quorum_for(0) == system.quorum_for(count)

    @pytest.mark.parametrize("cls,n", ALL_SYSTEMS)
    def test_quorum_count_matches_enumeration(self, cls, n):
        system = cls(n)
        assert system.quorum_count() == sum(1 for _ in system.quorums())


class TestSingleton:
    def test_single_quorum_is_the_center(self):
        system = SingletonQuorum(5, center=3)
        assert list(system.quorums()) == [frozenset({3})]

    def test_invalid_center(self):
        with pytest.raises(ConfigurationError):
            SingletonQuorum(5, center=6)


class TestRotatingMajority:
    def test_window_size_is_majority(self):
        system = RotatingMajorityQuorum(9)
        assert all(len(q) == 5 for q in system.quorums())

    def test_every_element_in_majority_of_windows(self):
        system = RotatingMajorityQuorum(9)
        degrees = system.degrees()
        assert set(degrees.values()) == {5}

    def test_even_universe(self):
        system = RotatingMajorityQuorum(8)
        assert all(len(q) == 5 for q in system.quorums())
        assert system.verify_intersection()


class TestMaekawa:
    def test_quorum_size_is_2_sqrt_n_minus_1(self):
        system = MaekawaGrid(16)
        assert all(len(q) == 7 for q in system.quorums())

    def test_non_square_rejected(self):
        with pytest.raises(ConfigurationError):
            MaekawaGrid(10)

    def test_row_meets_column(self):
        system = MaekawaGrid(9)
        quorum_a = system.quorum_for(0)  # element 0's row+col
        quorum_b = system.quorum_for(8)  # element 8's row+col
        assert quorum_a & quorum_b

    def test_degrees_are_uniform(self):
        degrees = MaekawaGrid(16).degrees()
        assert len(set(degrees.values())) == 1


class TestTreePath:
    def test_root_is_in_every_quorum(self):
        system = TreePathQuorum(15)
        for quorum in system.quorums():
            assert 1 in quorum

    def test_quorum_size_is_tree_height(self):
        system = TreePathQuorum(15)
        assert all(len(q) == 4 for q in system.quorums())

    def test_small_quorums_but_total_root_load(self):
        system = TreePathQuorum(15)
        degrees = system.degrees()
        assert degrees[1] == system.quorum_count()


class TestWheel:
    def test_spoke_quorums_and_rim(self):
        system = WheelQuorum(5, hub=1)
        family = list(system.quorums())
        assert frozenset({2, 3, 4, 5}) in family
        assert frozenset({1, 2}) in family
        assert len(family) == 5

    def test_hub_parameters(self):
        with pytest.raises(ConfigurationError):
            WheelQuorum(5, hub=9)
        with pytest.raises(ConfigurationError):
            WheelQuorum(1)

    def test_hub_degree_dominates(self):
        degrees = WheelQuorum(9).degrees()
        assert degrees[1] == 8  # all spoke quorums


class TestCrumblingWall:
    def test_default_rows_cover_universe(self):
        system = CrumblingWall(12)
        assert sum(system.row_widths) == 12

    def test_custom_rows(self):
        system = CrumblingWall(10, row_widths=[4, 3, 3])
        assert system.verify_intersection()

    def test_bad_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            CrumblingWall(10, row_widths=[4, 4])
        with pytest.raises(ConfigurationError):
            CrumblingWall(10, row_widths=[10, 0])

    def test_single_row_wall(self):
        system = CrumblingWall(4, row_widths=[4])
        assert list(system.quorums()) == [frozenset({1, 2, 3, 4})]

    def test_quorum_is_full_row_plus_tail(self):
        system = CrumblingWall(9, row_widths=[3, 3, 3])
        quorum = system.quorum_for(0)
        assert {1, 2, 3} <= quorum  # first row complete
        assert len(quorum) == 5  # + one element from each row below
