"""The fork() contract: independent, equivalently-seeded instances.

Sweeps and network reuse rely on `fork()` for both delivery policies and
fault plans: a fork must (a) replay the same stream a brand-new instance
would, regardless of how much the parent has consumed, and (b) never
share mutable state with its parent.  Every registered policy name and
the fault plan are held to the same contract here.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.registry import POLICY_NAMES, make_policy
from repro.sim.faults import BYZANTINE_STRATEGIES, parse_fault_spec
from repro.sim.messages import Message


def _messages(count=40):
    return [
        Message(
            sender=(i % 5) + 1,
            receiver=((i + 1) % 5) + 1,
            kind="m",
            uid=i,
            send_time=float(i),
        )
        for i in range(count)
    ]


@pytest.mark.parametrize("name", sorted(POLICY_NAMES))
class TestPolicyForkContract:
    def test_fork_replays_from_scratch(self, name):
        parent = make_policy(name, seed=5)
        reference = [parent.delay(m) for m in _messages()]
        # Parent has consumed its stream; the fork must not care.
        fork = parent.fork()
        assert [fork.delay(m) for m in _messages()] == reference

    def test_fork_equals_a_fresh_instance(self, name):
        fork = make_policy(name, seed=5).fork()
        fresh = make_policy(name, seed=5)
        draws_fork = [fork.delay(m) for m in _messages()]
        draws_fresh = [fresh.delay(m) for m in _messages()]
        assert draws_fork == draws_fresh

    def test_fork_is_independent_of_the_parent(self, name):
        parent = make_policy(name, seed=5)
        fork = parent.fork()
        # Interleave draws: the parent advancing must not perturb the fork.
        interleaved = []
        for m in _messages():
            parent.delay(m)
            interleaved.append(fork.delay(m))
        fresh = make_policy(name, seed=5)
        assert interleaved == [fresh.delay(m) for m in _messages()]


@pytest.mark.faults
class TestFaultPlanForkContract:
    SPEC = "drop=0.3,dup=0.2,reorder=0.3"

    def _consult_all(self, plan, count=60):
        outcomes = []
        for message in _messages(count):
            outcome = plan.consult(message, message.send_time, message.send_time + 1.0)
            outcomes.append(
                None if outcome is None else outcome.delivery_times
            )
        return outcomes

    def test_fork_replays_from_scratch(self):
        parent = parse_fault_spec(self.SPEC, seed=5)
        reference = self._consult_all(parent)
        fork = parent.fork()
        assert self._consult_all(fork) == reference

    def test_fork_equals_a_fresh_plan(self):
        fork = parse_fault_spec(self.SPEC, seed=5).fork()
        fresh = parse_fault_spec(self.SPEC, seed=5)
        assert self._consult_all(fork) == self._consult_all(fresh)

    def test_fork_shares_no_ledger_with_the_parent(self):
        parent = parse_fault_spec(self.SPEC, seed=5)
        self._consult_all(parent)
        fork = parent.fork()
        assert fork.events == [] and fork.counts == {}
        parent_events = list(parent.events)
        self._consult_all(fork)
        assert parent.events == parent_events  # fork ran, parent unchanged
        assert fork.events != []
        assert fork.events is not parent.events


def _byz_messages(count=40):
    """Messages with integer payloads — something worth lying about."""
    return [
        Message(
            sender=(i % 5) + 1,
            receiver=((i + 1) % 5) + 1,
            kind="m",
            payload={"value": i, "rid": i * 7},
            uid=i,
            send_time=float(i),
        )
        for i in range(count)
    ]


def _byz_outcomes(plan, count=40):
    """Full decision record: times AND the rewritten payloads."""
    outcomes = []
    for message in _byz_messages(count):
        outcome = plan.consult(
            message, message.send_time, message.send_time + 1.0
        )
        if outcome is None:
            outcomes.append(None)
            continue
        rewritten = (
            None
            if outcome.message is None
            else dict(outcome.message.payload)
        )
        outcomes.append((outcome.delivery_times, rewritten))
    return outcomes


@pytest.mark.faults
@pytest.mark.byzantine
@pytest.mark.parametrize("strategy", sorted(BYZANTINE_STRATEGIES))
class TestByzantineRuleForkContract:
    """Each Byzantine rule honors the same fork contract as the rest."""

    def _bound_plan(self, strategy, seed=5):
        plan = parse_fault_spec(f"byz=2@{strategy}", seed=seed)
        plan.bind_clients(5)
        return plan

    def test_fork_replays_from_scratch(self, strategy):
        parent = self._bound_plan(strategy)
        reference = _byz_outcomes(parent)
        fork = parent.fork()
        assert _byz_outcomes(fork) == reference

    def test_fork_preserves_the_compromised_set(self, strategy):
        parent = self._bound_plan(strategy)
        assert parent.fork().byzantine_pids == parent.byzantine_pids

    def test_fork_is_independent_of_the_parent(self, strategy):
        parent = self._bound_plan(strategy)
        fork = parent.fork()
        interleaved = []
        for message in _byz_messages():
            parent.consult(
                message, message.send_time, message.send_time + 1.0
            )
            outcome = fork.consult(
                message, message.send_time, message.send_time + 1.0
            )
            interleaved.append(
                None if outcome is None else outcome.delivery_times
            )
        fresh = self._bound_plan(strategy).fork()
        expected = [
            None if o is None else o[0] for o in _byz_outcomes(fresh)
        ]
        assert interleaved == expected

    def test_reset_replays_the_same_lies(self, strategy):
        plan = self._bound_plan(strategy)
        reference = _byz_outcomes(plan)
        plan.reset()
        assert _byz_outcomes(plan) == reference


@pytest.mark.faults
@pytest.mark.byzantine
@given(
    strategy=st.sampled_from(BYZANTINE_STRATEGIES),
    seed=st.integers(min_value=0, max_value=2**16),
    count=st.integers(min_value=1, max_value=30),
)
@settings(max_examples=40, deadline=None)
def test_two_forks_of_one_plan_corrupt_identically(strategy, seed, count):
    """The ISSUE's property: sweep workers forking one plan must inject
    the exact same lies — delivery times and rewritten payloads both."""
    parent = parse_fault_spec(f"byz=1@{strategy}", seed=seed)
    parent.bind_clients(5)
    left, right = parent.fork(), parent.fork()
    assert _byz_outcomes(left, count) == _byz_outcomes(right, count)
