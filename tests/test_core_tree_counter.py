"""Integration tests for the paper's communication-tree counter."""

from __future__ import annotations

import pytest

from repro.core import (
    IntervalMode,
    TreeCounter,
    TreeGeometry,
    TreePolicy,
)
from repro.counters import StaticTreeCounter
from repro.errors import ConfigurationError
from repro.sim.network import Network
from repro.sim.policies import RandomDelay, SkewedDelay, UnitDelay
from repro.workloads import one_shot, round_robin, run_sequence, shuffled


def _run_tree(n, policy=None, delivery=None, geometry=None, order=None):
    network = Network(policy=delivery)
    counter = TreeCounter(network, n, geometry=geometry, policy=policy)
    result = run_sequence(counter, order if order is not None else one_shot(n))
    return counter, result


class TestCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 8, 20, 81])
    def test_sequential_values(self, n):
        _, result = _run_tree(n)
        assert result.values() == list(range(n))

    def test_counter_value_after_run(self):
        counter, _ = _run_tree(8)
        assert counter.value == 8

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_correct_under_any_initiator_order(self, seed):
        _, result = _run_tree(81, order=shuffled(81, seed=seed))
        assert result.values() == list(range(81))

    @pytest.mark.parametrize(
        "delivery", [UnitDelay(), RandomDelay(seed=9), SkewedDelay()]
    )
    def test_correct_under_delivery_policies(self, delivery):
        _, result = _run_tree(81, delivery=delivery)
        assert result.values() == list(range(81))

    def test_non_client_cannot_inc(self):
        network = Network()
        counter = TreeCounter(network, 8)
        with pytest.raises(ConfigurationError):
            counter.begin_inc(9, 0)
        with pytest.raises(ConfigurationError):
            counter.begin_inc(0, 0)

    def test_n_not_of_paper_form_rounds_up(self):
        # 50 clients ride a k=3 tree (81 leaves); extra leaves stay idle.
        counter, result = _run_tree(50)
        assert counter.k == 3
        assert counter.geometry.leaf_count == 81
        assert result.values() == list(range(50))

    def test_oversized_n_for_explicit_geometry_rejected(self):
        network = Network()
        with pytest.raises(ConfigurationError):
            TreeCounter(network, 100, geometry=TreeGeometry.paper_shape(2))


class TestBottleneckScaling:
    def test_load_grows_like_k_not_n(self):
        loads = {}
        for k in (2, 3, 4):
            n = k ** (k + 1)
            _, result = _run_tree(n)
            loads[k] = result.bottleneck_load()
        # Linear-in-k window (measured constant ~18.5).
        for k, load in loads.items():
            assert 4 * k <= load <= 24 * k
        # n grew by a factor 128 from k=2 to k=4; a Θ(n) counter's load
        # would too.  Ours grows by ~2x.
        assert loads[4] < 4 * loads[2]

    def test_beats_central_counter_from_k3(self):
        n = 81
        _, result = _run_tree(n)
        central_bottleneck = 2 * (n - 1)
        assert result.bottleneck_load() < central_bottleneck

    def test_total_messages_linear_in_n_times_k(self):
        for k in (2, 3):
            n = k ** (k + 1)
            _, result = _run_tree(n)
            # Each inc climbs k+1 edges plus answer plus retirement
            # traffic: O(k) messages per op overall.
            assert result.total_messages <= 16 * n * k

    def test_load_nearly_invariant_under_delivery_policy(self):
        # The core climb/answer traffic is delay-independent; only the
        # retirement handshake (forwarding of stale-addressed messages)
        # varies with arrival order, and the paper allows it a constant
        # factor.  Totals and bottlenecks must stay within tight margins.
        results = [
            _run_tree(81, delivery=delivery)[1]
            for delivery in (UnitDelay(), RandomDelay(seed=3), SkewedDelay())
        ]
        totals = [r.total_messages for r in results]
        bottlenecks = [r.bottleneck_load() for r in results]
        assert max(totals) <= min(totals) * 1.10
        assert max(bottlenecks) <= min(bottlenecks) * 1.35


class TestRetirementMachinery:
    def test_retirements_happen(self):
        counter, _ = _run_tree(81)
        assert len(counter.retirements) > 0

    def test_root_retires_most_per_node(self):
        counter, _ = _run_tree(81)
        by_level = counter.registry.retirement_counts_by_level()
        per_node = {
            level: count / counter.geometry.nodes_on_level(level)
            for level, count in by_level.items()
        }
        assert per_node[0] == max(per_node.values())

    def test_retirement_count_decreases_with_level(self):
        counter, _ = _run_tree(1024)
        by_level = counter.registry.retirement_counts_by_level()
        per_node = {
            level: by_level[level] / counter.geometry.nodes_on_level(level)
            for level in by_level
        }
        values = [per_node[level] for level in sorted(per_node)]
        assert values == sorted(values, reverse=True)

    def test_static_tree_never_retires(self):
        network = Network()
        counter = StaticTreeCounter(network, 81)
        result = run_sequence(counter, one_shot(81))
        assert counter.retirements == []
        assert result.values() == list(range(81))

    def test_static_tree_root_is_theta_n_bottleneck(self):
        network = Network()
        counter = StaticTreeCounter(network, 81)
        result = run_sequence(counter, one_shot(81))
        # Root worker handles 2 messages per op: receive + answer.
        assert result.bottleneck_load() >= 2 * 81

    def test_retirement_removes_the_static_bottleneck(self):
        static_network = Network()
        static = StaticTreeCounter(static_network, 81)
        static_result = run_sequence(static, one_shot(81))
        _, retiring_result = _run_tree(81)
        assert retiring_result.bottleneck_load() < static_result.bottleneck_load() / 2

    def test_forwarding_overhead_is_small(self):
        counter, result = _run_tree(1024)
        # The "handshake" overhead the paper allows: a constant factor.
        assert counter.total_forwarded() <= result.total_messages * 0.05

    def test_wrap_mode_supports_repeated_workloads(self):
        network = Network()
        geometry = TreeGeometry.paper_shape(2)
        policy = TreePolicy(
            retire_threshold=8, interval_mode=IntervalMode.WRAP
        )
        counter = TreeCounter(network, 8, geometry=geometry, policy=policy)
        result = run_sequence(counter, round_robin(8, rounds=4))
        assert result.values() == list(range(32))


class TestWorkerIntrospection:
    def test_initial_roles_assigned(self):
        network = Network()
        counter = TreeCounter(network, 8)
        # Processor 1 initially works for the root AND node(1,0) — the
        # paper's id scheme allows exactly this double duty.
        keys = counter.worker(1).active_role_keys()
        assert ("node", 0, 0) in keys
        assert ("node", 1, 0) in keys

    def test_roles_migrate_after_run(self):
        counter, _ = _run_tree(81)
        root_worker = counter.registry.root().worker
        assert ("node", 0, 0) in counter.worker(root_worker).active_role_keys()

    def test_deferred_messages_counted(self):
        counter, _ = _run_tree(81, delivery=RandomDelay(seed=5))
        # Deferral may or may not trigger; the counter must just be sane.
        assert counter.total_deferred() >= 0
