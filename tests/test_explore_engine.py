"""The exploration engine end to end: episodes, shrinking, parallelism.

Integration layer of the exploration stack: real counters (and the
known-broken mutants) are driven through real schedules.  The key
contracts pinned here are *determinism* (same configuration, same
episodes → identical reports), *bug-finding power* (the stale-read
mutant is caught and shrunk to a ≤30-decision witness that replays),
and *parallel faithfulness* (windowed fan-out concatenates to exactly
the serial exploration).
"""

from __future__ import annotations

import pytest

from repro.errors import CapabilityError, ConfigurationError
from repro.explore import (
    BaselineStrategy,
    ExploreConfig,
    Explorer,
    ExploreRunner,
    ExploreTask,
    GuidedStrategy,
    PermutationStrategy,
    RandomWalkStrategy,
    ReplayStrategy,
    build_mutant,
    execute_task,
    is_mutant_spec,
    make_strategy,
    merge_outcomes,
    parse_plan,
    partition,
    replay_repro,
    reproduces,
)
from repro.explore.controller import ScheduleController
from repro.sim.network import Network
from repro.sim.processor import InertProcessor

pytestmark = pytest.mark.explore

MUTANT = "mutant[stale-central]"


def _report(counter=MUTANT, **kwargs):
    kwargs.setdefault("n", 6)
    kwargs.setdefault("seed", 3)
    kwargs.setdefault("strategy", "random")
    kwargs.setdefault("budget", 25)
    return Explorer(ExploreConfig(counter=counter, **kwargs)).run()


def _fingerprint(report):
    return (
        report.episodes,
        report.decisions,
        report.verdict_counts,
        [(r.episode, r.oracle, r.decisions) for r in report.failures],
    )


class TestPlanGrammar:
    def test_single_leg_gets_the_default_budget(self):
        plan = parse_plan("random", 40, seed=0)
        assert len(plan) == 1
        strategy, budget = plan[0]
        assert isinstance(strategy, RandomWalkStrategy) and budget == 40

    def test_mixed_plan_with_budgets_and_params(self):
        plan = parse_plan("random:10,permute:5,guided:20?base=4", 99, seed=1)
        names = [(s.name, b) for s, b in plan]
        assert names == [("random", 10), ("permute", 5), ("guided", 20)]
        assert isinstance(plan[2][0], GuidedStrategy)

    @pytest.mark.parametrize(
        "text,match",
        [
            ("", "empty strategy plan"),
            ("random,,guided", "empty leg"),
            ("warp:10", "unknown strategy"),
            ("random:many", "malformed budget"),
            ("random:0", "non-positive budget"),
            ("guided?base", "malformed strategy parameter"),
            ("guided?base=hot", "must be numeric"),
            ("guided?retries=3", "rejects parameters"),
            ("baseline?x=1", "takes no parameters"),
        ],
    )
    def test_malformed_plans_are_configuration_errors(self, text, match):
        with pytest.raises(ConfigurationError, match=match):
            parse_plan(text, 10, seed=0)

    def test_guided_base_must_exceed_one(self):
        with pytest.raises(ConfigurationError, match="exceed 1"):
            make_strategy("guided", seed=0, base=1.0)


class TestControllerRecording:
    def test_decisions_are_recorded_in_consumption_order(self):
        controller = ScheduleController(RandomWalkStrategy(seed=5), (1.0, 2.0))
        network = Network(policy=controller)
        network.register_all([InertProcessor(pid) for pid in (1, 2, 3)])
        controller.attach(network)
        for index in range(6):
            network.send((index % 3) + 1, ((index + 1) % 3) + 1, "m", {})
        network.run_until_quiescent()
        recorded = controller.recorded
        assert len(recorded) >= 6  # one delay decision per send, + ties
        assert all(d >= 0 for d in recorded.decisions)
        assert set(recorded.kinds) <= {"delay", "tie"}

    def test_replay_of_recorded_decisions_is_identical(self):
        def run(strategy):
            controller = ScheduleController(strategy, (1.0, 2.0, 4.0))
            network = Network(policy=controller)
            network.register_all([InertProcessor(pid) for pid in (1, 2)])
            controller.attach(network)
            for _ in range(5):
                network.send(1, 2, "m", {})
                network.send(2, 1, "m", {})
            network.run_until_quiescent()
            return controller.recorded, network.trace.records

        strategy = RandomWalkStrategy(seed=9)
        strategy.begin_episode(4)
        recorded, trace = run(strategy)
        replayed, trace2 = run(ReplayStrategy(recorded.decisions))
        assert replayed.decisions == recorded.decisions
        assert trace == trace2

    def test_baseline_strategy_records_all_zeros(self):
        controller = ScheduleController(BaselineStrategy(), (1.0, 2.0))
        network = Network(policy=controller)
        network.register_all([InertProcessor(pid) for pid in (1, 2)])
        controller.attach(network)
        network.send(1, 2, "m", {})
        network.run_until_quiescent()
        assert controller.recorded.nonzero_count() == 0


class TestDeterminism:
    def test_same_config_same_report(self):
        first = _report(strategy="random:8,guided:8", budget=8)
        second = _report(strategy="random:8,guided:8", budget=8)
        assert _fingerprint(first) == _fingerprint(second)

    def test_different_seeds_explore_different_schedules(self):
        clean = ExploreConfig(counter="central", n=6, budget=10)
        first = Explorer(clean).run()
        second = Explorer(
            ExploreConfig(counter="central", n=6, budget=10, seed=1)
        ).run()
        assert first.decisions != second.decisions

    def test_permutation_episode_zero_is_the_baseline(self):
        strategy = PermutationStrategy(seed=7)
        strategy.begin_episode(0)
        assert [strategy._deal(4) for _ in range(8)] == [0, 1, 2, 3] * 2

    def test_clean_counters_survive_exploration(self):
        for spec in ("central", "combining-tree", "static-tree"):
            report = _report(counter=spec, n=6, strategy="random:6,guided:6")
            assert report.ok, f"{spec}: {report.failures}"


class TestMutantCatching:
    def test_stale_read_mutant_is_caught_and_shrunk(self):
        report = _report()
        assert not report.ok
        first = report.failures[0]
        assert first.oracle in ("linearizability", "no-lost-increment")
        # Acceptance bar: the shrunk witness is small and non-trivial.
        assert 0 < len(first.decisions) <= 30

    def test_shrunk_repro_replays_to_the_same_failure(self):
        report = _report()
        repro = report.failures[0]
        assert reproduces(repro)
        outcome = replay_repro(repro)
        assert outcome.failure is not None
        assert outcome.failure.oracle == repro.oracle

    def test_cached_read_mutant_fails_the_hot_spot_oracle(self):
        report = _report(
            counter="mutant[cached-central]",
            workload="sequential",
            rounds=2,
            budget=3,
        )
        assert not report.ok
        assert any(r.oracle == "hot-spot" for r in report.failures)

    def test_max_failures_stops_the_exploration_early(self):
        report = _report(max_failures=2)
        assert len(report.failures) == 2
        assert report.episodes < 25

    def test_no_shrink_keeps_the_raw_schedule(self):
        report = _report(shrink=False, max_failures=1)
        raw = report.failures[0]
        shrunk = _report(shrink=True, max_failures=1).failures[0]
        assert len(shrunk.decisions) <= len(raw.decisions)


class TestGates:
    def test_unknown_workload_is_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown exploration workload"):
            Explorer(ExploreConfig(counter="central", workload="bursty"))

    def test_sequential_only_counters_refuse_staggered(self):
        with pytest.raises(CapabilityError, match="sequential-only"):
            Explorer(ExploreConfig(counter="arrow", n=4))

    def test_sequential_only_counters_explore_sequentially(self):
        report = _report(
            counter="arrow", n=4, workload="sequential", budget=3
        )
        assert report.ok

    def test_mutants_refuse_fault_plans(self):
        with pytest.raises(ConfigurationError, match="explored bare"):
            Explorer(ExploreConfig(counter=MUTANT, faults="drop=0.1"))

    def test_mutants_refuse_reliable_transport(self):
        with pytest.raises(ConfigurationError, match="explored bare"):
            Explorer(ExploreConfig(counter=MUTANT, transport="reliable"))

    def test_malformed_plan_fails_at_construction(self):
        with pytest.raises(ConfigurationError):
            Explorer(ExploreConfig(counter="central", strategy="warp"))

    def test_is_mutant_spec_vocabulary(self):
        assert is_mutant_spec(MUTANT)
        assert not is_mutant_spec("central")
        # An unknown mutant name is not a mutant spec, so it falls
        # through to the registry — which rejects it as an unknown
        # counter at construction time.
        assert not is_mutant_spec("mutant[quantum]")
        with pytest.raises(ConfigurationError):
            Explorer(ExploreConfig(counter="mutant[quantum]"))
        with pytest.raises(ConfigurationError, match="unknown mutant"):
            build_mutant("mutant[quantum]", Network(), 4)


@pytest.mark.faults
class TestFaultyExploration:
    def test_standby_survives_exploration_around_a_crash(self):
        report = _report(
            counter="central[standby]",
            n=6,
            faults="crash=1@t18",
            strategy="random:5,guided:5",
            budget=5,
        )
        assert report.ok

    def test_bypass_tree_survives_exploration_around_a_crash(self):
        report = _report(
            counter="combining-tree[bypass]",
            n=6,
            faults="crash=2@t10",
            strategy="random:4",
            budget=4,
        )
        assert report.ok


class TestParallelFaithfulness:
    # A clean counter: no failures, so no max_failures early stop and
    # windowed explorations must match the serial one *exactly*.
    TASK = ExploreTask(
        counter="central", n=6, seed=3, strategy="random:12,guided:8"
    )

    def test_partition_is_worker_count_independent(self):
        windows = partition(self.TASK, window=6)
        assert [(t.episode_start, t.episode_count) for t in windows] == [
            (0, 6), (6, 6), (12, 6), (18, 2),
        ]

    def test_windowed_runs_concatenate_to_the_serial_run(self):
        serial = Explorer(self.TASK.to_config()).run()
        windowed = merge_outcomes(
            self.TASK, [execute_task(t) for t in partition(self.TASK, 6)]
        )
        assert _fingerprint(windowed) == _fingerprint(serial)

    def test_windowing_preserves_the_serial_failure_set(self):
        # With a failing counter the serial run stops early at
        # max_failures, so windowed runs explore *more* episodes — but
        # the reported failures must be exactly the serial ones.
        task = ExploreTask(
            counter=MUTANT, n=6, seed=3, strategy="random", budget=20
        )
        serial = Explorer(task.to_config()).run()
        windowed = merge_outcomes(
            task, [execute_task(t) for t in partition(task, 6)]
        )
        assert windowed.failures == serial.failures
        assert windowed.episodes >= serial.episodes

    def test_parallel_workers_match_serial(self):
        serial = ExploreRunner(workers=1).explore(self.TASK, window=5)
        parallel = ExploreRunner(workers=4).explore(self.TASK, window=5)
        assert _fingerprint(parallel) == _fingerprint(serial)

    def test_cache_round_trip_and_reuse(self, tmp_path):
        runner = ExploreRunner(workers=1, cache_dir=tmp_path)
        first = runner.explore(self.TASK, window=10)
        assert list(tmp_path.glob("*.json"))
        # Second run must come entirely from cache — and corrupting one
        # entry must force a recompute, not a crash.
        again = runner.explore(self.TASK, window=10)
        assert _fingerprint(again) == _fingerprint(first)
        victim = next(iter(tmp_path.glob("*.json")))
        victim.write_text("{not json")
        healed = runner.explore(self.TASK, window=10)
        assert _fingerprint(healed) == _fingerprint(first)

    def test_config_hash_canonicalizes_spellings(self):
        verbose = ExploreTask(counter="combining-tree[bypass]?arity=2", n=6)
        plain = ExploreTask(counter="combining-tree[bypass]", n=6)
        assert verbose.config_hash() == plain.config_hash()
        assert plain.config_hash() != ExploreTask(counter="central", n=6).config_hash()

    def test_invalid_worker_and_window_counts(self):
        with pytest.raises(ConfigurationError, match="workers"):
            ExploreRunner(workers=0)
        with pytest.raises(ConfigurationError, match="window"):
            partition(self.TASK, window=0)
