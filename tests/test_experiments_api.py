"""Tests for the programmatic experiment API.

Each experiment runner is exercised with small parameters (the canonical
parameters run under the benchmark suite); assertions pin the *shape*
each experiment's claim predicts, so a regression in any subsystem shows
up as a failed claim, not just a changed number.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    REGISTRY,
    run_e1,
    run_e2,
    run_e3,
    run_e4,
    run_e5,
    run_e6,
    run_e7,
    run_e8,
    run_e9,
    run_e10,
    run_e11,
    run_e12,
    run_e13,
    run_e14,
    run_e15,
    run_e16,
    run_e17,
)
from repro.experiments.base import make_table


class TestBaseTypes:
    def test_table_round_trip(self):
        table = make_table("T", ["a", "b"], [[1, 2], [3, 4]], note="n")
        text = table.to_text()
        assert "T" in text and "n" in text
        assert table.column("b") == [2, 4]

    def test_column_unknown_header(self):
        table = make_table("T", ["a"], [[1]])
        with pytest.raises(ValueError):
            table.column("zzz")

    def test_registry_is_complete_and_ordered(self):
        ids = sorted(REGISTRY, key=lambda e: int(e[1:]))
        assert ids == [f"E{i}" for i in range(1, 28)]


class TestConstructionExperiments:
    def test_e1_invariants_hold(self):
        result = run_e1(n=32)
        table = result.table()
        assert "NO" not in result.to_text()
        assert table.column("arcs==msgs") == ["yes"] * len(table.rows)

    def test_e2_lemma_holds_everywhere(self):
        result = run_e2(n=16, seeds=(1,))
        assert all(v == "yes" for v in result.table().column("lemma holds"))
        assert all(v >= 1 for v in result.table().column("min |I_p ∩ I_q|"))


class TestLowerBoundExperiments:
    def test_e3_bound_respected(self):
        result = run_e3(games=(("central", 8),), curve_ns=(8, 81))
        assert all(v == "yes" for v in result.table(0).column("m_b ≥ ⌊k⌋"))
        assert all(v == "yes" for v in result.table(0).column("AM-GM holds"))

    def test_e16_exact_at_least_greedy(self):
        result = run_e16(games=(("central", 5),))
        table = result.table()
        exact = table.column("exact worst m_b")[0]
        greedy = table.column("greedy m_b")[0]
        assert exact >= greedy


class TestTreeCounterExperiments:
    def test_e4_flat_ratio(self):
        result = run_e4(ks=(2, 3))
        ratios = [float(v) for v in result.table().column("m_b / k")]
        assert max(ratios) / min(ratios) < 1.5

    def test_e5_no_lemma_failures(self):
        result = run_e5(ks=(2,))
        assert "FAIL" not in result.to_text()

    def test_e9_shows_overrun_then_ok(self):
        result = run_e9(k=2, factors=(2, 4))
        budgets = result.table().column("budgets ok")
        assert budgets[-1] == "yes"  # the static row
        assert "OVERRUN" in budgets or "yes" in budgets

    def test_e10_wider_is_worse(self):
        result = run_e10(n=64, shapes=((2, 5), (8, 1)))
        loads = result.table().column("bottleneck m_b")
        assert loads[0] < loads[1]

    def test_e12_tree_beats_central_per_round(self):
        # k=3 (n=81) is past the E6 crossover, where the steady-state
        # advantage exists; k=2 (n=8) is below it by design.
        result = run_e12(k=3, rounds=2)
        table = result.table()
        final_ratio = float(table.column("ratio")[-1].rstrip("x"))
        assert final_ratio > 1.0


class TestComparisonExperiments:
    def test_e6_crossover_reported(self):
        result = run_e6(ns=(8, 81, 256))
        assert "crossover (tree wins) at n = 81" in result.to_text()

    def test_e7_tree_grows_slowest(self):
        result = run_e7(ns=(64, 256), concurrent_n=64)
        table = result.table(0)
        names = table.column("counter")
        growth = {
            name: row[-1]
            for name, row in zip(names, table.rows)
            if name != "k(n) lower bound"
        }
        tree_growth = float(growth["ww-tree"].rstrip("x"))
        assert all(
            tree_growth <= float(value.rstrip("x")) + 1e-9
            for value in growth.values()
        )

    def test_e13_arrow_spread(self):
        result = run_e13(n=32, adversary_n=8)
        table = result.table()
        arrow_row = table.rows[0]
        assert arrow_row[0] == "arrow"
        identity, shuffled_, ping_pong = arrow_row[1:4]
        assert identity < shuffled_ < ping_pong

    def test_e17_time_tracks_load(self):
        result = run_e17(n=64)
        ratios = [float(v) for v in result.table().column("time / load")]
        assert all(0.9 <= r <= 15 for r in ratios)


class TestSubstrateExperiments:
    def test_e8_intersection_everywhere(self):
        result = run_e8(n=16, fpp_order=3)
        assert all(v == "yes" for v in result.table(0).column("intersects"))

    def test_e11_same_bottleneck_for_all_adts(self):
        result = run_e11(ks=(3,))
        loads = set(result.table().column("bottleneck m_b"))
        assert len(loads) == 1

    def test_e14_sizes_sublinear(self):
        result = run_e14(ns=(81, 1024))
        growths = [
            float(v.rstrip("x"))
            for v in result.table().column("msg-size growth")
        ]
        assert all(g < 1.5 for g in growths)

    def test_e15_counterexample_fires(self):
        result = run_e15(scan_n=8, seeds=3)
        assert "linearizable: False" in result.to_text()


class TestServingExperiment:
    def test_e24_knee_per_family(self):
        from repro.experiments import run_e24
        from repro.experiments.serving_exp import E24_FAMILIES

        # run_e24 itself asserts a knee was detected for every family
        result = run_e24(n=8, ops=96)
        table = result.table()
        assert table.column("counter") == list(E24_FAMILIES)
        knees = [float(v) for v in table.column("knee rate")]
        capacities = [float(v) for v in table.column("capacity n/(S+1)")]
        # the knee never lands below the Little's-law capacity estimate
        assert all(k >= c for k, c in zip(knees, capacities))
        # slowest-service family saturates no later than the fastest
        by_name = dict(zip(table.column("counter"), knees))
        assert by_name["combining-tree"] <= by_name["central"]


class TestResilienceExperiment:
    @pytest.mark.resilience
    def test_e26_graceful_degradation_small(self):
        from repro.experiments import run_e26

        # run_e26 itself asserts the three claims (exactly-once
        # arithmetic, goodput floor, bounded p99); small parameters
        # keep the trial fast, and a relaxed floor absorbs the wider
        # variance a short run has around the plateau
        result = run_e26(ops=240, goodput_floor=0.5, seed=1)
        table = result.table()
        assert table.column("phase") == ["knee baseline", "2x knee + chaos"]
        retries = int(table.column("retries")[1])
        assert retries > 0  # the chaos actually forced retries


class TestByzantineExperiment:
    @pytest.mark.byzantine
    def test_e25_matrix_and_cost(self):
        from repro.experiments import run_e25
        from repro.experiments.byzantine_exp import E25_UNPROTECTED

        # run_e25 itself asserts agreement + validity on every
        # byz-counter cell; the matrix shape and verdicts are pinned here
        result = run_e25()
        matrix = result.table(0)
        for family, outcome in zip(
            matrix.column("family"), matrix.column("outcome")
        ):
            if family in E25_UNPROTECTED:
                assert outcome.startswith("violates ")
            else:
                assert outcome == "agreement+validity hold"
        cost = result.table(1)
        msgs = [float(v) for v in cost.column("msgs/op")]
        # ww-tree first, then byz-counter at f=1 and f=2: the voting
        # counter is strictly costlier, and more phases cost more
        assert msgs[0] < msgs[1] < msgs[2]
