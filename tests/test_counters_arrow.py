"""Unit tests for the arrow-protocol (path reversal) counter."""

from __future__ import annotations

import pytest

from repro.counters import ArrowCounter
from repro.errors import ConfigurationError
from repro.lowerbound import GreedyAdversary, check_hot_spot, message_load_bound
from repro.sim.network import Network
from repro.sim.policies import RandomDelay
from repro.workloads import one_shot, run_sequence, shuffled


class TestCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 5, 16, 33, 64])
    def test_sequential_values(self, n):
        network = Network()
        counter = ArrowCounter(network, n)
        result = run_sequence(counter, one_shot(n))
        assert result.values() == list(range(n))

    @pytest.mark.parametrize("seed", [0, 3, 9])
    def test_any_order(self, seed):
        network = Network()
        counter = ArrowCounter(network, 32)
        result = run_sequence(counter, shuffled(32, seed=seed))
        assert result.values() == list(range(32))

    def test_repeated_initiators(self):
        network = Network()
        counter = ArrowCounter(network, 8)
        result = run_sequence(counter, [3, 3, 5, 3, 5, 5])
        assert result.values() == list(range(6))

    def test_owner_increments_for_free(self):
        network = Network()
        counter = ArrowCounter(network, 8, initial_owner=4)
        result = run_sequence(counter, [4, 4, 4])
        assert result.values() == [0, 1, 2]
        assert result.total_messages == 0

    def test_token_moves_to_last_requester(self):
        network = Network()
        counter = ArrowCounter(network, 16)
        run_sequence(counter, [5, 9, 2])
        assert counter.owner == 2
        assert counter.value == 3

    def test_correct_under_random_delays(self):
        # Sequential ops with any delays: still exact.
        network = Network(policy=RandomDelay(seed=7))
        counter = ArrowCounter(network, 32)
        result = run_sequence(counter, shuffled(32, seed=2))
        assert result.values() == list(range(32))

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            ArrowCounter(Network(), 8, initial_owner=9)
        network = Network()
        counter = ArrowCounter(network, 4)
        with pytest.raises(ConfigurationError):
            counter.begin_inc(5, 0)

    def test_hot_spot_lemma_holds(self):
        network = Network()
        counter = ArrowCounter(network, 32)
        result = run_sequence(counter, shuffled(32, seed=4))
        assert check_hot_spot(result).holds


class TestOrderSensitivity:
    """The arrow counter's load depends on the operation order — the
    reason the Lower Bound Theorem quantifies over orders."""

    def test_identity_order_is_extremely_cheap(self):
        network = Network()
        counter = ArrowCounter(network, 64)
        result = run_sequence(counter, one_shot(64))
        # Adjacent leaves exchange the token through short paths.
        assert result.bottleneck_load() <= 16

    def test_identity_order_beats_the_ww_tree(self):
        from repro.core import TreeCounter

        n = 64
        arrow_result = run_sequence(ArrowCounter(Network(), n), one_shot(n))
        tree_result = run_sequence(TreeCounter(Network(), n), one_shot(n))
        assert arrow_result.bottleneck_load() < tree_result.bottleneck_load()

    def test_ping_pong_order_is_theta_n(self):
        n = 64
        network = Network()
        counter = ArrowCounter(network, n)
        order = [1 if i % 2 == 0 else n for i in range(n)]
        result = run_sequence(counter, order)
        # Every op crosses the root: ~2 log n messages each, all through
        # the same top hosts.
        assert result.bottleneck_load() >= 2 * n

    def test_order_spread_is_wide(self):
        n = 64
        loads = {}
        for name, order in (
            ("identity", one_shot(n)),
            ("shuffled", shuffled(n, seed=1)),
            ("ping-pong", [1 if i % 2 == 0 else n for i in range(n)]),
        ):
            network = Network()
            counter = ArrowCounter(network, n)
            loads[name] = run_sequence(counter, order).bottleneck_load()
        assert loads["identity"] < loads["shuffled"] < loads["ping-pong"]

    def test_adversary_still_forces_the_bound(self):
        n = 16
        run = GreedyAdversary(ArrowCounter, n).run()
        assert run.bottleneck_load >= message_load_bound(n)

    def test_adversary_beats_the_identity_order(self):
        n = 16
        identity = run_sequence(ArrowCounter(Network(), n), one_shot(n))
        adversarial = GreedyAdversary(ArrowCounter, n).run()
        assert adversarial.bottleneck_load >= identity.bottleneck_load()
