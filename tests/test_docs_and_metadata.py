"""Documentation conformance: the docs must match the code.

These meta-tests keep README/DESIGN/EXPERIMENTS honest: the quickstart
executes, the experiment index covers the registry, and every public
module carries documentation.
"""

from __future__ import annotations

import importlib
import inspect
import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).parent.parent

PUBLIC_MODULES = [
    "repro",
    "repro.aio",
    "repro.analysis",
    "repro.api",
    "repro.cli",
    "repro.core",
    "repro.core.invariants",
    "repro.core.tree",
    "repro.counters",
    "repro.datatypes",
    "repro.errors",
    "repro.experiments",
    "repro.lowerbound",
    "repro.quorum",
    "repro.registry",
    "repro.runtime",
    "repro.serve",
    "repro.sim",
    "repro.workloads",
]


class TestReadme:
    def test_quickstart_snippet_executes(self):
        readme = (ROOT / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", readme, re.DOTALL)
        assert blocks, "README lost its quickstart code block"
        namespace: dict = {}
        exec(blocks[0], namespace)  # noqa: S102 - executing our own docs

    def test_headline_table_matches_measured_values(self):
        # The README's E4 table must agree with a fresh run.
        from repro.experiments import run_e4

        readme = (ROOT / "README.md").read_text()
        result = run_e4(ks=(3,))
        measured = result.table().column("bottleneck m_b")[0]
        assert f"| 3 | 81    | {measured} |" in readme

    def test_install_instructions_mention_offline_path(self):
        readme = (ROOT / "README.md").read_text()
        assert "setup.py develop" in readme


class TestDesignAndExperiments:
    def test_design_indexes_every_registered_experiment(self):
        from repro.experiments import REGISTRY

        design = (ROOT / "DESIGN.md").read_text()
        for experiment_id in REGISTRY:
            assert f"| {experiment_id} " in design, (
                f"{experiment_id} missing from DESIGN.md's index"
            )

    def test_experiments_log_covers_every_registered_experiment(self):
        from repro.experiments import REGISTRY

        log = (ROOT / "EXPERIMENTS.md").read_text()
        for experiment_id in REGISTRY:
            assert f"## {experiment_id} " in log, (
                f"{experiment_id} missing from EXPERIMENTS.md"
            )

    def test_design_declares_the_identity_check(self):
        design = (ROOT / "DESIGN.md").read_text()
        assert "Paper identity check" in design

    def test_docs_directory_complete(self):
        for name in ("protocol.md", "model.md", "simulator.md",
                     "tutorial.md", "api.md"):
            assert (ROOT / "docs" / name).exists()

    def test_tutorial_snippets_execute(self):
        import re

        tutorial = (ROOT / "docs" / "tutorial.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", tutorial, re.DOTALL)
        assert len(blocks) >= 5
        namespace: dict = {}
        for block in blocks:
            exec(block, namespace)  # noqa: S102 - executing our own docs


class TestDocstringCoverage:
    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_module_has_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__.strip()) > 20

    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_public_callables_documented(self, module_name):
        module = importlib.import_module(module_name)
        undocumented = []
        for name in getattr(module, "__all__", []):
            member = getattr(module, name)
            if inspect.isclass(member) or inspect.isfunction(member):
                if not (member.__doc__ or "").strip():
                    undocumented.append(f"{module_name}.{name}")
        assert not undocumented, f"missing docstrings: {undocumented}"


class TestGeneratedApiReference:
    def test_api_doc_exists_and_mentions_key_symbols(self):
        api = (ROOT / "docs" / "api.md").read_text()
        for symbol in (
            "TreeCounter",
            "GreedyAdversary",
            "check_hot_spot",
            "QuorumCounter",
            "DistributedPriorityQueue",
            "REGISTRY",
        ):
            assert symbol in api, f"{symbol} missing from docs/api.md"

    def test_api_doc_covers_every_public_module(self):
        api = (ROOT / "docs" / "api.md").read_text()
        for module_name in PUBLIC_MODULES:
            if module_name in ("repro.cli",):
                continue  # CLI is documented via --help, not the API doc
            assert f"## `{module_name}`" in api, (
                f"{module_name} missing from docs/api.md"
            )
