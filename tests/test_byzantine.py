"""The Byzantine fault regime end to end.

Acceptance suite for the adversarial layer: the ``byz=f@strategy``
grammar drives seeded Byzantine rules, the registry gate keeps
unprotected counters away from liars, the ``byz-counter`` phase-king
family survives every adversary strategy at f < n/3, the synchronous
runtime is seed-stable for every registered spec, and — with no
Byzantine plan installed — the clean send path stays byte-identical
(the fault layer must cost nothing when unused).
"""

from __future__ import annotations

import pytest

from repro.errors import CapabilityError, ConfigurationError
from repro.explore import ExploreConfig, Explorer
from repro.registry import RunSession, canonical_spec, registered_specs
from repro.sim.faults import BYZANTINE_STRATEGIES, parse_fault_spec

pytestmark = pytest.mark.byzantine

#: acceptance population: n = 7 admits f ∈ {1, 2} (both below n/3).
N = 7


def _n_for(spec_name: str) -> int:
    # quorum[maekawa] needs a perfect square.
    return 9 if spec_name == "quorum[maekawa]" else 8


# ----------------------------------------------------------------------
# The capability gate
# ----------------------------------------------------------------------
class TestCapabilityGate:
    def test_only_the_byzantine_family_claims_tolerance(self):
        tolerant = {
            spec.name
            for spec in registered_specs()
            if spec.capabilities.tolerates_byzantine
        }
        assert tolerant == {"byz-counter"}

    @pytest.mark.parametrize(
        "spec_name",
        [
            spec.name
            for spec in registered_specs()
            if not spec.capabilities.tolerates_byzantine
        ],
    )
    def test_unprotected_counters_fail_fast(self, spec_name):
        with pytest.raises(CapabilityError, match="Byzantine"):
            RunSession(spec_name, _n_for(spec_name), faults="byz=1@corrupt")

    def test_reliable_transport_does_not_waive_the_gate(self):
        # Retransmission cannot un-lie a payload.
        with pytest.raises(CapabilityError, match="Byzantine"):
            RunSession("central", 4, faults="byz=1@corrupt", reliable=True)

    def test_byz_counter_passes_the_gate(self):
        session = RunSession("byz-counter", N, faults="byz=1@corrupt")
        assert session.fault_plan is not None
        assert len(session.fault_plan.byzantine_pids) == 1


# ----------------------------------------------------------------------
# The byz-counter family
# ----------------------------------------------------------------------
class TestByzCounterRegistration:
    def test_f_defaults_to_the_population_maximum(self):
        session = RunSession("byz-counter", N)
        assert session.counter.f == (N - 1) // 3

    def test_explicit_f_needs_n_above_3f(self):
        with pytest.raises(ConfigurationError, match="n > 3f"):
            RunSession("byz-counter?f=2", 6)

    def test_canonical_spec_elides_the_default(self):
        assert canonical_spec("byz-counter?f=0") == "byz-counter"
        assert canonical_spec("byz-counter?f=2") == "byz-counter?f=2"

    @pytest.mark.parametrize("runtime", ["sim", "sync"])
    def test_clean_run_counts_exactly(self, runtime):
        session = RunSession("byz-counter", N, runtime=runtime)
        result = session.run_sequence()
        assert result.values() == list(range(N))


class TestByzCounterUnderAdversary:
    """f < n/3 resilience: every strategy, every admissible budget."""

    @pytest.mark.parametrize("f", [1, 2])
    @pytest.mark.parametrize("strategy", BYZANTINE_STRATEGIES)
    def test_honest_values_stay_monotone(self, f, strategy):
        session = RunSession(
            f"byz-counter?f={f}",
            N,
            faults=f"byz={f}@{strategy}",
            policy="random",
            seed=9,
        )
        result = session.run_sequence()
        byz = session.fault_plan.byzantine_pids
        honest = [
            o.value for o in result.outcomes if o.initiator not in byz
        ]
        # Each honest initiator's inc committed with a fresh value.
        assert len(honest) == N - f
        assert honest == sorted(honest)
        assert len(set(honest)) == len(honest)

    @pytest.mark.parametrize("f", [1, 2])
    def test_honest_replicas_agree_on_the_final_count(self, f):
        session = RunSession(
            f"byz-counter?f={f}", N, faults=f"byz={f}@mixed", seed=4
        )
        session.run_sequence()
        byz = session.fault_plan.byzantine_pids
        counts = {
            pid: count
            for pid, count in session.counter.replica_counts().items()
            if pid not in byz
        }
        assert len(set(counts.values())) == 1

    @pytest.mark.parametrize("f", [1, 2])
    def test_survives_the_guided_explorer(self, f):
        report = Explorer(
            ExploreConfig(
                counter=f"byz-counter?f={f}",
                n=N,
                seed=3,
                strategy="guided:3,random:3",
                budget=3,
                faults=f"byz={f}@mixed",
                workload="sequential",
            )
        ).run()
        assert report.ok, [r.message for r in report.failures]


class TestSeededMutantIsCaught:
    def test_trusting_byz_mutant_fails_under_liars(self):
        report = Explorer(
            ExploreConfig(
                counter="mutant[trusting-byz]",
                n=4,
                seed=3,
                strategy="guided:6",
                budget=6,
                faults="byz=1@corrupt",
                workload="sequential",
                max_failures=1,
            )
        ).run()
        assert not report.ok

    def test_trusting_byz_mutant_is_clean_without_liars(self):
        report = Explorer(
            ExploreConfig(
                counter="mutant[trusting-byz]",
                n=4,
                seed=3,
                strategy="random:6",
                budget=6,
                workload="sequential",
            )
        ).run()
        assert report.ok, [r.message for r in report.failures]


# ----------------------------------------------------------------------
# Synchronous-runtime determinism (every registered spec)
# ----------------------------------------------------------------------
class TestSyncRuntimeDeterminism:
    @pytest.mark.parametrize(
        "spec_name", [spec.name for spec in registered_specs()]
    )
    def test_repeated_runs_fingerprint_identically(self, spec_name):
        def run():
            session = RunSession(
                spec_name,
                _n_for(spec_name),
                runtime="sync",
                trace_level="FULL",
                policy="random",
                seed=7,
            )
            result = session.run_sequence()
            return session.network.trace.fingerprint(), result.values()

        assert run() == run()


# ----------------------------------------------------------------------
# Zero overhead when no plan is installed
# ----------------------------------------------------------------------
class TestCleanRunsAreUntouched:
    @pytest.mark.parametrize(
        "spec_name", [spec.name for spec in registered_specs()]
    )
    def test_clean_session_keeps_the_class_level_send(self, spec_name):
        session = RunSession(spec_name, _n_for(spec_name))
        # The fault layer hooks send() per *instance*; a clean network
        # must keep the class attribute — the zero-overhead contract.
        assert "send" not in session.network.__dict__
        assert session.fault_plan is None

    def test_clean_fingerprint_matches_a_plan_free_network(self):
        def fingerprint(**kwargs):
            session = RunSession(
                "byz-counter", N, trace_level="FULL", **kwargs
            )
            session.run_sequence()
            return session.network.trace.fingerprint()

        assert fingerprint() == fingerprint(faults=None)


# ----------------------------------------------------------------------
# Plan-level invariants the registry relies on
# ----------------------------------------------------------------------
class TestPlanBinding:
    def test_budget_must_leave_an_honest_majority_of_ids(self):
        plan = parse_fault_spec("byz=3@corrupt", seed=0)
        with pytest.raises(ConfigurationError, match="cannot compromise"):
            plan.bind_clients(3)

    def test_binding_is_idempotent(self):
        plan = parse_fault_spec("byz=2@silence", seed=1)
        plan.bind_clients(N)
        first = plan.byzantine_pids
        plan.bind_clients(N)
        assert plan.byzantine_pids == first

    def test_silence_does_not_force_the_reliable_transport(self):
        plan = parse_fault_spec("byz=1@silence", seed=0)
        assert not plan.non_byzantine_lossy
