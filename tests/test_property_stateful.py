"""Stateful property tests: hypothesis drives ADTs against models.

A :class:`RuleBasedStateMachine` interleaves operations and processors
arbitrarily, comparing the distributed structure against an in-memory
model after every step — the strongest conformance check in the suite.
"""

from __future__ import annotations

import heapq

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core import IntervalMode, TreeGeometry, TreePolicy
from repro.counters.recoverable import (
    BypassCombiningTreeCounter,
    StandbyCentralCounter,
)
from repro.datatypes import (
    DELETE_MIN,
    FLIP,
    INSERT,
    PEEK,
    DistributedFlipBit,
    DistributedPriorityQueue,
)
from repro.sim.network import Network

_N = 8  # k = 2 tree: small enough for fast stateful runs
_POLICY = TreePolicy(retire_threshold=8, interval_mode=IntervalMode.WRAP)


class PriorityQueueMachine(RuleBasedStateMachine):
    """Distributed priority queue vs heapq, arbitrary interleaving."""

    @initialize()
    def setup(self):
        self.network = Network()
        self.queue = DistributedPriorityQueue(
            self.network,
            _N,
            geometry=TreeGeometry.paper_shape(2),
            policy=_POLICY,
        )
        self.model: list[int] = []
        self.op_index = 0

    def _execute(self, pid, request):
        self.queue.begin_op(pid, self.op_index, request)
        self.network.run_until_quiescent()
        self.op_index += 1
        return self.queue.results_for(pid)[-1]

    @rule(pid=st.integers(1, _N), key=st.integers(0, 999))
    def insert(self, pid, key):
        reply = self._execute(pid, (INSERT, key))
        heapq.heappush(self.model, key)
        assert reply == len(self.model)

    @rule(pid=st.integers(1, _N))
    def delete_min(self, pid):
        reply = self._execute(pid, (DELETE_MIN,))
        expected = heapq.heappop(self.model) if self.model else None
        assert reply == expected

    @rule(pid=st.integers(1, _N))
    def peek(self, pid):
        reply = self._execute(pid, (PEEK,))
        expected = self.model[0] if self.model else None
        assert reply == expected

    @invariant()
    def sizes_agree(self):
        if hasattr(self, "queue"):
            assert len(self.queue) == len(self.model)

    @invariant()
    def network_quiescent_between_ops(self):
        if hasattr(self, "network"):
            assert self.network.is_quiescent()


class FlipBitMachine(RuleBasedStateMachine):
    """Distributed flip bit vs a plain int, arbitrary interleaving."""

    @initialize()
    def setup(self):
        self.network = Network()
        self.bit = DistributedFlipBit(
            self.network,
            _N,
            geometry=TreeGeometry.paper_shape(2),
            policy=_POLICY,
        )
        self.model = 0
        self.op_index = 0

    def _execute(self, pid, request):
        self.bit.begin_op(pid, self.op_index, request)
        self.network.run_until_quiescent()
        self.op_index += 1
        return self.bit.results_for(pid)[-1]

    @rule(pid=st.integers(1, _N))
    def flip(self, pid):
        reply = self._execute(pid, FLIP)
        assert reply == self.model
        self.model ^= 1

    @rule(pid=st.integers(1, _N))
    def read(self, pid):
        reply = self._execute(pid, "read")
        assert reply == self.model

    @invariant()
    def state_matches_model(self):
        if hasattr(self, "bit"):
            assert self.bit.state == self.model


class StandbyCentralMachine(RuleBasedStateMachine):
    """``central[standby]`` under arbitrary suspicion/recovery storms.

    The failure-detector hooks (`on_processor_suspected` /
    `on_processor_restored` / `on_processor_recovered`) are driven
    directly between increments — the *false suspicion* regime, where
    the accused seat is actually alive and well.  Epoch fencing must
    keep a deposed-but-alive primary from split-braining, so the
    counter still hands out every value exactly once.
    """

    @initialize()
    def setup(self):
        self.network = Network()
        self.counter = StandbyCentralCounter(self.network, _N)
        self.expected = 0
        self.op_index = 0

    def _seats(self):
        return (self.counter.primary_id, self.counter.standby_id)

    @rule(pid=st.integers(1, _N))
    def inc(self, pid):
        self.counter.begin_inc(pid, self.op_index)
        self.op_index += 1
        self.expected += 1
        self.network.run_until_quiescent()

    @rule(seat=st.sampled_from([0, 1]))
    def suspect_seat(self, seat):
        self.counter.on_processor_suspected(
            self._seats()[seat], self.network.now
        )
        self.network.run_until_quiescent()

    @rule(seat=st.sampled_from([0, 1]))
    def restore_seat(self, seat):
        self.counter.on_processor_restored(
            self._seats()[seat], self.network.now
        )
        self.network.run_until_quiescent()

    @rule(seat=st.sampled_from([0, 1]), with_checkpoint=st.booleans())
    def recover_seat(self, seat, with_checkpoint):
        checkpoint = {"next_value": 0, "epoch": 1} if with_checkpoint else None
        self.counter.on_processor_recovered(
            self._seats()[seat], self.network.now, checkpoint
        )
        self.network.run_until_quiescent()

    @invariant()
    def every_inc_answered_exactly_once(self):
        if not hasattr(self, "counter"):
            return
        values = self.counter.all_results()
        assert len(values) == self.expected
        assert sorted(values) == list(range(self.expected))

    @invariant()
    def some_seat_holds_the_primary_role(self):
        if hasattr(self, "counter"):
            assert self.counter.current_primary in self._seats()


class BypassTreeMachine(RuleBasedStateMachine):
    """``combining-tree[bypass]`` under arbitrary routing-table storms.

    Hosts are suspected/restored/recovered between increments while
    staying physically alive, so requests detour through live ancestors
    (or straight to the migrating root holder).  At-most-once is the
    contract: no value may ever be delivered twice, and with no real
    crashes every issued increment must still complete.
    """

    @initialize()
    def setup(self):
        self.network = Network()
        self.counter = BypassCombiningTreeCounter(self.network, _N)
        self.hosts = self.counter.critical_pids()
        self.expected = 0
        self.op_index = 0

    @rule(pid=st.integers(1, _N))
    def inc(self, pid):
        self.counter.begin_inc(pid, self.op_index)
        self.op_index += 1
        self.expected += 1
        self.network.run_until_quiescent()

    @rule(index=st.integers(0, _N - 1))
    def suspect_host(self, index):
        self.counter.on_processor_suspected(
            self.hosts[index % len(self.hosts)], self.network.now
        )
        self.network.run_until_quiescent()

    @rule(index=st.integers(0, _N - 1))
    def restore_host(self, index):
        self.counter.on_processor_restored(
            self.hosts[index % len(self.hosts)], self.network.now
        )
        self.network.run_until_quiescent()

    @rule(index=st.integers(0, _N - 1))
    def recover_host(self, index):
        self.counter.on_processor_recovered(
            self.hosts[index % len(self.hosts)], self.network.now, None
        )
        self.network.run_until_quiescent()

    @invariant()
    def at_most_once_and_nothing_lost(self):
        if not hasattr(self, "counter"):
            return
        values = self.counter.all_results()
        assert len(set(values)) == len(values)  # never delivered twice
        assert len(values) == self.expected  # hosts are alive: no losses
        assert self.counter.burned_values >= 0

    @invariant()
    def root_holder_is_a_known_processor(self):
        # Root migration picks any live *client* seat, not just the
        # initial node hosts.
        if hasattr(self, "counter"):
            assert self.counter.root_host in self.counter.client_ids()


TestPriorityQueueStateful = PriorityQueueMachine.TestCase
TestPriorityQueueStateful.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)

TestFlipBitStateful = FlipBitMachine.TestCase
TestFlipBitStateful.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)

TestStandbyCentralStateful = StandbyCentralMachine.TestCase
TestStandbyCentralStateful.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)

TestBypassTreeStateful = BypassTreeMachine.TestCase
TestBypassTreeStateful.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
