"""Stateful property tests: hypothesis drives ADTs against models.

A :class:`RuleBasedStateMachine` interleaves operations and processors
arbitrarily, comparing the distributed structure against an in-memory
model after every step — the strongest conformance check in the suite.
"""

from __future__ import annotations

import heapq

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core import IntervalMode, TreeGeometry, TreePolicy
from repro.datatypes import (
    DELETE_MIN,
    FLIP,
    INSERT,
    PEEK,
    DistributedFlipBit,
    DistributedPriorityQueue,
)
from repro.sim.network import Network

_N = 8  # k = 2 tree: small enough for fast stateful runs
_POLICY = TreePolicy(retire_threshold=8, interval_mode=IntervalMode.WRAP)


class PriorityQueueMachine(RuleBasedStateMachine):
    """Distributed priority queue vs heapq, arbitrary interleaving."""

    @initialize()
    def setup(self):
        self.network = Network()
        self.queue = DistributedPriorityQueue(
            self.network,
            _N,
            geometry=TreeGeometry.paper_shape(2),
            policy=_POLICY,
        )
        self.model: list[int] = []
        self.op_index = 0

    def _execute(self, pid, request):
        self.queue.begin_op(pid, self.op_index, request)
        self.network.run_until_quiescent()
        self.op_index += 1
        return self.queue.results_for(pid)[-1]

    @rule(pid=st.integers(1, _N), key=st.integers(0, 999))
    def insert(self, pid, key):
        reply = self._execute(pid, (INSERT, key))
        heapq.heappush(self.model, key)
        assert reply == len(self.model)

    @rule(pid=st.integers(1, _N))
    def delete_min(self, pid):
        reply = self._execute(pid, (DELETE_MIN,))
        expected = heapq.heappop(self.model) if self.model else None
        assert reply == expected

    @rule(pid=st.integers(1, _N))
    def peek(self, pid):
        reply = self._execute(pid, (PEEK,))
        expected = self.model[0] if self.model else None
        assert reply == expected

    @invariant()
    def sizes_agree(self):
        if hasattr(self, "queue"):
            assert len(self.queue) == len(self.model)

    @invariant()
    def network_quiescent_between_ops(self):
        if hasattr(self, "network"):
            assert self.network.is_quiescent()


class FlipBitMachine(RuleBasedStateMachine):
    """Distributed flip bit vs a plain int, arbitrary interleaving."""

    @initialize()
    def setup(self):
        self.network = Network()
        self.bit = DistributedFlipBit(
            self.network,
            _N,
            geometry=TreeGeometry.paper_shape(2),
            policy=_POLICY,
        )
        self.model = 0
        self.op_index = 0

    def _execute(self, pid, request):
        self.bit.begin_op(pid, self.op_index, request)
        self.network.run_until_quiescent()
        self.op_index += 1
        return self.bit.results_for(pid)[-1]

    @rule(pid=st.integers(1, _N))
    def flip(self, pid):
        reply = self._execute(pid, FLIP)
        assert reply == self.model
        self.model ^= 1

    @rule(pid=st.integers(1, _N))
    def read(self, pid):
        reply = self._execute(pid, "read")
        assert reply == self.model

    @invariant()
    def state_matches_model(self):
        if hasattr(self, "bit"):
            assert self.bit.state == self.model


TestPriorityQueueStateful = PriorityQueueMachine.TestCase
TestPriorityQueueStateful.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)

TestFlipBitStateful = FlipBitMachine.TestCase
TestFlipBitStateful.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
