"""Tests for the asyncio bridge."""

from __future__ import annotations

import asyncio

import pytest

from repro.aio import AsyncRunner, run_concurrent_async, run_sequence_async
from repro.core import TreeCounter
from repro.counters import CentralCounter, CombiningTreeCounter
from repro.errors import ProtocolError
from repro.sim.network import Network
from repro.workloads import one_shot, run_sequence


class TestAsyncSequential:
    def test_values_match_sync_semantics(self):
        async def go():
            network = Network()
            counter = CentralCounter(network, 12)
            return await run_sequence_async(counter, one_shot(12))

        result = asyncio.run(go())
        assert result.values() == list(range(12))

    def test_trace_identical_to_sync_runner(self):
        sync_network = Network()
        sync_counter = TreeCounter(sync_network, 27)
        sync_result = run_sequence(sync_counter, one_shot(27))

        async def go():
            network = Network()
            counter = TreeCounter(network, 27)
            return await run_sequence_async(counter, one_shot(27))

        async_result = asyncio.run(go())
        assert async_result.trace.loads() == sync_result.trace.loads()
        assert async_result.total_messages == sync_result.total_messages

    def test_time_scale_sleeps_but_preserves_results(self):
        async def go():
            network = Network()
            counter = CentralCounter(network, 4)
            return await run_sequence_async(
                counter, one_shot(4), time_scale=0.001
            )

        result = asyncio.run(go())
        assert result.values() == [0, 1, 2, 3]

    def test_other_tasks_interleave(self):
        ticks = []

        async def ticker():
            for _ in range(20):
                ticks.append(1)
                await asyncio.sleep(0)

        async def go():
            network = Network()
            counter = TreeCounter(network, 81)
            task = asyncio.ensure_future(ticker())
            result = await run_sequence_async(counter, one_shot(81))
            await task
            return result

        result = asyncio.run(go())
        assert result.values() == list(range(81))
        assert len(ticks) == 20

    def test_broken_counter_detected(self):
        class Silent(CentralCounter):
            def begin_inc(self, pid, op_index):
                pass

        async def go():
            network = Network()
            counter = Silent(network, 3)
            await run_sequence_async(counter, one_shot(3))

        with pytest.raises(ProtocolError):
            asyncio.run(go())


class TestAsyncConcurrent:
    def test_concurrent_batch(self):
        async def go():
            network = Network()
            counter = CombiningTreeCounter(network, 16)
            return await run_concurrent_async(counter, one_shot(16))

        result = asyncio.run(go())
        assert sorted(o.value for o in result.outcomes) == list(range(16))


class TestRunnerIsARuntime:
    def test_shim_is_the_asyncio_runtime(self):
        from repro.runtime import AsyncioRuntime, Runtime

        runner = AsyncRunner(Network(), time_scale=0.25, yield_every=8)
        assert isinstance(runner, AsyncioRuntime)
        assert isinstance(runner, Runtime)
        assert runner.time_scale == 0.25
        assert runner.yield_every == 8

    def test_run_until_quiescent_awaits_the_drain(self):
        network = Network()
        counter = CentralCounter(network, 4)
        for pid in counter.client_ids():
            counter.begin_inc(pid, pid - 1)

        async def go():
            return await AsyncRunner(network).run_until_quiescent()

        executed = asyncio.run(go())
        assert executed == network.events_executed > 0
        assert sorted(
            outcome
            for pid in counter.client_ids()
            for outcome in counter.results_for(pid)
        ) == list(range(4))


class TestRunnerValidation:
    def test_bad_parameters(self):
        network = Network()
        with pytest.raises(ValueError):
            AsyncRunner(network, time_scale=-1.0)
        with pytest.raises(ValueError):
            AsyncRunner(network, yield_every=0)

    def test_runner_on_empty_network(self):
        async def go():
            runner = AsyncRunner(Network())
            return await runner.run_until_quiescent()

        assert asyncio.run(go()) == 0
