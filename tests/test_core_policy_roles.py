"""Unit tests for retirement policy and the role registry."""

from __future__ import annotations

import pytest

from repro.core import (
    ROOT,
    IntervalMode,
    NodeAddr,
    RoleRegistry,
    TreeGeometry,
    TreePolicy,
)
from repro.errors import ConfigurationError, ProtocolError


class TestTreePolicy:
    def test_paper_default_threshold(self):
        assert TreePolicy.paper_default(3).retire_threshold == 12
        assert TreePolicy.paper_default(3).retires

    def test_never_retire(self):
        policy = TreePolicy.never_retire()
        assert policy.retire_threshold is None
        assert not policy.retires

    def test_threshold_factor(self):
        assert TreePolicy.with_threshold_factor(4, 2.0).retire_threshold == 8
        assert TreePolicy.with_threshold_factor(4, 0.1).retire_threshold == 1

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            TreePolicy(retire_threshold=0)
        with pytest.raises(ConfigurationError):
            TreePolicy.with_threshold_factor(4, -1.0)

    def test_default_interval_mode_is_strict(self):
        assert TreePolicy.paper_default(2).interval_mode is IntervalMode.STRICT


def _registry(k=2, policy=None):
    geometry = TreeGeometry.paper_shape(k)
    return RoleRegistry(geometry, policy or TreePolicy.paper_default(k))


class TestRegistryConstruction:
    def test_every_node_has_a_role(self):
        registry = _registry(3)
        assert len(registry.all_roles()) == registry.geometry.total_inner_nodes()

    def test_root_holds_the_value(self):
        registry = _registry()
        assert registry.root().value == 0
        assert registry.root().is_root

    def test_non_root_roles_have_no_value(self):
        registry = _registry()
        assert all(
            role.value is None for role in registry.all_roles() if not role.is_root
        )

    def test_initial_workers_match_geometry(self):
        registry = _registry(3)
        for role in registry.all_roles():
            assert role.worker == registry.geometry.initial_worker(role.addr)

    def test_neighbour_beliefs_initialized(self):
        registry = _registry(2)
        child = registry.role(NodeAddr(1, 0))
        assert child.parent_addr == ROOT
        assert child.parent_worker == registry.root().worker
        root = registry.root()
        assert set(root.children_workers.values()) == {
            registry.role(NodeAddr(1, 0)).worker,
            registry.role(NodeAddr(1, 1)).worker,
        }

    def test_last_level_children_are_leaves(self):
        registry = _registry(2)
        bottom = registry.role(NodeAddr(2, 0))
        assert ("leaf", 1) in bottom.children_workers
        assert bottom.children_workers[("leaf", 1)] == 1

    def test_unknown_addr_rejected(self):
        with pytest.raises(ConfigurationError):
            _registry().role(NodeAddr(9, 9))


class TestRetirementDiscipline:
    def test_next_worker_walks_the_interval(self):
        registry = _registry(3)
        role = registry.role(NodeAddr(1, 0))
        interval = registry.geometry.id_interval(role.addr)
        first_successor = registry.next_worker_for(role)
        assert first_successor == interval[1]

    def test_commit_updates_role(self):
        registry = _registry(3)
        role = registry.role(NodeAddr(1, 0))
        role.age = 99
        successor = registry.next_worker_for(role)
        event = registry.commit_retirement(role, successor, op_index=2, time=5.0)
        assert role.worker == successor
        assert role.age == 0
        assert role.retire_count == 1
        assert event.age_at_retirement == 99
        assert event.op_index == 2
        assert registry.retirements == [event]

    def test_root_walk_is_strictly_increasing(self):
        registry = _registry(3)
        root = registry.root()
        seen = [root.worker]
        for _ in range(5):
            successor = registry.next_worker_for(root)
            registry.commit_retirement(root, successor, op_index=0, time=0.0)
            seen.append(successor)
        assert seen == sorted(set(seen))
        assert registry.root_ids_used() == seen[-1]

    def test_strict_interval_exhaustion_raises(self):
        registry = _registry(2)
        role = registry.role(NodeAddr(2, 0))  # width-1 interval: no spares
        with pytest.raises(ProtocolError, match="exhausted"):
            registry.next_worker_for(role)

    def test_wrap_mode_reuses_interval(self):
        geometry = TreeGeometry.paper_shape(2)
        policy = TreePolicy(retire_threshold=8, interval_mode=IntervalMode.WRAP)
        registry = RoleRegistry(geometry, policy)
        role = registry.role(NodeAddr(2, 0))
        successor = registry.next_worker_for(role)
        assert successor == geometry.id_interval(role.addr)[0]

    def test_aliasing_between_inner_nodes_rejected(self):
        registry = _registry(3)
        role_a = registry.role(NodeAddr(1, 0))
        role_b = registry.role(NodeAddr(1, 1))
        with pytest.raises(ProtocolError, match="interval discipline"):
            registry.commit_retirement(role_a, role_b.worker, op_index=0, time=0.0)

    def test_root_exempt_from_aliasing(self):
        registry = _registry(3)
        root = registry.root()
        inner_worker = registry.role(NodeAddr(1, 1)).worker
        # The root walking onto an id that works for an inner node is by
        # design: "at most once for the root and at most once for another
        # inner node".
        registry.commit_retirement(root, inner_worker, op_index=0, time=0.0)
        assert root.worker == inner_worker

    def test_retirement_counts_by_level(self):
        registry = _registry(3)
        role = registry.role(NodeAddr(1, 0))
        registry.commit_retirement(
            role, registry.next_worker_for(role), op_index=0, time=0.0
        )
        counts = registry.retirement_counts_by_level()
        assert counts[1] == 1
        assert counts[0] == 0


class TestNodeRoleHelpers:
    def test_believed_child_worker(self):
        registry = _registry(2)
        root = registry.root()
        key = ("node", 1, 0)
        assert root.believed_child_worker(key) == registry.role(NodeAddr(1, 0)).worker

    def test_unknown_child_rejected(self):
        registry = _registry(2)
        with pytest.raises(ProtocolError):
            registry.root().believed_child_worker(("node", 5, 5))

    def test_child_keys(self):
        registry = _registry(2)
        assert set(registry.root().child_keys()) == {("node", 1, 0), ("node", 1, 1)}
