"""FailureDetector: heartbeat-driven eventually-perfect suspicion.

The detector learns about crashes only through silence on the wire —
these tests verify the suspicion lifecycle (suspect on silence, restore
on a late heartbeat), the bounded monitoring horizon (runs still
quiesce), determinism, and the first-class trace events.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.failure_detector import HEARTBEAT_KIND, FailureDetector
from repro.sim.faults import CrashRule, FaultPlan
from repro.sim.network import Network
from repro.sim.processor import InertProcessor
from repro.sim.trace import TraceLevel

pytestmark = pytest.mark.recovery


def _network(plan=None, **kwargs):
    network = Network(fault_plan=plan, **kwargs)
    network.register_all([InertProcessor(pid) for pid in (1, 2, 3)])
    return network


class TestValidation:
    def test_requires_monitored_pids(self):
        with pytest.raises(ConfigurationError):
            FailureDetector(_network(), [])

    def test_period_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            FailureDetector(_network(), [1], period=0)

    def test_timeout_must_exceed_period(self):
        with pytest.raises(ConfigurationError):
            FailureDetector(_network(), [1], period=5.0, timeout=5.0)

    def test_horizon_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            FailureDetector(_network(), [1], horizon=0)

    def test_start_twice_raises(self):
        detector = FailureDetector(_network(), [1], horizon=10.0)
        detector.start()
        with pytest.raises(ConfigurationError):
            detector.start()


class TestLifecycle:
    def test_hub_registers_above_every_existing_processor(self):
        network = _network()
        detector = FailureDetector(network, [1, 2], horizon=10.0)
        assert detector.hub_pid is None
        detector.start()
        assert detector.hub_pid == 4
        assert network.has_processor(4)

    def test_no_crash_means_no_suspicion_and_the_run_quiesces(self):
        network = _network()
        detector = FailureDetector(
            network, [1, 2, 3], period=5.0, timeout=15.0, horizon=60.0
        )
        detector.start()
        network.run_until_quiescent()  # bounded horizon: terminates
        assert detector.suspected == frozenset()
        assert detector.events == []
        assert detector.suspicion_count() == 0
        assert network.now >= 60.0  # monitoring actually ran to the horizon

    def test_permanent_crash_is_suspected_and_stays_suspected(self):
        plan = FaultPlan([CrashRule(2, start=20.0)])
        network = _network(plan)
        detector = FailureDetector(
            network, [1, 2], period=5.0, timeout=15.0, horizon=100.0
        )
        seen = []
        detector.add_suspect_callback(lambda pid, time: seen.append((pid, time)))
        detector.start()
        network.run_until_quiescent()
        assert detector.is_suspected(2)
        assert not detector.is_suspected(1)
        assert seen and seen[0][0] == 2
        # Suspicion needs one timeout of silence past the last beat that
        # got through (~t20), plus the next tick to notice.
        assert seen[0][1] > 20.0 + detector.timeout - detector.period
        assert detector.suspicion_count() == 1

    def test_finite_crash_window_is_suspected_then_restored(self):
        plan = FaultPlan([CrashRule(2, start=20.0, end=60.0)])
        network = _network(plan)
        detector = FailureDetector(
            network, [1, 2], period=5.0, timeout=15.0, horizon=120.0
        )
        restored = []
        detector.add_restore_callback(lambda pid, time: restored.append((pid, time)))
        detector.start()
        network.run_until_quiescent()
        kinds = [event.kind for event in detector.events if event.sender == 2]
        assert kinds == ["suspect", "restore"]
        assert not detector.is_suspected(2)
        assert restored and restored[0][0] == 2
        assert restored[0][1] > 60.0  # only after the links healed

    def test_suspicions_are_first_class_trace_events(self):
        plan = FaultPlan([CrashRule(2, start=10.0)])
        network = _network(plan, trace_level=TraceLevel.FULL)
        detector = FailureDetector(
            network, [2], period=5.0, timeout=12.0, horizon=80.0
        )
        detector.start()
        network.run_until_quiescent()
        suspects = [
            record
            for record in network.trace.fault_events
            if record.kind == "suspect"
        ]
        assert len(suspects) == 1
        assert suspects[0].sender == 2
        assert suspects[0].receiver == detector.hub_pid

    def test_detection_is_deterministic(self):
        def run():
            plan = FaultPlan([CrashRule(3, start=15.0, end=45.0)])
            network = _network(plan)
            detector = FailureDetector(
                network, [1, 2, 3], period=5.0, timeout=15.0, horizon=100.0
            )
            detector.start()
            network.run_until_quiescent()
            return [(e.time, e.kind, e.sender) for e in detector.events]

        assert run() == run()

    def test_heartbeats_ride_the_normal_wire(self):
        network = _network()
        detector = FailureDetector(network, [1], period=5.0, horizon=20.0)
        detector.start()
        network.run_until_quiescent()
        beats = [
            record
            for record in network.trace.records
            if record.kind == HEARTBEAT_KIND
        ]
        assert beats  # delivered like any protocol message
        assert all(record.receiver == detector.hub_pid for record in beats)
