"""Unit tests for the bound curve arithmetic."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.lowerbound import (
    asymptotic_k,
    bound_series,
    lower_bound_k,
    message_load_bound,
    paper_n,
)


class TestPaperN:
    def test_values(self):
        assert paper_n(1) == 1
        assert paper_n(2) == 8
        assert paper_n(3) == 81
        assert paper_n(4) == 1024
        assert paper_n(5) == 15625

    def test_invalid_rejected(self):
        with pytest.raises(ConfigurationError):
            paper_n(0)


class TestBoundCurve:
    def test_inverse_of_paper_n(self):
        for k in range(2, 8):
            assert lower_bound_k(paper_n(k)) == pytest.approx(k, abs=1e-6)

    def test_integer_floor(self):
        assert message_load_bound(8) == 2
        assert message_load_bound(81) == 3
        assert message_load_bound(1024) == 4
        assert message_load_bound(80) == 2  # just below k=3
        assert message_load_bound(1) == 1

    def test_monotone_nondecreasing(self):
        values = [message_load_bound(n) for n in range(1, 2000, 13)]
        assert values == sorted(values)

    def test_invalid_rejected(self):
        with pytest.raises(ConfigurationError):
            message_load_bound(0)

    def test_sublogarithmic(self):
        # k(n) = o(log n): for large n the bound is far below log2(n).
        n = 10**12
        assert lower_bound_k(n) < math.log2(n) / 2


class TestAsymptotics:
    def test_matches_ln_over_lnln_to_first_order(self):
        # k(n)·ln(k(n)) ≈ ln n / (1 + 1/k); the ratio k / (ln n / ln ln n)
        # tends to 1 slowly.  Check it is within a band for huge n.
        for exponent in (6, 9, 12):
            n = 10**exponent
            ratio = lower_bound_k(n) / asymptotic_k(n)
            assert 0.5 < ratio < 1.5

    def test_small_n_guard(self):
        assert asymptotic_k(2) == 1.0


class TestBoundSeries:
    def test_rows_shape(self):
        rows = bound_series([8, 81, 1024])
        assert len(rows) == 3
        for n, k, floor_k, asym in rows:
            assert floor_k == math.floor(k + 1e-9)
            assert asym > 0
