"""Unit tests for the combining tree counter."""

from __future__ import annotations

import pytest

from repro.counters import CombiningTreeCounter
from repro.errors import ConfigurationError
from repro.sim.network import Network
from repro.sim.policies import RandomDelay
from repro.workloads import one_shot, run_concurrent, run_sequence, shuffled


class TestCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 5, 16, 33])
    def test_sequential_values(self, n):
        network = Network()
        counter = CombiningTreeCounter(network, n)
        result = run_sequence(counter, one_shot(n))
        assert result.values() == list(range(n))

    def test_shuffled_order(self):
        network = Network()
        counter = CombiningTreeCounter(network, 16)
        result = run_sequence(counter, shuffled(16, seed=2))
        assert result.values() == list(range(16))

    def test_concurrent_batch_unique_values(self):
        network = Network()
        counter = CombiningTreeCounter(network, 32)
        result = run_concurrent(counter, [one_shot(32)])
        assert sorted(result.values()) == list(range(32))

    def test_concurrent_under_random_delays(self):
        network = Network(policy=RandomDelay(seed=4, low=0.5, high=3.0))
        counter = CombiningTreeCounter(network, 16)
        result = run_concurrent(counter, [one_shot(16), one_shot(16)])
        assert sorted(result.values()) == list(range(32))

    @pytest.mark.parametrize("arity", [2, 3, 4])
    def test_arities(self, arity):
        network = Network()
        counter = CombiningTreeCounter(network, 27, arity=arity)
        result = run_sequence(counter, one_shot(27))
        assert result.values() == list(range(27))

    def test_invalid_arity_rejected(self):
        with pytest.raises(ConfigurationError):
            CombiningTreeCounter(Network(), 8, arity=1)


class TestCombiningBehaviour:
    def test_sequential_ops_never_combine(self):
        # Quiescence between ops means every op reaches the value holder:
        # the root host load is Θ(n).
        network = Network()
        counter = CombiningTreeCounter(network, 64)
        result = run_sequence(counter, one_shot(64))
        assert result.trace.load(counter.root_host) >= 2 * 64

    def test_concurrency_combines_and_unloads_the_root(self):
        n = 64
        seq_network = Network()
        seq = CombiningTreeCounter(seq_network, n)
        seq_result = run_sequence(seq, one_shot(n))
        conc_network = Network()
        conc = CombiningTreeCounter(conc_network, n)
        conc_result = run_concurrent(conc, [one_shot(n)])
        assert conc_result.bottleneck_load() < seq_result.bottleneck_load() / 4

    def test_concurrent_total_messages_lower_than_sequential(self):
        n = 64
        seq_result = run_sequence(
            CombiningTreeCounter(Network(), n), one_shot(n)
        )
        conc_result = run_concurrent(
            CombiningTreeCounter(Network(), n), [one_shot(n)]
        )
        assert conc_result.total_messages < seq_result.total_messages

    def test_fully_combined_batch_sends_one_root_request(self):
        # With all n requests in one batch and a binary tree, the value
        # holder hands out a single interval.
        network = Network()
        counter = CombiningTreeCounter(network, 8)
        run_concurrent(counter, [one_shot(8)])
        root_requests = [
            r
            for r in network.trace.records
            if r.kind == "combine-request" and r.receiver == counter.root_host
        ]
        # Requests *to the root node's host* include intermediate hops it
        # hosts; filter to the virtual-root request (node == -1).
        # The combining window guarantees one combined request per batch
        # per top node — exactly 1 here.
        assert counter.value == 8


class TestTopology:
    def test_hosts_are_clients(self):
        counter = CombiningTreeCounter(Network(), 16)
        for node in range(counter.node_count):
            assert 1 <= counter.host_of(node) <= 16

    def test_every_client_has_an_entry_node(self):
        counter = CombiningTreeCounter(Network(), 10)
        for pid in range(1, 11):
            assert 0 <= counter.entry_node_of(pid) < counter.node_count

    def test_single_client_tree(self):
        counter = CombiningTreeCounter(Network(), 1)
        assert counter.node_count == 1

    def test_non_client_cannot_inc(self):
        counter = CombiningTreeCounter(Network(), 4)
        with pytest.raises(ConfigurationError):
            counter.begin_inc(99, 0)
