#!/usr/bin/env python
"""CI smoke test for the Byzantine regime, end to end through the CLI.

Two explorations with pinned seeds and small budgets:

* bare ``central`` under ``byz=1@equivocate`` MUST yield an agreement
  violation (``repro explore`` exit code 1, and the JSON report must
  contain at least one failure whose oracle is ``agreement``) — the
  Byzantine server hands two honest clients the same value;
* ``byz-counter`` under the same adversary budget MUST explore clean
  (exit code 0, zero failures): f = 1 < n/3 at n = 7.

Either expectation failing fails the smoke.  Run from the repository
root: ``python scripts/byzantine_smoke.py`` (PYTHONPATH=src is set for
the subprocesses automatically).
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent


def _explore(*argv: str) -> tuple[int, dict]:
    env = dict(os.environ)
    src = str(ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH")
        else src
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "explore", *argv, "--json"],
        cwd=ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    if proc.returncode not in (0, 1):
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
        raise SystemExit(
            f"repro explore crashed with exit code {proc.returncode}"
        )
    return proc.returncode, json.loads(proc.stdout)


def main() -> int:
    failures: list[str] = []

    code, report = _explore(
        "--counter", "central", "--n", "4", "--seed", "0",
        "--strategy", "guided:6,random:6", "--budget", "6",
        "--faults", "byz=1@equivocate", "--workload", "sequential",
    )
    oracles = {f["failure"]["oracle"] for f in report["failures"]}
    if code != 1:
        failures.append(
            f"central under byz=1 must fail (exit 1), got exit {code}"
        )
    if "agreement" not in oracles:
        failures.append(
            "central under byz=1 must violate agreement; "
            f"violated oracles: {sorted(oracles) or 'none'}"
        )
    else:
        print(f"[smoke] central + byz=1: agreement violated as expected "
              f"({len(report['failures'])} witness(es))")

    code, report = _explore(
        "--counter", "byz-counter?f=1", "--n", "7", "--seed", "3",
        "--strategy", "guided:4,random:4", "--budget", "4",
        "--faults", "byz=1@mixed", "--workload", "sequential",
    )
    if code != 0 or report["failures"]:
        failures.append(
            f"byz-counter under byz=1 must explore clean, got exit {code} "
            f"with {len(report['failures'])} failure(s)"
        )
    else:
        print(f"[smoke] byz-counter + byz=1: clean over "
              f"{report['episodes']} episodes")

    if failures:
        for failure in failures:
            print(f"[smoke] FAIL: {failure}", file=sys.stderr)
        return 1
    print("[smoke] byzantine smoke OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
