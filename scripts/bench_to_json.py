#!/usr/bin/env python
"""Thin wrapper: measure the simulator and emit ``BENCH_simulator.json``.

The measurement logic lives in :mod:`repro.bench`; this script only
adds a path bootstrap so it runs from a bare checkout.  Prefer the CLI
form, which offers grid selection::

    PYTHONPATH=src python -m repro bench [--grid NAME ...] [-o PATH]

Usage::

    PYTHONPATH=src python scripts/bench_to_json.py [-o BENCH_simulator.json]
"""

from __future__ import annotations

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.bench import GRIDS, write_report  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-o", "--output", default="BENCH_simulator.json",
        help="output path (default: ./BENCH_simulator.json)",
    )
    parser.add_argument(
        "--grid", action="append", choices=GRIDS, metavar="NAME",
        help="run only the named grid(s); repeatable (default: all)",
    )
    args = parser.parse_args(argv)
    write_report(args.output, tuple(args.grid) if args.grid else GRIDS)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
