#!/usr/bin/env python
"""Measure the simulator substrate and emit ``BENCH_simulator.json``.

Times the hot paths directly (no pytest-benchmark dependency at run
time) so CI and developers get one comparable artifact:

* event-queue schedule+pop throughput;
* message delivery throughput at every :class:`TraceLevel`, with the
  speedup over the seed's FULL-tracing baseline;
* counter-registry spec resolution and RunSession construction rates;
* wall time of a small E7-style sweep, serial vs parallel;
* a 3-point drop-rate smoke grid (ww-tree behind the reliable
  transport) with the transport's retransmit metrics;
* a crash-recovery smoke grid (central[standby] under a mid-run
  primary crash) with failover latency and bottleneck overhead.

Usage::

    PYTHONPATH=src python scripts/bench_to_json.py [-o BENCH_simulator.json]
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import pathlib
import platform
import statistics
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.registry import RunSession, parse_spec, registered_names  # noqa: E402
from repro.sim.events import EventQueue  # noqa: E402
from repro.sim.network import Network  # noqa: E402
from repro.sim.processor import InertProcessor  # noqa: E402
from repro.sim.trace import TraceLevel  # noqa: E402
from repro.workloads import SweepPoint, SweepRunner  # noqa: E402

SEED_FULL_MSGS_PER_S = 140_877
"""messages/s of ``test_message_throughput`` measured at the seed commit
(FULL tracing, pre-optimization) on the reference machine — the
denominator for the speedup ratios below."""


def _best_rate(work, units: int, repeats: int = 30) -> float:
    """Best-of-*repeats* throughput in units/second (median of top 5)."""
    rates = []
    for _ in range(repeats):
        start = time.perf_counter()
        work()
        elapsed = time.perf_counter() - start
        rates.append(units / elapsed)
    return statistics.median(sorted(rates)[-5:])


def bench_event_queue(events: int = 1000) -> float:
    """Mirror of ``test_event_queue_throughput`` in bench_simulator.py."""

    def churn():
        queue = EventQueue()
        for index in range(events):
            queue.schedule((index * 7) % 13 + 0.5, lambda: None)
        while queue:
            queue.run_next()

    return _best_rate(churn, 2 * events)  # schedule + pop each count


def bench_messages(level: TraceLevel, messages: int = 1000) -> float:
    """Mirror of ``test_message_throughput*`` in bench_simulator.py.

    The blast size matches the benchmark suite (and the seed baseline
    measurement) so the speedup ratios are apples to apples.
    """
    network = Network(trace_level=level)
    network.register_all([InertProcessor(pid) for pid in range(1, 17)])

    def blast():
        send = network.send
        for index in range(messages):
            send((index % 16) + 1, ((index + 7) % 16) + 1, "m", {})
        network.run_until_quiescent()

    return _best_rate(blast, messages)


def bench_spec_resolution() -> float:
    """Mirror of ``test_registry_spec_resolution`` in bench_simulator.py."""
    specs = [
        *registered_names(),
        "combining-tree?arity=4&window=3.0",
        "ww-tree?interval_mode=wrap",
        "diffracting-tree?prism_size=8&seed=7",
    ]

    def resolve():
        for text in specs:
            parse_spec(text).canonical

    return _best_rate(resolve, len(specs))


def bench_session_construction(n: int = 81) -> float:
    """Mirror of ``test_registry_session_construction``: sessions/s."""
    sessions = 20

    def build():
        for _ in range(sessions):
            RunSession("ww-tree", n)

    return _best_rate(build, sessions, repeats=10)


def bench_fault_transport(
    n: int = 27, drops: tuple[float, ...] = (0.0, 0.05, 0.1)
) -> dict:
    """Drop-rate smoke grid: ww-tree one-shot behind ReliableTransport.

    Completion is asserted (``run_sequence`` checks every returned
    value), so this doubles as a CI smoke test of the faulty regime.
    """
    grid = {}
    for drop in drops:
        session = RunSession(
            "ww-tree",
            n,
            policy="random",
            seed=3,
            faults=f"drop={drop}" if drop else None,
            reliable=True,
        )
        start = time.perf_counter()
        result = session.run_sequence()
        elapsed = time.perf_counter() - start
        stats = session.transport_stats()
        grid[f"drop={drop}"] = {
            "bottleneck_load": result.bottleneck_load(),
            "data_sent": stats["data_sent"],
            "retransmissions": stats["retransmissions"],
            "duplicates_suppressed": stats["duplicates_suppressed"],
            "overhead_ratio": round(session.transport.overhead_ratio(), 4),
            "wall_time_s": round(elapsed, 4),
        }
    return {
        "grid": f"ww-tree one-shot, n={n}, random delays, reliable transport",
        "note": "all values verified correct at every drop rate; "
        "overhead_ratio = transmissions / goodput",
        **grid,
    }


def bench_recovery(n: int = 16) -> dict:
    """Crash-recovery smoke grid: central[standby] failover.

    One clean run and one with a permanent mid-run primary crash;
    linearizability is asserted on both, so this doubles as a CI smoke
    test of the recovery stack (failure detector + checkpoint/failover).
    """
    from repro.analysis.linearizability import check_linearizable_counting
    from repro.analysis.load import LoadProfile

    grid = {}
    for label, faults in (("clean", None), ("primary crash", "crash=1@t18")):
        session = RunSession(
            "central[standby]", n, policy="random", seed=3, faults=faults
        )
        start = time.perf_counter()
        ops = session.run_staggered(gap=4.0)
        elapsed = time.perf_counter() - start
        report = check_linearizable_counting(ops)
        assert report.linearizable, f"{label}: history not linearizable"
        profile = LoadProfile.from_trace(session.network.trace, population=n)
        manager = session.recovery
        grid[label] = {
            "ops_completed": len(ops),
            "linearizable": report.linearizable,
            "suspicions": manager.detector.suspicion_count() if manager else 0,
            "failovers": manager.failover_count() if manager else 0,
            "failover_latency": (
                round(manager.failover_latency(), 2)
                if manager and manager.failover_latency() is not None
                else None
            ),
            "client_bottleneck_load": (
                profile.restrict(range(1, n + 1)).bottleneck_load
            ),
            "wall_time_s": round(elapsed, 4),
        }
    return {
        "grid": f"central[standby] staggered one-shot, n={n}, random delays",
        "note": "linearizability asserted on both runs; failover latency "
        "runs from the crash-window start to the standby's promotion",
        **grid,
    }


def bench_explore() -> dict:
    """Exploration smoke grid: schedules judged per second.

    Mirrors ``benchmarks/bench_explore.py``: a random-walk budget on
    the central counter and a guided budget on the bypass combining
    tree (the acceptance configuration).  Both runs assert no oracle
    failed, so this doubles as a CI smoke test of the explorer.
    """
    from repro.explore import ExploreConfig, Explorer

    grid = {}
    for label, counter, strategy in (
        ("central random", "central", "random"),
        ("bypass-tree guided", "combining-tree[bypass]", "guided"),
    ):
        explorer = Explorer(
            ExploreConfig(counter=counter, n=8, strategy=strategy, budget=20)
        )

        def explore(explorer=explorer):
            report = explorer.run()
            assert report.ok, f"exploration found failures: {report.failures}"

        rate = _best_rate(explore, 20, repeats=5)
        grid[label] = {"schedules_per_s": round(rate, 1)}
    return {
        "grid": "n=8, 20 episodes per measurement, full oracle suite",
        "note": "every schedule is judged by all five oracles; both "
        "configurations asserted failure-free",
        **grid,
    }


def bench_sweep(workers: int) -> float:
    points = [
        SweepPoint(counter=counter, n=n)
        for counter in ("central", "static-tree", "ww-tree")
        for n in (256, 1024)
    ]
    start = time.perf_counter()
    SweepRunner(workers=workers).run(points)
    return time.perf_counter() - start


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "-o", "--output", default="BENCH_simulator.json",
        help="output path (default: ./BENCH_simulator.json)",
    )
    args = parser.parse_args(argv)

    full = bench_messages(TraceLevel.FULL)
    loads = bench_messages(TraceLevel.LOADS)
    off = bench_messages(TraceLevel.OFF)
    serial_s = bench_sweep(workers=1)
    parallel_s = bench_sweep(workers=4)
    report = {
        "benchmark": "simulator substrate",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": multiprocessing.cpu_count(),
        "event_queue_ops_per_s": round(bench_event_queue()),
        "messages_per_s": {
            "full": round(full),
            "loads": round(loads),
            "off": round(off),
        },
        "registry": {
            "spec_resolutions_per_s": round(bench_spec_resolution()),
            "ww_tree_sessions_per_s": round(bench_session_construction()),
            "note": "parse+canonicalize over every registered spec; "
            "RunSession includes building the n=81 tree",
        },
        "seed_reference": {
            "full_msgs_per_s": SEED_FULL_MSGS_PER_S,
            "note": "seed-commit FULL-tracing throughput; ratio target "
            "for LOADS is >= 5x",
        },
        "speedup_vs_seed_full": {
            "full": round(full / SEED_FULL_MSGS_PER_S, 2),
            "loads": round(loads / SEED_FULL_MSGS_PER_S, 2),
            "off": round(off / SEED_FULL_MSGS_PER_S, 2),
        },
        "sweep_wall_time_s": {
            "grid": "3 counters x n in (256, 1024), one-shot",
            "note": "parallel only wins with >1 cpu; outputs are "
            "identical either way",
            "serial": round(serial_s, 3),
            "parallel_4_workers": round(parallel_s, 3),
        },
        "fault_transport": bench_fault_transport(),
        "crash_recovery": bench_recovery(),
        "schedule_exploration": bench_explore(),
    }
    output = pathlib.Path(args.output)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
