#!/usr/bin/env python
"""CI smoke test for the serving stack, end to end through the CLI.

Starts ``repro serve`` as a subprocess on a loopback port chosen by the
OS (``--port 0``), parses the ``SERVING`` announce line for the real
port, drives a few hundred increments through ``repro loadgen``, and
asserts:

* the load generator exits 0 with zero failed requests;
* the final counter value equals the number of increments sent
  (``--expect-final``);
* ``--shutdown`` stops the server, which itself exits 0.

Run from the repository root: ``python scripts/serving_smoke.py``
(PYTHONPATH=src is set for the subprocesses automatically).
"""

from __future__ import annotations

import os
import pathlib
import re
import select
import subprocess
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
SPEC = "ww-tree?interval_mode=wrap"
N = 27
OPS = 300
RATE = 500.0
ANNOUNCE = re.compile(r"^SERVING (?P<spec>\S+) n=(?P<n>\d+) "
                      r"(?P<host>[\d.]+):(?P<port>\d+)$")
START_TIMEOUT_S = 30.0


def _env() -> dict[str, str]:
    env = dict(os.environ)
    src = str(ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}:{existing}" if existing else src
    return env


def _read_announce(server: subprocess.Popen) -> tuple[str, int]:
    """Wait for the SERVING line (with a deadline) and parse it."""
    assert server.stdout is not None
    deadline = time.monotonic() + START_TIMEOUT_S
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise TimeoutError(
                f"server did not announce within {START_TIMEOUT_S}s"
            )
        ready, _, _ = select.select([server.stdout], [], [], remaining)
        if not ready:
            continue
        line = server.stdout.readline()
        if not line:
            raise RuntimeError(
                f"server exited before announcing "
                f"(rc={server.poll()})"
            )
        print(f"[serve] {line.rstrip()}")
        match = ANNOUNCE.match(line.strip())
        if match:
            return match["host"], int(match["port"])


def main() -> int:
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", SPEC,
            "--n", str(N), "--port", "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=_env(),
        cwd=ROOT,
    )
    try:
        host, port = _read_announce(server)
        loadgen = subprocess.run(
            [
                sys.executable, "-m", "repro", "loadgen",
                "--host", host,
                "--port", str(port),
                "--ops", str(OPS),
                "--rate", str(RATE),
                "--expect-final", str(OPS),
                "--shutdown",
            ],
            capture_output=True,
            text=True,
            timeout=120,
            env=_env(),
            cwd=ROOT,
        )
        print(f"[loadgen] {loadgen.stdout.strip()}")
        if loadgen.stderr.strip():
            print(f"[loadgen:err] {loadgen.stderr.strip()}")
        if loadgen.returncode != 0:
            print(f"FAIL: loadgen exited {loadgen.returncode}")
            return 1
        if "err=0" not in loadgen.stdout:
            print("FAIL: loadgen reported failed requests")
            return 1
        server_rc = server.wait(timeout=30)
        if server_rc != 0:
            print(f"FAIL: server exited {server_rc} after shutdown")
            return 1
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()
    print(f"OK: {OPS} increments served by {SPEC} (n={N}), "
          "final value verified, clean shutdown")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
