#!/usr/bin/env python
"""CI smoke test for the sharded keyspace, end to end through the CLI.

Starts ``repro serve --shards`` (recording a fixture bundle) and a
``repro chaos`` proxy in front of it, both on OS-chosen loopback ports,
then drives a Zipf-skewed keyed workload through the *proxy* with
``repro loadgen --keys --retries`` and asserts:

* the load generator exits 0 with zero failed requests and **every
  key exact** — each key's observed values form one consecutive run,
  so the injected resets/truncations never double-applied a retry;
* ``STATS`` (asked directly, past the proxy) agrees: served == OPS
  across all shards;
* ``SHUTDOWN`` drains the server (exit 0), which writes the fixture
  bundle;
* ``repro replay`` re-executes the bundle offline and re-verifies
  every recorded increment (exit 0).

Run from the repository root: ``python scripts/shard_smoke.py``
(PYTHONPATH=src is set for the subprocesses automatically).
"""

from __future__ import annotations

import os
import pathlib
import re
import select
import socket
import subprocess
import sys
import tempfile
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
SPEC = "central"
N = 4
SHARDS = 4
BATCH_MAX = 16
OPS = 500
RATE = 800.0
KEYS = 32
ZIPF = 1.1
PLAN = "delay=0.001@0.2,trunc=4@0.08,reset@0.12"
SEED = 7
SERVE_ANNOUNCE = re.compile(
    r"^SERVING (?P<spec>\S+) n=(?P<n>\d+) shards=(?P<shards>\d+) "
    r"(?P<host>[\d.]+):(?P<port>\d+)$"
)
CHAOS_ANNOUNCE = re.compile(r"^CHAOS (?P<plan>\S+) "
                            r"(?P<host>[\d.]+):(?P<port>\d+) -> "
                            r"(?P<uhost>[\d.]+):(?P<uport>\d+)$")
START_TIMEOUT_S = 30.0


def _env() -> dict[str, str]:
    env = dict(os.environ)
    src = str(ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}:{existing}" if existing else src
    return env


def _read_announce(
    process: subprocess.Popen, pattern: re.Pattern, tag: str
) -> tuple[str, int]:
    """Wait for an announce line (with a deadline) and parse it."""
    assert process.stdout is not None
    deadline = time.monotonic() + START_TIMEOUT_S
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise TimeoutError(
                f"{tag} did not announce within {START_TIMEOUT_S}s"
            )
        ready, _, _ = select.select([process.stdout], [], [], remaining)
        if not ready:
            continue
        line = process.stdout.readline()
        if not line:
            raise RuntimeError(
                f"{tag} exited before announcing (rc={process.poll()})"
            )
        print(f"[{tag}] {line.rstrip()}")
        match = pattern.match(line.strip())
        if match:
            return match["host"], int(match["port"])


def _ask(host: str, port: int, line: str) -> str:
    """One request/answer round trip on a fresh direct connection."""
    with socket.create_connection((host, port), timeout=10) as sock:
        sock.sendall(f"{line}\n".encode("ascii"))
        answer = b""
        while not answer.endswith(b"\n"):
            chunk = sock.recv(4096)
            if not chunk:
                break
            answer += chunk
    return answer.decode("ascii").strip()


def main() -> int:
    bundle = tempfile.mkdtemp(prefix="shard-smoke-")
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", SPEC,
            "--n", str(N), "--port", "0",
            "--shards", str(SHARDS),
            "--batch-max", str(BATCH_MAX),
            "--max-backlog", "256",
            "--fixture", bundle,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=_env(),
        cwd=ROOT,
    )
    proxy = None
    try:
        host, port = _read_announce(server, SERVE_ANNOUNCE, "serve")
        proxy = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "chaos",
                "--upstream", f"{host}:{port}",
                "--port", "0",
                "--plan", PLAN,
                "--seed", str(SEED),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=_env(),
            cwd=ROOT,
        )
        chaos_host, chaos_port = _read_announce(
            proxy, CHAOS_ANNOUNCE, "chaos"
        )
        loadgen = subprocess.run(
            [
                sys.executable, "-m", "repro", "loadgen",
                "--host", chaos_host,
                "--port", str(chaos_port),
                "--ops", str(OPS),
                "--rate", str(RATE),
                "--keys", str(KEYS),
                "--zipf", str(ZIPF),
                "--seed", str(SEED),
                "--retries", "8",
                "--backoff-base-ms", "5",
                "--backoff-max-ms", "50",
            ],
            capture_output=True,
            text=True,
            timeout=180,
            env=_env(),
            cwd=ROOT,
        )
        print(f"[loadgen] {loadgen.stdout.strip()}")
        if loadgen.stderr.strip():
            print(f"[loadgen:err] {loadgen.stderr.strip()}")
        if loadgen.returncode != 0:
            print(f"FAIL: loadgen exited {loadgen.returncode}")
            return 1
        if "err=0" not in loadgen.stdout:
            print("FAIL: loadgen reported failed requests")
            return 1
        if "all exact" not in loadgen.stdout:
            print("FAIL: per-key exactness violated under chaos")
            return 1

        # ask the server directly (past the proxy): the dedup ledger
        # must have made every chaos-driven retry exactly-once
        stats_line = _ask(host, port, "STATS")
        print(f"[stats] {stats_line}")
        fields = dict(
            pair.split("=", 1)
            for pair in stats_line.split()[1:]
        )
        if int(fields["served"]) != OPS:
            print(f"FAIL: server served {fields['served']}, want {OPS}")
            return 1
        if int(fields["shards"]) != SHARDS:
            print(f"FAIL: {fields['shards']} shards, want {SHARDS}")
            return 1

        bye = _ask(host, port, "SHUTDOWN")
        if bye != "BYE":
            print(f"FAIL: SHUTDOWN answered {bye!r}")
            return 1
        server_rc = server.wait(timeout=30)
        if server_rc != 0:
            print(f"FAIL: server exited {server_rc} after shutdown")
            return 1

        # the stopped server wrote the fixture bundle: re-execute the
        # whole run offline and re-verify every recorded increment
        replay = subprocess.run(
            [sys.executable, "-m", "repro", "replay", bundle],
            capture_output=True,
            text=True,
            timeout=180,
            env=_env(),
            cwd=ROOT,
        )
        print(f"[replay] {replay.stdout.strip()}")
        if replay.stderr.strip():
            print(f"[replay:err] {replay.stderr.strip()}")
        if replay.returncode != 0 or "REPLAY OK" not in replay.stdout:
            print(f"FAIL: replay exited {replay.returncode}")
            return 1
    finally:
        for process in (proxy, server):
            if process is not None and process.poll() is None:
                process.kill()
                process.wait()
    print(f"OK: {OPS} keyed increments over {SHARDS} shards "
          f"exactly-once through chaos ({PLAN}), every key exact, "
          f"bundle replayed clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
