#!/usr/bin/env python
"""CI smoke test for the resilience layer, end to end through the CLI.

Starts ``repro serve`` and ``repro chaos`` as subprocesses on loopback
ports chosen by the OS (``--port 0``), parses both announce lines, then
drives increments through the *proxy* with ``repro loadgen --retries``
and asserts:

* the load generator exits 0 with zero failed requests despite the
  injected resets and stalls (retries carried every one of them);
* the final counter value equals the number of increments sent
  (``--expect-final``) — the server's request-id dedup made the
  retries exactly-once;
* ``STATS`` (asked directly, past the proxy) agrees: served == OPS;
* ``SHUTDOWN`` (also direct) drains the server, which exits 0.

Run from the repository root: ``python scripts/chaos_smoke.py``
(PYTHONPATH=src is set for the subprocesses automatically).
"""

from __future__ import annotations

import os
import pathlib
import re
import select
import socket
import subprocess
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
SPEC = "central"
N = 8
OPS = 300
RATE = 400.0
PLAN = "delay=0.002@0.2,trunc=4@0.1,reset@0.15,stall=0.02@0.1"
SEED = 5
SERVE_ANNOUNCE = re.compile(r"^SERVING (?P<spec>\S+) n=(?P<n>\d+) "
                            r"(?P<host>[\d.]+):(?P<port>\d+)$")
CHAOS_ANNOUNCE = re.compile(r"^CHAOS (?P<plan>\S+) "
                            r"(?P<host>[\d.]+):(?P<port>\d+) -> "
                            r"(?P<uhost>[\d.]+):(?P<uport>\d+)$")
START_TIMEOUT_S = 30.0


def _env() -> dict[str, str]:
    env = dict(os.environ)
    src = str(ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}:{existing}" if existing else src
    return env


def _read_announce(
    process: subprocess.Popen, pattern: re.Pattern, tag: str
) -> tuple[str, int]:
    """Wait for an announce line (with a deadline) and parse it."""
    assert process.stdout is not None
    deadline = time.monotonic() + START_TIMEOUT_S
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise TimeoutError(
                f"{tag} did not announce within {START_TIMEOUT_S}s"
            )
        ready, _, _ = select.select([process.stdout], [], [], remaining)
        if not ready:
            continue
        line = process.stdout.readline()
        if not line:
            raise RuntimeError(
                f"{tag} exited before announcing (rc={process.poll()})"
            )
        print(f"[{tag}] {line.rstrip()}")
        match = pattern.match(line.strip())
        if match:
            return match["host"], int(match["port"])


def _ask(host: str, port: int, line: str) -> str:
    """One request/answer round trip on a fresh direct connection."""
    with socket.create_connection((host, port), timeout=10) as sock:
        sock.sendall(f"{line}\n".encode("ascii"))
        answer = b""
        while not answer.endswith(b"\n"):
            chunk = sock.recv(4096)
            if not chunk:
                break
            answer += chunk
    return answer.decode("ascii").strip()


def main() -> int:
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", SPEC,
            "--n", str(N), "--port", "0",
            "--max-backlog", "128",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=_env(),
        cwd=ROOT,
    )
    proxy = None
    try:
        host, port = _read_announce(server, SERVE_ANNOUNCE, "serve")
        proxy = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "chaos",
                "--upstream", f"{host}:{port}",
                "--port", "0",
                "--plan", PLAN,
                "--seed", str(SEED),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=_env(),
            cwd=ROOT,
        )
        chaos_host, chaos_port = _read_announce(
            proxy, CHAOS_ANNOUNCE, "chaos"
        )
        loadgen = subprocess.run(
            [
                sys.executable, "-m", "repro", "loadgen",
                "--host", chaos_host,
                "--port", str(chaos_port),
                "--ops", str(OPS),
                "--rate", str(RATE),
                "--retries", "8",
                "--deadline-ms", "500",
                "--backoff-base-ms", "5",
                "--backoff-max-ms", "50",
                "--expect-final", str(OPS),
            ],
            capture_output=True,
            text=True,
            timeout=180,
            env=_env(),
            cwd=ROOT,
        )
        print(f"[loadgen] {loadgen.stdout.strip()}")
        if loadgen.stderr.strip():
            print(f"[loadgen:err] {loadgen.stderr.strip()}")
        if loadgen.returncode != 0:
            print(f"FAIL: loadgen exited {loadgen.returncode}")
            return 1
        if "err=0" not in loadgen.stdout:
            print("FAIL: loadgen reported failed requests")
            return 1

        # ask the server directly (past the proxy): exactly-once means
        # served landed on OPS even though the wire lost and re-sent
        stats_line = _ask(host, port, "STATS")
        print(f"[stats] {stats_line}")
        fields = dict(
            pair.split("=", 1)
            for pair in stats_line.split()[1:]
        )
        if int(fields["served"]) != OPS:
            print(f"FAIL: server served {fields['served']}, want {OPS}")
            return 1

        bye = _ask(host, port, "SHUTDOWN")
        if bye != "BYE":
            print(f"FAIL: SHUTDOWN answered {bye!r}")
            return 1
        server_rc = server.wait(timeout=30)
        if server_rc != 0:
            print(f"FAIL: server exited {server_rc} after shutdown")
            return 1
    finally:
        for process in (proxy, server):
            if process is not None and process.poll() is None:
                process.kill()
                process.wait()
    print(f"OK: {OPS} increments exactly-once through chaos "
          f"({PLAN}), final value verified, clean shutdown")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
