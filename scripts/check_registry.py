#!/usr/bin/env python3
"""Registry completeness check: every implementation must have a spec.

Usage:  PYTHONPATH=src python scripts/check_registry.py

Walks the implementation modules (``repro/counters/*.py``, the ww-tree
in ``repro/core/tree``, and the quorum counter) and fails if any of them
does not contribute at least one registered :class:`CounterSpec`, or if
a registered spec builds a counter whose ``name`` attribute disagrees
with its canonical registry key.  Run in CI so a new counter cannot land
without registry wiring.
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))

from repro.quorum.counter import SYSTEM_SLUGS  # noqa: E402
from repro.registry import registered_names, registered_specs  # noqa: E402
from repro.sim.network import Network  # noqa: E402

#: implementation module stem -> canonical registry base name
EXPECTED = {
    "arrow": "arrow",
    "central": "central",
    "combining_tree": "combining-tree",
    "counting_network": "counting-network",
    "diffracting_tree": "diffracting-tree",
    "static_tree": "static-tree",
}


def main() -> int:
    root = pathlib.Path(__file__).parent.parent / "src" / "repro"
    names = registered_names()
    base_names = {name.partition("[")[0] for name in names}
    failures: list[str] = []

    counter_modules = {
        path.stem
        for path in (root / "counters").glob("*.py")
        if path.stem != "__init__"
    }
    unmapped = counter_modules - set(EXPECTED)
    if unmapped:
        failures.append(
            f"counter modules not in the expectation map: {sorted(unmapped)} "
            "(add them to scripts/check_registry.py AND repro/registry.py)"
        )
    for module, base in sorted(EXPECTED.items()):
        if module in counter_modules and base not in base_names:
            failures.append(f"module counters/{module}.py has no spec {base!r}")

    if "ww-tree" not in base_names:
        failures.append("core/tree's TreeCounter has no 'ww-tree' spec")
    registered_quorums = {
        name.partition("[")[2].rstrip("]")
        for name in names
        if name.startswith("quorum[")
    }
    # The projective plane is parameterized by plane order, not by n, so
    # it cannot be a (network, n) registry factory; every other system
    # slug must be registered.
    expected_quorums = set(SYSTEM_SLUGS.values()) - {"projective-plane"}
    missing_quorums = expected_quorums - registered_quorums
    if missing_quorums:
        failures.append(f"quorum systems without specs: {sorted(missing_quorums)}")

    for spec in registered_specs():
        n = 16  # square and a power of two: accepted by every spec
        if spec.supports_n(n) is not None:
            failures.append(f"{spec.name}: rejects the probe size n={n}")
            continue
        counter = spec.build(Network(), n)
        if counter.name != spec.name:
            failures.append(
                f"{spec.name}: built counter reports name {counter.name!r}"
            )

    if failures:
        print("registry completeness check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        f"registry completeness check OK: {len(names)} specs cover "
        f"{len(counter_modules)} counter modules, the ww-tree, and "
        f"{len(registered_quorums)} quorum systems"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
