#!/usr/bin/env python3
"""Registry completeness check: every implementation must have a spec.

Usage:  PYTHONPATH=src python scripts/check_registry.py

Walks the implementation modules (``repro/counters/*.py``, the ww-tree
in ``repro/core/tree``, and the quorum counter) and fails if any of them
does not contribute every registered :class:`CounterSpec` it is expected
to, or if a registered spec builds a counter whose ``name`` attribute
disagrees with its canonical registry key.  Additionally, every spec
that declares ``tolerates_crash`` must have a recovery test: its exact
name must appear in at least one ``tests/test_*.py`` file that uses the
``recovery`` pytest marker — a crash-tolerance claim without a crash
test is vacuous.  The same bar applies to ``tolerates_byzantine``
claims, which must appear in a ``byzantine``-marked test.  Run in CI so
a new counter cannot land without registry wiring.
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))

from repro.quorum.counter import SYSTEM_SLUGS  # noqa: E402
from repro.registry import registered_names, registered_specs  # noqa: E402
from repro.sim.network import Network  # noqa: E402

#: implementation module stem -> full spec names the module contributes
EXPECTED = {
    "arrow": ["arrow"],
    "byzantine": ["byz-counter"],
    "central": ["central"],
    "combining_tree": ["combining-tree"],
    "counting_network": ["counting-network"],
    "diffracting_tree": ["diffracting-tree"],
    "recoverable": ["central[standby]", "combining-tree[bypass]"],
    "static_tree": ["static-tree"],
}


def main() -> int:
    root = pathlib.Path(__file__).parent.parent / "src" / "repro"
    names = registered_names()
    base_names = {name.partition("[")[0] for name in names}
    failures: list[str] = []

    counter_modules = {
        path.stem
        for path in (root / "counters").glob("*.py")
        if path.stem != "__init__"
    }
    unmapped = counter_modules - set(EXPECTED)
    if unmapped:
        failures.append(
            f"counter modules not in the expectation map: {sorted(unmapped)} "
            "(add them to scripts/check_registry.py AND repro/registry.py)"
        )
    for module, expected_specs in sorted(EXPECTED.items()):
        if module not in counter_modules:
            continue
        for spec_name in expected_specs:
            if spec_name not in names:
                failures.append(
                    f"module counters/{module}.py has no spec {spec_name!r}"
                )

    if "ww-tree" not in base_names:
        failures.append("core/tree's TreeCounter has no 'ww-tree' spec")
    registered_quorums = {
        name.partition("[")[2].rstrip("]")
        for name in names
        if name.startswith("quorum[")
    }
    # The projective plane is parameterized by plane order, not by n, so
    # it cannot be a (network, n) registry factory; every other system
    # slug must be registered.
    expected_quorums = set(SYSTEM_SLUGS.values()) - {"projective-plane"}
    missing_quorums = expected_quorums - registered_quorums
    if missing_quorums:
        failures.append(f"quorum systems without specs: {sorted(missing_quorums)}")

    for spec in registered_specs():
        n = 16  # square and a power of two: accepted by every spec
        if spec.supports_n(n) is not None:
            failures.append(f"{spec.name}: rejects the probe size n={n}")
            continue
        counter = spec.build(Network(), n)
        if counter.name != spec.name:
            failures.append(
                f"{spec.name}: built counter reports name {counter.name!r}"
            )

    # Crash-tolerance claims need crash tests: the spec's exact name must
    # appear in a test file that carries the `recovery` pytest marker.
    tests_dir = pathlib.Path(__file__).parent.parent / "tests"
    recovery_tests = [
        path
        for path in sorted(tests_dir.glob("test_*.py"))
        if "pytest.mark.recovery" in path.read_text()
    ]
    crash_specs = [
        spec.name
        for spec in registered_specs()
        if spec.capabilities.tolerates_crash
    ]
    for spec_name in crash_specs:
        if not any(spec_name in path.read_text() for path in recovery_tests):
            failures.append(
                f"{spec_name}: declares tolerates_crash but no test file "
                "with the 'recovery' marker mentions it"
            )

    # Byzantine-tolerance claims need Byzantine tests, same bar: the
    # spec's exact name must appear in a test file carrying the
    # `byzantine` pytest marker.
    byzantine_tests = [
        path
        for path in sorted(tests_dir.glob("test_*.py"))
        if "pytest.mark.byzantine" in path.read_text()
    ]
    byzantine_specs = [
        spec.name
        for spec in registered_specs()
        if spec.capabilities.tolerates_byzantine
    ]
    for spec_name in byzantine_specs:
        if not any(
            spec_name in path.read_text() for path in byzantine_tests
        ):
            failures.append(
                f"{spec_name}: declares tolerates_byzantine but no test "
                "file with the 'byzantine' marker mentions it"
            )

    # Sharding claims universality: CounterShardMap serializes batches
    # per shard, so EVERY registered spec must back a shard — and that
    # claim is only real if every spec's exact name appears in a test
    # file carrying the `shard` pytest marker.
    shard_tests = [
        path
        for path in sorted(tests_dir.glob("test_*.py"))
        if "pytest.mark.shard" in path.read_text()
    ]
    for spec_name in registered_names():
        if not any(spec_name in path.read_text() for path in shard_tests):
            failures.append(
                f"{spec_name}: registered but no test file with the "
                "'shard' marker mentions it — the sharded keyspace "
                "claims every spec can back a shard"
            )

    if failures:
        print("registry completeness check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        f"registry completeness check OK: {len(names)} specs cover "
        f"{len(counter_modules)} counter modules, the ww-tree, and "
        f"{len(registered_quorums)} quorum systems"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
