"""Setuptools shim.

This offline environment has no ``wheel`` package, so PEP 660 editable
installs (which build a wheel) fail.  The shim enables the legacy path:

    pip install -e . --no-use-pep517 --no-build-isolation

All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
