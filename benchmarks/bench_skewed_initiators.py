"""E19: thin benchmark wrapper.

The experiment's logic lives in :mod:`repro.experiments` (callable as
``repro.experiments.run_e19()`` or via ``python -m repro experiment
E19``); this wrapper times one canonical execution under
pytest-benchmark and saves the table to ``benchmarks/results/``.
"""

from __future__ import annotations

from conftest import save_report

from repro.experiments import run_e19


def test_skewed_initiators(benchmark):
    result = benchmark.pedantic(run_e19, rounds=1, iterations=1)
    report = result.to_text()
    save_report("E19_skewed_initiators", report)
    assert report
