"""E3: thin benchmark wrapper.

The experiment's logic lives in :mod:`repro.experiments` (callable as
``repro.experiments.run_e3()`` or via ``python -m repro experiment
E3``); this wrapper times one canonical execution under
pytest-benchmark and saves the table to ``benchmarks/results/``.
The claim, parameters and expected shape are documented in DESIGN.md's
experiment index and EXPERIMENTS.md's results log.
"""

from __future__ import annotations

from conftest import save_report

from repro.experiments import run_e3


def test_lower_bound(benchmark):
    result = benchmark.pedantic(run_e3, rounds=1, iterations=1)
    report = result.to_text()
    save_report("E3_lower_bound", report)
    assert "NO" not in report
