"""Serving-path throughput: open-loop driving and the live TCP service.

Infrastructure benchmarks for the runtime seam and serving layer — the
numbers that decide how much offered load the measurement harness
itself can generate.  Wall-clock saturation knees are measured by the
``serving`` grid of ``repro.bench`` (see ``BENCH_simulator.json``);
these are the per-component rates.
"""

from __future__ import annotations

import asyncio

from repro.registry import RunSession
from repro.serve import CounterService, run_load


def test_open_loop_sim_driver(benchmark):
    """192 open-loop Poisson arrivals on central (n=16), simulated."""

    def drive():
        session = RunSession("central", 16)
        result = session.run_open_loop(ops=192, rate=8.0)
        assert result.operation_count == 192
        return result

    benchmark.pedantic(drive, rounds=5, iterations=1)


def test_open_loop_asyncio_runtime(benchmark):
    """The same open-loop workload executed on the asyncio runtime."""

    def drive():
        session = RunSession("central", 16, runtime="asyncio")
        result = session.run_open_loop(ops=192, rate=8.0)
        assert result.operation_count == 192
        return result

    benchmark.pedantic(drive, rounds=5, iterations=1)


def test_live_service_inc_roundtrips(benchmark):
    """100 INC round-trips over loopback TCP (ww-tree wrap, n=27)."""

    async def serve_and_drive():
        service = CounterService(
            "ww-tree?interval_mode=wrap", 27, port=0, trace_level="LOADS"
        )
        await service.start()
        try:
            result = await run_load(
                service.host, service.port, ops=100, rate=2000.0
            )
        finally:
            await service.stop()
        assert result.errors == 0
        assert result.completed == 100
        return result

    benchmark.pedantic(
        lambda: asyncio.run(serve_and_drive()), rounds=5, iterations=1
    )
