"""E7: thin benchmark wrapper.

The experiment's logic lives in :mod:`repro.experiments` (callable as
``repro.experiments.run_e7()`` or via ``python -m repro experiment
E7``); this wrapper times one canonical execution under
pytest-benchmark and saves the table to ``benchmarks/results/``.
The claim, parameters and expected shape are documented in DESIGN.md's
experiment index and EXPERIMENTS.md's results log.
"""

from __future__ import annotations

from conftest import save_report

from repro.experiments import run_e7


def test_baselines(benchmark):
    result = benchmark.pedantic(run_e7, rounds=1, iterations=1)
    report = result.to_text()
    save_report("E7_baselines", report)
    assert report
