"""E14: thin benchmark wrapper.

The experiment's logic lives in :mod:`repro.experiments` (callable as
``repro.experiments.run_e14()`` or via ``python -m repro experiment
E14``); this wrapper times one canonical execution under
pytest-benchmark and saves the table to ``benchmarks/results/``.
The claim, parameters and expected shape are documented in DESIGN.md's
experiment index and EXPERIMENTS.md's results log.
"""

from __future__ import annotations

from conftest import save_report

from repro.experiments import run_e14


def test_bits(benchmark):
    result = benchmark.pedantic(run_e14, rounds=1, iterations=1)
    report = result.to_text()
    save_report("E14_bits", report)
    assert report
