"""E18: thin benchmark wrapper.

The experiment's logic lives in :mod:`repro.experiments` (callable as
``repro.experiments.run_e18()`` or via ``python -m repro experiment
E18``); this wrapper times one canonical execution under
pytest-benchmark and saves the table to ``benchmarks/results/``.
"""

from __future__ import annotations

from conftest import save_report

from repro.experiments import run_e18


def test_delivery_robustness(benchmark):
    result = benchmark.pedantic(run_e18, rounds=1, iterations=1)
    report = result.to_text()
    save_report("E18_delivery_robustness", report)
    assert report
