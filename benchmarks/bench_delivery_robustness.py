"""E18, E20–E23: thin benchmark wrappers.

The experiments' logic lives in :mod:`repro.experiments` (callable as
``repro.experiments.run_e18()`` etc. or via ``python -m repro
experiment E18``); these wrappers time one canonical execution each
under pytest-benchmark and save the tables to ``benchmarks/results/``.
E20/E21 cover the faulty regime (message loss, duplication, crash
windows) behind the reliable transport and carry the ``faults`` marker;
E22/E23 cover crash recovery (failover, compound faults) and carry the
``recovery`` marker, so CI can run each suite on its own.
"""

from __future__ import annotations

import pytest
from conftest import save_report

from repro.experiments import run_e18, run_e20, run_e21, run_e22, run_e23


def test_delivery_robustness(benchmark):
    result = benchmark.pedantic(run_e18, rounds=1, iterations=1)
    report = result.to_text()
    save_report("E18_delivery_robustness", report)
    assert report


@pytest.mark.faults
def test_loss_tolerance(benchmark):
    result = benchmark.pedantic(run_e20, rounds=1, iterations=1)
    report = result.to_text()
    save_report("E20_loss_tolerance", report)
    assert report


@pytest.mark.faults
def test_graceful_degradation(benchmark):
    result = benchmark.pedantic(run_e21, rounds=1, iterations=1)
    report = result.to_text()
    save_report("E21_graceful_degradation", report)
    assert report


@pytest.mark.recovery
def test_failover_latency(benchmark):
    result = benchmark.pedantic(run_e22, rounds=1, iterations=1)
    report = result.to_text()
    save_report("E22_failover_latency", report)
    assert report


@pytest.mark.recovery
def test_compound_faults(benchmark):
    result = benchmark.pedantic(run_e23, rounds=1, iterations=1)
    report = result.to_text()
    save_report("E23_compound_faults", report)
    assert report
