"""E12: thin benchmark wrapper.

The experiment's logic lives in :mod:`repro.experiments` (callable as
``repro.experiments.run_e12()`` or via ``python -m repro experiment
E12``); this wrapper times one canonical execution under
pytest-benchmark and saves the table to ``benchmarks/results/``.
The claim, parameters and expected shape are documented in DESIGN.md's
experiment index and EXPERIMENTS.md's results log.
"""

from __future__ import annotations

from conftest import save_report

from repro.experiments import run_e12


def test_long_run(benchmark):
    result = benchmark.pedantic(run_e12, rounds=1, iterations=1)
    report = result.to_text()
    save_report("E12_long_run", report)
    assert report
