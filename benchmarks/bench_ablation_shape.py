"""E10: thin benchmark wrapper.

The experiment's logic lives in :mod:`repro.experiments` (callable as
``repro.experiments.run_e10()`` or via ``python -m repro experiment
E10``); this wrapper times one canonical execution under
pytest-benchmark and saves the table to ``benchmarks/results/``.
The claim, parameters and expected shape are documented in DESIGN.md's
experiment index and EXPERIMENTS.md's results log.
"""

from __future__ import annotations

from conftest import save_report

from repro.experiments import run_e10


def test_ablation_shape(benchmark):
    result = benchmark.pedantic(run_e10, rounds=1, iterations=1)
    report = result.to_text()
    save_report("E10_ablation_shape", report)
    assert report
