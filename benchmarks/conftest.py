"""Shared benchmark helpers.

Every benchmark regenerates one experiment of DESIGN.md's index (E1-E10)
with ``benchmark.pedantic(..., rounds=1)`` — the workloads are full
simulations, so we time one clean execution rather than statistical
micro-rounds — and saves its table under ``benchmarks/results/`` while
also echoing it to stdout, so ``pytest benchmarks/ --benchmark-only -s``
output matches EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_report(name: str, text: str) -> None:
    """Persist an experiment table and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
