"""E0 (infrastructure): simulator throughput micro-benchmarks.

Not a paper claim — the measurement instrument itself.  These keep the
substrate's performance visible so the experiment sweeps stay cheap:
event-queue ops, message round-trips, and a full k=3 one-shot workload
per invocation.
"""

from __future__ import annotations

from repro.registry import parse_spec
from repro.sim.events import EventQueue
from repro.sim.network import Network
from repro.sim.processor import InertProcessor
from repro.sim.trace import TraceLevel
from repro.workloads import one_shot, run_sequence


def _blast_network(trace_level: TraceLevel) -> Network:
    network = Network(trace_level=trace_level)
    network.register_all([InertProcessor(pid) for pid in range(1, 17)])
    return network


def test_event_queue_throughput(benchmark):
    """Schedule + pop 1000 events."""

    def churn():
        queue = EventQueue()
        for index in range(1000):
            queue.schedule((index * 7) % 13 + 0.5, lambda: None)
        while queue:
            queue.run_next()

    benchmark(churn)


def test_message_throughput(benchmark):
    """Deliver 1000 point-to-point messages under FULL tracing."""
    network = _blast_network(TraceLevel.FULL)

    def blast():
        for index in range(1000):
            network.send((index % 16) + 1, ((index + 7) % 16) + 1, "m", {})
        network.run_until_quiescent()

    benchmark(blast)


def test_message_throughput_loads(benchmark):
    """Deliver 1000 point-to-point messages under LOADS tracing."""
    network = _blast_network(TraceLevel.LOADS)

    def blast():
        for index in range(1000):
            network.send((index % 16) + 1, ((index + 7) % 16) + 1, "m", {})
        network.run_until_quiescent()

    benchmark(blast)


def test_message_throughput_off(benchmark):
    """Deliver 1000 point-to-point messages with tracing OFF."""
    network = _blast_network(TraceLevel.OFF)

    def blast():
        for index in range(1000):
            network.send((index % 16) + 1, ((index + 7) % 16) + 1, "m", {})
        network.run_until_quiescent()

    benchmark(blast)


def test_central_counter_oneshot(benchmark):
    """Full n=256 one-shot workload on the central counter."""
    ref = parse_spec("central")

    def run():
        network = Network()
        counter = ref.build(network, 256)
        run_sequence(counter, one_shot(256))

    benchmark.pedantic(run, rounds=5, iterations=1)


def test_tree_counter_oneshot(benchmark):
    """Full k=3 (n=81) one-shot workload on the paper's counter."""
    ref = parse_spec("ww-tree")

    def run():
        network = Network()
        counter = ref.build(network, 81)
        run_sequence(counter, one_shot(81))

    benchmark.pedantic(run, rounds=5, iterations=1)


def test_registry_spec_resolution(benchmark):
    """Parse + canonicalize every registered spec (the sweep hot path)."""
    from repro.registry import registered_names

    specs = [
        *registered_names(),
        "combining-tree?arity=4&window=3.0",
        "ww-tree?interval_mode=wrap",
        "diffracting-tree?prism_size=8&seed=7",
    ]

    def resolve():
        for text in specs:
            parse_spec(text).canonical

    benchmark(resolve)


def test_registry_session_construction(benchmark):
    """RunSession assembly (policy + network + counter) for the ww-tree."""
    from repro.registry import RunSession

    def build():
        RunSession("ww-tree", 81)

    benchmark(build)
