"""Exploration throughput: schedules judged per second.

Infrastructure benchmarks for the schedule-exploration engine
(:mod:`repro.explore`) — not a paper claim, but the number that decides
how much interleaving coverage a CI budget buys.  Three regimes:

* random walks on the central counter (the cheap fuzzing floor),
* guided exploration on the bypass combining tree (the acceptance
  configuration: weight scoring + live load reads per decision),
* replaying one corpus-sized schedule (the per-repro regression cost).
"""

from __future__ import annotations

from repro.explore import ExploreConfig, Explorer, ReplayStrategy


def test_random_exploration_central(benchmark):
    """20 random-walk episodes on the central counter (n=8)."""
    explorer = Explorer(
        ExploreConfig(counter="central", n=8, strategy="random", budget=20)
    )

    def explore():
        report = explorer.run()
        assert report.ok
        return report

    benchmark.pedantic(explore, rounds=5, iterations=1)


def test_guided_exploration_bypass_tree(benchmark):
    """20 guided episodes on combining-tree[bypass] (n=8)."""
    explorer = Explorer(
        ExploreConfig(
            counter="combining-tree[bypass]", n=8,
            strategy="guided", budget=20,
        )
    )

    def explore():
        report = explorer.run()
        assert report.ok
        return report

    benchmark.pedantic(explore, rounds=5, iterations=1)


def test_schedule_replay(benchmark):
    """Replay one 40-decision schedule on the central counter (n=8)."""
    explorer = Explorer(
        ExploreConfig(counter="central", n=8, strategy="baseline", budget=1)
    )
    decisions = tuple((index * 5) % 4 for index in range(40))

    def replay():
        outcome = explorer.replay(decisions)
        assert outcome.failure is None
        return outcome

    benchmark.pedantic(replay, rounds=5, iterations=1)


def test_shrink_throughput(benchmark):
    """Delta-shrink a 64-decision schedule with a synthetic predicate."""
    from repro.explore import shrink_schedule

    decisions = [((index * 7) % 4) or 1 for index in range(64)]

    def shrink():
        schedule = shrink_schedule(
            decisions,
            lambda candidate: len(candidate) > 40 and candidate[40] != 0,
        )
        assert schedule.nonzero_count() == 1
        return schedule

    benchmark(shrink)
